//! A decoded raw video: a spec plus its frames.

use crate::{Frame, VideoSpec};

/// A fully materialized raw video clip.
///
/// Produced by [`crate::synth::generate`] and consumed by the encoder. The
/// attached [`VideoSpec`] carries both the nominal (reported) and simulated
/// (actual) geometry.
#[derive(Debug, Clone)]
pub struct Video {
    /// Catalog metadata for this clip.
    pub spec: VideoSpec,
    /// The raw frames, in display order.
    pub frames: Vec<Frame>,
}

impl Video {
    /// Creates a video from a spec and pre-built frames.
    ///
    /// # Panics
    ///
    /// Panics if any frame's geometry disagrees with `spec.sim_width/height`.
    pub fn new(spec: VideoSpec, frames: Vec<Frame>) -> Self {
        for f in &frames {
            assert_eq!(f.width(), spec.sim_width as usize, "frame width mismatch");
            assert_eq!(
                f.height(),
                spec.sim_height as usize,
                "frame height mismatch"
            );
        }
        Video { spec, frames }
    }

    /// Number of frames.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// Whether the clip has no frames.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Duration in (simulated) seconds given the spec's frame rate.
    pub fn duration_secs(&self) -> f64 {
        self.frames.len() as f64 / f64::from(self.spec.fps)
    }

    /// Total number of raw samples across all frames and planes — the
    /// denominator for "bits per sample" style compression metrics.
    pub fn total_samples(&self) -> usize {
        self.frames.iter().map(Frame::total_samples).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vbench;

    #[test]
    fn construction_checks_geometry() {
        let spec = vbench::by_name("cat").unwrap();
        let f = Frame::new(spec.sim_width as usize, spec.sim_height as usize);
        let v = Video::new(spec.clone(), vec![f; 3]);
        assert_eq!(v.len(), 3);
        assert!(!v.is_empty());
        assert!((v.duration_secs() - 3.0 / 29.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn wrong_geometry_panics() {
        let spec = vbench::by_name("cat").unwrap();
        let f = Frame::new(32, 32);
        let _ = Video::new(spec, vec![f]);
    }
}
