use std::error::Error;
use std::fmt;

/// Errors produced when constructing frames or planes from raw data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The supplied dimensions are zero or not compatible with the subsampling
    /// scheme (YUV 4:2:0 requires even luma dimensions).
    InvalidDimensions {
        /// Requested width in pixels.
        width: usize,
        /// Requested height in pixels.
        height: usize,
    },
    /// A raw buffer did not contain `width * height` samples.
    BufferSizeMismatch {
        /// Number of samples expected.
        expected: usize,
        /// Number of samples provided.
        actual: usize,
    },
    /// Two frames that were expected to have identical geometry differ.
    GeometryMismatch,
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::InvalidDimensions { width, height } => {
                write!(f, "invalid frame dimensions {width}x{height}")
            }
            FrameError::BufferSizeMismatch { expected, actual } => {
                write!(f, "buffer holds {actual} samples, expected {expected}")
            }
            FrameError::GeometryMismatch => write!(f, "frame geometries differ"),
        }
    }
}

impl Error for FrameError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let e = FrameError::InvalidDimensions {
            width: 0,
            height: 7,
        };
        let s = e.to_string();
        assert!(s.contains("0x7"));
        assert!(s.starts_with(char::is_lowercase));
    }

    #[test]
    fn error_trait_object() {
        fn takes_err(_: &dyn Error) {}
        takes_err(&FrameError::GeometryMismatch);
    }
}
