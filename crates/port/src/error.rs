//! Error type for the port model.

use std::error::Error;
use std::fmt;

use crate::layout::UopClass;

/// A malformed or unsolvable port-model problem.
#[derive(Debug, Clone, PartialEq)]
pub enum PortError {
    /// A uop class carries flow but no port in the layout accepts it.
    UnservedClass {
        /// The class with nowhere to issue.
        class: UopClass,
        /// Layout name for the error message.
        layout: String,
    },
    /// The dispatch width is zero (no uop can ever issue).
    ZeroWidth,
    /// A layout declares no ports at all.
    EmptyLayout,
    /// Inference measured contradictory throughputs for one class: the
    /// port-by-port membership probe disagrees with the unblocked
    /// throughput by more than the noise budget.
    InferenceConflict {
        /// The class whose measurements disagree.
        class: UopClass,
        /// Ports recovered by the membership probes.
        recovered_ports: u32,
        /// Throughput measured with nothing blocked.
        unblocked: f64,
    },
}

impl fmt::Display for PortError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PortError::UnservedClass { class, layout } => {
                write!(f, "layout '{layout}' has no port for uop class {class:?}")
            }
            PortError::ZeroWidth => write!(f, "dispatch width must be nonzero"),
            PortError::EmptyLayout => write!(f, "port layout must declare at least one port"),
            PortError::InferenceConflict {
                class,
                recovered_ports,
                unblocked,
            } => write!(
                f,
                "inference conflict for {class:?}: membership probes found {recovered_ports} \
                 ports but unblocked throughput is {unblocked:.3}"
            ),
        }
    }
}

impl Error for PortError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = PortError::UnservedClass {
            class: UopClass::Load,
            layout: "test".to_owned(),
        };
        assert!(e.to_string().contains("Load"));
        assert!(PortError::ZeroWidth.to_string().contains("nonzero"));
        let e = PortError::InferenceConflict {
            class: UopClass::Mul,
            recovered_ports: 2,
            unblocked: 1.0,
        };
        assert!(e.to_string().contains("Mul"));
    }
}
