//! Hand-rolled SplitMix64 — the crate's only randomness source.
//!
//! The inference harness must be byte-deterministic across runs and across
//! platforms, so it cannot depend on external RNG crates (stubbed in the
//! offline build). SplitMix64 passes BigCrush, needs eight lines, and makes
//! every measurement a pure function of `(seed, experiment identity)`.

/// SplitMix64 stream.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a stream from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// One-shot hash of a seed and a discriminator into a derived seed —
/// used to give every (class, blocked-mask) experiment its own stream.
pub fn derive(seed: u64, salt: u64) -> u64 {
    let mut r = SplitMix64::new(seed ^ salt.wrapping_mul(0xD6E8_FEB8_6659_FD93));
    r.next_u64()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SplitMix64::new(1);
        for _ in 0..1000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn derive_separates_streams() {
        assert_ne!(derive(42, 1), derive(42, 2));
        assert_ne!(derive(42, 1), derive(43, 1));
        assert_eq!(derive(42, 1), derive(42, 1));
    }
}
