//! Issue-port layouts: which execution port accepts which uop class.
//!
//! A layout is the hardware side of the port model — the analog of the
//! per-port functional-unit tables uops.info publishes per
//! microarchitecture. Layouts are keyed to the Table IV configurations of
//! `vtx-uarch`: the baseline, `fe_op`, `be_op1` and `bs_op` columns change
//! the front end, the memory hierarchy or the predictor but leave the
//! execution core untouched, so they share the Gainestown-style six-port
//! layout; `be_op2` is the core-widened column (bigger ROB/RS,
//! issue-at-dispatch) and gets a seventh ALU/SIMD-capable port, the way a
//! real generation bump (Nehalem → Haswell) widened the issue stage.

use serde::{Deserialize, Serialize};

use vtx_uarch::config::UarchConfig;

use crate::error::PortError;

/// The uop classes the model distinguishes — coarse enough to classify
/// every codec kernel, fine enough that port contention separates
/// SATD/DCT-heavy presets from motion-search-heavy ones.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum UopClass {
    /// Scalar integer arithmetic/logic.
    Alu,
    /// Packed (SIMD) arithmetic: SAD, SATD, DCT butterflies.
    Simd,
    /// Pack/unpack/permute traffic feeding the SIMD units.
    Shuffle,
    /// Long-latency multiply/divide.
    Mul,
    /// Data loads.
    Load,
    /// Data stores.
    Store,
    /// Branches.
    Branch,
}

/// Number of distinct uop classes.
pub const NUM_CLASSES: usize = 7;

impl UopClass {
    /// All classes in index order.
    pub const ALL: [UopClass; NUM_CLASSES] = [
        UopClass::Alu,
        UopClass::Simd,
        UopClass::Shuffle,
        UopClass::Mul,
        UopClass::Load,
        UopClass::Store,
        UopClass::Branch,
    ];

    /// Stable index of this class (bit position in class masks).
    pub fn index(self) -> usize {
        match self {
            UopClass::Alu => 0,
            UopClass::Simd => 1,
            UopClass::Shuffle => 2,
            UopClass::Mul => 3,
            UopClass::Load => 4,
            UopClass::Store => 5,
            UopClass::Branch => 6,
        }
    }

    /// Short lowercase name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            UopClass::Alu => "alu",
            UopClass::Simd => "simd",
            UopClass::Shuffle => "shuf",
            UopClass::Mul => "mul",
            UopClass::Load => "load",
            UopClass::Store => "store",
            UopClass::Branch => "br",
        }
    }
}

/// A set of ports as a bitmask (bit `p` = port `p`).
pub type PortMask = u16;

/// A set of uop classes as a bitmask (bit [`UopClass::index`]).
pub type ClassMask = u16;

/// Ports × accepted uop classes for one core generation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PortLayout {
    /// Layout name (shown in reports; usually the config name).
    pub name: String,
    /// `ports[p]` is the [`ClassMask`] of uop classes port `p` accepts.
    ports: Vec<ClassMask>,
}

impl PortLayout {
    /// Builds a layout from per-port class lists.
    ///
    /// # Errors
    ///
    /// Returns [`PortError::EmptyLayout`] when `ports` is empty.
    pub fn new(name: &str, ports: &[&[UopClass]]) -> Result<Self, PortError> {
        if ports.is_empty() {
            return Err(PortError::EmptyLayout);
        }
        Ok(PortLayout {
            name: name.to_owned(),
            ports: ports
                .iter()
                .map(|classes| {
                    classes
                        .iter()
                        .fold(0, |m, c| m | (1 << c.index()) as ClassMask)
                })
                .collect(),
        })
    }

    /// The Gainestown-style six-port layout used by the baseline, `fe_op`,
    /// `be_op1` and `bs_op` Table IV columns: two general ALU/SIMD ports
    /// (one with the multiplier, one with the shuffle unit), two load
    /// ports, one store port, and an ALU/branch/shuffle port.
    pub fn gainestown() -> Self {
        use UopClass::*;
        Self::new(
            "gainestown",
            &[
                &[Alu, Simd, Mul],
                &[Alu, Simd, Shuffle],
                &[Load],
                &[Load],
                &[Store],
                &[Alu, Branch, Shuffle],
            ],
        )
        .expect("static layout is nonempty")
    }

    /// The widened seven-port layout of the core-optimized `be_op2` column:
    /// Gainestown plus an extra ALU/SIMD port, matching the way its larger
    /// window and issue-at-dispatch widen the execution stage.
    pub fn widened() -> Self {
        use UopClass::*;
        Self::new(
            "widened",
            &[
                &[Alu, Simd, Mul],
                &[Alu, Simd, Shuffle],
                &[Load],
                &[Load],
                &[Store],
                &[Alu, Branch, Shuffle],
                &[Alu, Simd],
            ],
        )
        .expect("static layout is nonempty")
    }

    /// The layout for a Table IV configuration name (`be_op2` → widened,
    /// everything else → Gainestown). The returned layout is renamed after
    /// the config so reports show which column it models.
    pub fn for_config_name(name: &str) -> Self {
        let mut layout = if name == "be_op2" {
            Self::widened()
        } else {
            Self::gainestown()
        };
        layout.name = name.to_owned();
        layout
    }

    /// The layout for a Table IV configuration.
    pub fn for_config(cfg: &UarchConfig) -> Self {
        Self::for_config_name(&cfg.name)
    }

    /// Number of ports.
    pub fn num_ports(&self) -> usize {
        self.ports.len()
    }

    /// Mask of every port in the layout.
    pub fn all_ports(&self) -> PortMask {
        ((1u32 << self.ports.len()) - 1) as PortMask
    }

    /// Whether port `p` accepts class `c`.
    pub fn allows(&self, p: usize, c: UopClass) -> bool {
        self.ports
            .get(p)
            .is_some_and(|m| m & (1 << c.index()) as ClassMask != 0)
    }

    /// Mask of the ports that accept class `c`.
    pub fn class_ports(&self, c: UopClass) -> PortMask {
        let bit = (1 << c.index()) as ClassMask;
        self.ports
            .iter()
            .enumerate()
            .filter(|(_, m)| *m & bit != 0)
            .fold(0, |mask, (p, _)| mask | (1 << p) as PortMask)
    }

    /// Union of the ports accepting any class in `classes`.
    pub fn union_ports(&self, classes: ClassMask) -> PortMask {
        UopClass::ALL
            .iter()
            .filter(|c| classes & (1 << c.index()) as ClassMask != 0)
            .fold(0, |mask, c| mask | self.class_ports(*c))
    }

    /// One line per port: `p0: alu simd mul`, deterministic order.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (p, mask) in self.ports.iter().enumerate() {
            let names: Vec<&str> = UopClass::ALL
                .iter()
                .filter(|c| mask & (1 << c.index()) as ClassMask != 0)
                .map(|c| c.name())
                .collect();
            let _ = writeln!(out, "  p{p}: {}", names.join(" "));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gainestown_geometry() {
        let l = PortLayout::gainestown();
        assert_eq!(l.num_ports(), 6);
        assert!(l.allows(0, UopClass::Mul));
        assert!(!l.allows(0, UopClass::Load));
        assert_eq!(l.class_ports(UopClass::Load), 0b001100);
        assert_eq!(l.class_ports(UopClass::Store), 0b010000);
        assert_eq!(l.class_ports(UopClass::Branch), 0b100000);
        assert_eq!(l.class_ports(UopClass::Alu), 0b100011);
    }

    #[test]
    fn widened_adds_a_port() {
        let g = PortLayout::gainestown();
        let w = PortLayout::widened();
        assert_eq!(w.num_ports(), g.num_ports() + 1);
        assert!(w.allows(6, UopClass::Simd));
        assert!(!w.allows(6, UopClass::Load));
    }

    #[test]
    fn config_keying_matches_table_iv() {
        for cfg in UarchConfig::table_iv() {
            let l = PortLayout::for_config(&cfg);
            assert_eq!(l.name, cfg.name);
            let want = if cfg.name == "be_op2" { 7 } else { 6 };
            assert_eq!(l.num_ports(), want, "{}", cfg.name);
        }
    }

    #[test]
    fn union_ports_unions() {
        let l = PortLayout::gainestown();
        let classes = (1 << UopClass::Load.index()) | (1 << UopClass::Store.index());
        assert_eq!(l.union_ports(classes as ClassMask), 0b011100);
        assert_eq!(l.union_ports(0), 0);
    }

    #[test]
    fn empty_layout_rejected() {
        assert_eq!(PortLayout::new("x", &[]), Err(PortError::EmptyLayout));
    }

    #[test]
    fn every_class_served_by_both_layouts() {
        for layout in [PortLayout::gainestown(), PortLayout::widened()] {
            for c in UopClass::ALL {
                assert_ne!(layout.class_ports(c), 0, "{:?} in {}", c, layout.name);
            }
        }
    }

    #[test]
    fn render_is_stable() {
        let text = PortLayout::gainestown().render();
        assert!(text.starts_with("  p0: alu simd mul\n"));
        assert_eq!(text.lines().count(), 6);
    }
}
