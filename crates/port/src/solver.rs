//! Saturating-flow steady-state throughput solver.
//!
//! Given a [`PortLayout`] and a [`UopMix`], the solver answers: at steady
//! state, how many uops per cycle can the execution ports sustain, and how
//! busy is each port at that rate?
//!
//! The model is the standard one behind uops.info's and PALMED's throughput
//! predictors. Issue one "unit" of the mix per cycle and classes route
//! freely among the ports that accept them. A subset `S` of classes carries
//! `f(S)` uops per unit but can only use the ports in `union_ports(S)`, so
//! the per-unit cycle cost is at least `f(S) / |union_ports(S)|` — a
//! max-flow/min-cut (Hall's theorem) bound. The binding subset gives the
//! steady-state cost
//!
//! ```text
//! L* = max over nonempty S of f(S) / |union_ports(S)|
//! ```
//!
//! and throughput `min(width, 1 / L*)` uops/cycle. With only seven classes
//! the `2^7` subset enumeration is exact and effectively free.

use serde::{Deserialize, Serialize};

use crate::error::PortError;
use crate::layout::{ClassMask, PortLayout, PortMask, UopClass, NUM_CLASSES};
use crate::mix::UopMix;

/// Result of a steady-state solve.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThroughputSolve {
    /// Sustained uops per cycle (already clamped to the dispatch width).
    pub uops_per_cycle: f64,
    /// Per-unit cycle cost `L*` of the binding class subset (the port
    /// bound alone, before the width clamp).
    pub bound_load: f64,
    /// Fraction of cycles each port is busy at the sustained rate,
    /// `utilization[p]` in `[0, 1]`.
    pub utilization: Vec<f64>,
    /// Ports of the binding subset — the bottleneck group.
    pub bottleneck: PortMask,
}

impl ThroughputSolve {
    /// Whether the ports (not the dispatch width) limit throughput.
    pub fn port_limited(&self, width: f64) -> bool {
        self.bound_load > 1.0 / width + 1e-12
    }
}

/// Finds the binding class subset: max of `f(S) / |union_ports(S)|`.
/// Returns `(load, subset, ports)`. Classes with zero flow are skipped so
/// an unserved-but-unused class does not poison the solve.
fn binding_subset(
    layout: &PortLayout,
    flow: &[f64; NUM_CLASSES],
) -> Result<(f64, ClassMask, PortMask), PortError> {
    let mut best = (0.0f64, 0 as ClassMask, 0 as PortMask);
    for subset in 1u16..(1 << NUM_CLASSES) {
        let mut f = 0.0;
        for c in UopClass::ALL {
            if subset & (1 << c.index()) != 0 {
                f += flow[c.index()];
            }
        }
        if f <= 0.0 {
            continue;
        }
        let ports = layout.union_ports(subset);
        if ports == 0 {
            // Some flowing class in the subset has no port anywhere.
            let class = UopClass::ALL
                .into_iter()
                .find(|c| {
                    subset & (1 << c.index()) != 0
                        && flow[c.index()] > 0.0
                        && layout.class_ports(*c) == 0
                })
                .expect("zero port union implies an unserved flowing class");
            return Err(PortError::UnservedClass {
                class,
                layout: layout.name.clone(),
            });
        }
        let load = f / f64::from(ports.count_ones());
        if load > best.0 + 1e-15 {
            best = (load, subset, ports);
        }
    }
    Ok(best)
}

/// Splits each port's busy fraction at the sustained rate.
///
/// The binding subset's flow saturates its ports exactly; everything else
/// recurses on the residual layout (binding ports removed) with the
/// remaining flow. Each recursion level removes at least one port and one
/// class, so the decomposition terminates and every port gets a utilization
/// in `[0, 1]`.
fn fill_utilization(
    layout: &PortLayout,
    flow: &[f64; NUM_CLASSES],
    scale: f64,
    excluded_ports: PortMask,
    utilization: &mut [f64],
) {
    let mut residual = *flow;
    // Masked view of the layout: treat excluded ports as gone.
    let visible = |c: UopClass| layout.class_ports(c) & !excluded_ports;
    let any_flow = residual.iter().any(|f| *f > 1e-15);
    if !any_flow {
        return;
    }
    // Find the binding subset over visible ports only.
    let mut best: (f64, ClassMask, PortMask) = (0.0, 0, 0);
    for subset in 1u16..(1 << NUM_CLASSES) {
        let mut f = 0.0;
        let mut ports: PortMask = 0;
        for c in UopClass::ALL {
            if subset & (1 << c.index()) != 0 {
                f += residual[c.index()];
                ports |= visible(c);
            }
        }
        if f <= 1e-15 || ports == 0 {
            continue;
        }
        let load = f / f64::from(ports.count_ones());
        if load > best.0 + 1e-15 {
            best = (load, subset, ports);
        }
    }
    let (load, subset, ports) = best;
    if ports == 0 || load <= 0.0 {
        return;
    }
    // The binding group's ports share its flow evenly at the sustained
    // rate; clamp defensively against float drift.
    let busy = (load * scale).min(1.0);
    for (p, u) in utilization.iter_mut().enumerate().take(layout.num_ports()) {
        if ports & (1 << p) as PortMask != 0 {
            *u = busy;
        }
    }
    for c in UopClass::ALL {
        if subset & (1 << c.index()) != 0 {
            residual[c.index()] = 0.0;
        }
    }
    fill_utilization(
        layout,
        &residual,
        scale,
        excluded_ports | ports,
        utilization,
    );
}

/// Solves steady-state throughput for `mix` on `layout` under a dispatch
/// width of `width` uops/cycle.
///
/// # Errors
///
/// * [`PortError::ZeroWidth`] when `width <= 0`.
/// * [`PortError::UnservedClass`] when the mix sends flow to a class no
///   port accepts.
pub fn solve(layout: &PortLayout, mix: &UopMix, width: f64) -> Result<ThroughputSolve, PortError> {
    if width <= 0.0 {
        return Err(PortError::ZeroWidth);
    }
    let flow = mix.fractions();
    let (bound_load, _subset, bottleneck) = binding_subset(layout, &flow)?;
    if bound_load <= 0.0 {
        // Degenerate all-zero mix (cannot happen via UopMix, which
        // normalizes): nothing contends, width is the only limit.
        return Ok(ThroughputSolve {
            uops_per_cycle: width,
            bound_load: 0.0,
            utilization: vec![0.0; layout.num_ports()],
            bottleneck: 0,
        });
    }
    let uops_per_cycle = width.min(1.0 / bound_load);
    let mut utilization = vec![0.0; layout.num_ports()];
    // At `uops_per_cycle` units/cycle, a group carrying per-unit load L is
    // busy L × uops_per_cycle of the time.
    fill_utilization(layout, &flow, uops_per_cycle, 0, &mut utilization);
    Ok(ThroughputSolve {
        uops_per_cycle,
        bound_load,
        utilization,
        bottleneck,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mix_of(pairs: &[(UopClass, f64)]) -> UopMix {
        let mut w = [0.0; NUM_CLASSES];
        for (c, f) in pairs {
            w[c.index()] = *f;
        }
        UopMix::new(w)
    }

    #[test]
    fn pure_store_mix_bottlenecks_on_the_store_port() {
        let l = PortLayout::gainestown();
        let s = solve(&l, &mix_of(&[(UopClass::Store, 1.0)]), 4.0).unwrap();
        // One store port: 1 uop/cycle, port 4 fully busy.
        assert!((s.uops_per_cycle - 1.0).abs() < 1e-9);
        assert_eq!(s.bottleneck, 0b010000);
        assert!((s.utilization[4] - 1.0).abs() < 1e-9);
        assert!(s.utilization[2] < 1e-9);
    }

    #[test]
    fn balanced_loads_split_across_both_load_ports() {
        let l = PortLayout::gainestown();
        let s = solve(&l, &mix_of(&[(UopClass::Load, 1.0)]), 4.0).unwrap();
        // Two load ports serve one class: 2 uops/cycle... clamped? width 4,
        // load = 1/2 per uop, so 2 uops/cycle.
        assert!((s.uops_per_cycle - 2.0).abs() < 1e-9);
        assert!((s.utilization[2] - 1.0).abs() < 1e-9);
        assert!((s.utilization[3] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn width_clamps_unconstrained_mixes() {
        let l = PortLayout::gainestown();
        // Alu spreads over 3 ports; at width 2 the width binds first.
        let s = solve(&l, &mix_of(&[(UopClass::Alu, 1.0)]), 2.0).unwrap();
        assert!((s.uops_per_cycle - 2.0).abs() < 1e-9);
        assert!(!s.port_limited(2.0));
        // Utilization: 2 uops/cycle over 3 ports = 2/3 each.
        assert!((s.utilization[0] - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn subset_bound_beats_per_class_bounds() {
        let l = PortLayout::gainestown();
        // Simd uses {p0,p1}, Mul uses {p0}: singly Simd costs 1/2, Mul full
        // flow on one port. Together {Simd, Mul} = 0.8+0.2 over 2 ports =
        // 0.5 — same as Simd alone here, so pick flows where the union
        // binds strictly: Simd 0.9 (load .45), Mul 0.1 (load .1),
        // union load (1.0)/2 = 0.5 > both.
        let s = solve(
            &l,
            &mix_of(&[(UopClass::Simd, 0.9), (UopClass::Mul, 0.1)]),
            4.0,
        )
        .unwrap();
        assert!((s.bound_load - 0.5).abs() < 1e-9);
        assert_eq!(s.bottleneck, 0b000011);
        assert!((s.uops_per_cycle - 2.0).abs() < 1e-9);
    }

    #[test]
    fn widened_layout_raises_simd_throughput() {
        let mix = mix_of(&[(UopClass::Simd, 1.0)]);
        let narrow = solve(&PortLayout::gainestown(), &mix, 6.0).unwrap();
        let wide = solve(&PortLayout::widened(), &mix, 6.0).unwrap();
        assert!(wide.uops_per_cycle > narrow.uops_per_cycle);
    }

    #[test]
    fn zero_width_rejected() {
        let l = PortLayout::gainestown();
        assert_eq!(
            solve(&l, &UopMix::default(), 0.0),
            Err(PortError::ZeroWidth)
        );
    }

    #[test]
    fn unserved_class_rejected() {
        use UopClass::*;
        // A layout with no branch port.
        let l =
            PortLayout::new("no_branch", &[&[Alu, Simd, Mul, Shuffle], &[Load, Store]]).unwrap();
        let err = solve(&l, &mix_of(&[(Branch, 1.0)]), 4.0).unwrap_err();
        assert!(matches!(
            err,
            PortError::UnservedClass { class: Branch, .. }
        ));
    }

    #[test]
    fn utilization_bounded_for_real_mixes() {
        for rank in 0..10 {
            let mix = UopMix::for_preset_rank(rank);
            for layout in [PortLayout::gainestown(), PortLayout::widened()] {
                let s = solve(&layout, &mix, 4.0).unwrap();
                assert!(s.uops_per_cycle > 0.0);
                for (p, u) in s.utilization.iter().enumerate() {
                    assert!(
                        (0.0..=1.0 + 1e-9).contains(u),
                        "rank {rank} {} p{p} u={u}",
                        layout.name
                    );
                }
                // Bottleneck ports saturate (utilization 1) whenever the
                // ports, not the width, bind.
                if s.port_limited(4.0) {
                    let p = s.bottleneck.trailing_zeros() as usize;
                    assert!((s.utilization[p] - 1.0).abs() < 1e-6);
                }
            }
        }
    }
}
