//! Per-kernel uop-mix descriptors.
//!
//! A [`UopMix`] says what fraction of a kernel's dynamic uops falls into
//! each [`UopClass`] — the workload side of the port model. Mixes come from
//! three places:
//!
//! * a static per-kernel table ([`UopMix::for_kernel`]) keyed by the kernel
//!   names `vtx-codec` declares in its instrumentation table, sized after
//!   the instruction mixes of the corresponding x264/FFmpeg routines;
//! * a profiled run ([`UopMix::from_hotspots`] /
//!   [`UopMix::from_profile`]): the per-kernel instruction attribution of a
//!   `vtx-trace` report weights the static mixes into one aggregate mix;
//! * a preset rank ([`UopMix::for_preset_rank`]): the dominant kernels of
//!   each x264 preset (Figure 6's speed ladder) blended without profiling,
//!   for callers that must price a task before running it.

use serde::{Deserialize, Serialize};

use vtx_trace::kernel::KernelProfile;
use vtx_trace::KernelDesc;

use crate::layout::{UopClass, NUM_CLASSES};

/// Fractions of dynamic uops per [`UopClass`]; always sums to 1.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UopMix {
    fractions: [f64; NUM_CLASSES],
}

/// Fallback mix for kernels the table does not know: the aggregate shape of
/// scalar control code (ALU/load dominated, some branches).
const DEFAULT_MIX: [f64; NUM_CLASSES] = [0.30, 0.15, 0.05, 0.05, 0.25, 0.10, 0.10];

/// Static mix table: `(kernel name, [alu, simd, shuf, mul, load, store, br])`.
///
/// Names match `vtx_codec::instr::kernel_table()`; rows are grouped the way
/// the codec groups its kernels.
const KERNEL_MIXES: &[(&str, [f64; NUM_CLASSES])] = &[
    // Control / bookkeeping.
    ("lookahead", [0.30, 0.20, 0.05, 0.05, 0.20, 0.05, 0.15]),
    ("ratecontrol", [0.40, 0.00, 0.00, 0.20, 0.15, 0.10, 0.15]),
    ("mbenc_ctrl", [0.45, 0.05, 0.00, 0.05, 0.20, 0.05, 0.20]),
    ("header", [0.50, 0.00, 0.00, 0.00, 0.20, 0.20, 0.10]),
    // Intra prediction.
    ("intra_pred16", [0.20, 0.40, 0.15, 0.00, 0.15, 0.05, 0.05]),
    ("intra_pred4", [0.20, 0.40, 0.15, 0.00, 0.15, 0.05, 0.05]),
    ("intra_decide", [0.30, 0.25, 0.05, 0.05, 0.15, 0.00, 0.20]),
    // Motion search: pointer chasing + compare-heavy control.
    ("me_dia", [0.25, 0.20, 0.05, 0.00, 0.30, 0.00, 0.20]),
    ("me_hex", [0.25, 0.20, 0.05, 0.00, 0.30, 0.00, 0.20]),
    ("me_umh", [0.25, 0.20, 0.05, 0.00, 0.30, 0.00, 0.20]),
    ("me_esa", [0.20, 0.25, 0.05, 0.00, 0.35, 0.00, 0.15]),
    // Pixel metrics: dense SIMD.
    ("sad", [0.10, 0.55, 0.05, 0.00, 0.25, 0.00, 0.05]),
    ("satd", [0.10, 0.50, 0.15, 0.00, 0.20, 0.00, 0.05]),
    // Interpolation / compensation.
    ("hpel_interp", [0.10, 0.45, 0.20, 0.00, 0.15, 0.10, 0.00]),
    ("mc", [0.10, 0.35, 0.10, 0.00, 0.25, 0.20, 0.00]),
    // Transforms and quantization.
    ("dct4x4", [0.15, 0.45, 0.20, 0.00, 0.10, 0.10, 0.00]),
    ("idct4x4", [0.15, 0.45, 0.20, 0.00, 0.10, 0.10, 0.00]),
    ("quant", [0.15, 0.25, 0.05, 0.35, 0.10, 0.10, 0.00]),
    ("dequant", [0.15, 0.25, 0.05, 0.35, 0.10, 0.10, 0.00]),
    ("trellis", [0.30, 0.10, 0.00, 0.25, 0.15, 0.05, 0.15]),
    // Entropy coding: serial scalar + branchy.
    ("cavlc", [0.45, 0.00, 0.00, 0.05, 0.20, 0.10, 0.20]),
    ("cabac", [0.50, 0.00, 0.00, 0.05, 0.15, 0.05, 0.25]),
    // Reconstruction path.
    ("recon", [0.20, 0.30, 0.05, 0.00, 0.20, 0.25, 0.00]),
    ("deblock", [0.25, 0.20, 0.05, 0.00, 0.25, 0.15, 0.10]),
    // Decoder.
    ("dec_parse", [0.50, 0.00, 0.00, 0.05, 0.20, 0.05, 0.20]),
    ("dec_pred", [0.15, 0.35, 0.10, 0.00, 0.25, 0.15, 0.00]),
    ("dec_recon", [0.20, 0.35, 0.10, 0.00, 0.15, 0.20, 0.00]),
    ("dec_deblock", [0.25, 0.20, 0.05, 0.00, 0.25, 0.15, 0.10]),
];

/// Dominant kernels per preset speed rank (0 = ultrafast … 9 = placebo),
/// with blend weights. Fast presets live in SAD + diamond search + CAVLC;
/// slow presets shift into SATD/trellis/UMH/CABAC — exactly the shift that
/// moves pressure between the SIMD ports and the scalar/branch ports.
const PRESET_KERNELS: [&[(&str, f64)]; 10] = [
    &[("sad", 3.0), ("me_dia", 2.0), ("cavlc", 2.0), ("mc", 1.0)],
    &[
        ("sad", 3.0),
        ("me_dia", 2.0),
        ("cavlc", 2.0),
        ("dct4x4", 1.0),
    ],
    &[
        ("sad", 2.5),
        ("me_hex", 2.0),
        ("cavlc", 1.5),
        ("dct4x4", 1.0),
    ],
    &[
        ("sad", 2.0),
        ("me_hex", 2.0),
        ("cabac", 1.5),
        ("dct4x4", 1.0),
    ],
    &[
        ("satd", 2.0),
        ("me_hex", 2.0),
        ("cabac", 1.5),
        ("dct4x4", 1.0),
    ],
    &[
        ("satd", 2.5),
        ("me_hex", 2.0),
        ("cabac", 1.5),
        ("hpel_interp", 1.0),
    ],
    &[
        ("satd", 2.5),
        ("me_umh", 2.0),
        ("cabac", 1.5),
        ("trellis", 1.0),
    ],
    &[
        ("satd", 3.0),
        ("me_umh", 2.5),
        ("trellis", 1.5),
        ("cabac", 1.5),
    ],
    &[
        ("satd", 3.0),
        ("me_umh", 3.0),
        ("trellis", 2.0),
        ("cabac", 1.5),
    ],
    &[
        ("satd", 3.0),
        ("me_esa", 3.5),
        ("trellis", 2.5),
        ("cabac", 1.5),
    ],
];

impl UopMix {
    /// Builds a mix from raw per-class weights, normalizing to sum 1.
    /// All-zero (or negative-total) weights fall back to the default mix.
    pub fn new(weights: [f64; NUM_CLASSES]) -> Self {
        let total: f64 = weights.iter().copied().filter(|w| *w > 0.0).sum();
        if total <= 0.0 {
            // Normalize the fallback through the same path so it compares
            // equal to `UopMix::new(DEFAULT_MIX)` bit-for-bit.
            return UopMix::new(DEFAULT_MIX);
        }
        let mut fractions = [0.0; NUM_CLASSES];
        for (f, w) in fractions.iter_mut().zip(weights) {
            *f = w.max(0.0) / total;
        }
        UopMix { fractions }
    }

    /// The fraction of uops in class `c`.
    pub fn fraction(&self, c: UopClass) -> f64 {
        self.fractions[c.index()]
    }

    /// All fractions, [`UopClass::ALL`] order.
    pub fn fractions(&self) -> [f64; NUM_CLASSES] {
        self.fractions
    }

    /// The static mix for a kernel name (the default mix when unknown).
    pub fn for_kernel(name: &str) -> Self {
        let weights = KERNEL_MIXES
            .iter()
            .find(|(n, _)| *n == name)
            .map_or(DEFAULT_MIX, |(_, m)| *m);
        UopMix::new(weights)
    }

    /// Whether the static table knows this kernel name.
    pub fn knows_kernel(name: &str) -> bool {
        KERNEL_MIXES.iter().any(|(n, _)| *n == name)
    }

    /// Every kernel name in the static table, table order.
    pub fn kernel_names() -> impl Iterator<Item = &'static str> {
        KERNEL_MIXES.iter().map(|(n, _)| *n)
    }

    /// Blends weighted mixes into one (weights need not sum to 1; non-
    /// positive total falls back to the default mix).
    pub fn blend(parts: &[(UopMix, f64)]) -> Self {
        let mut weights = [0.0; NUM_CLASSES];
        for (mix, w) in parts {
            for (acc, f) in weights.iter_mut().zip(mix.fractions) {
                *acc += f * w.max(0.0);
            }
        }
        UopMix::new(weights)
    }

    /// The aggregate mix of a profiled run, weighting each hotspot's static
    /// kernel mix by its attributed instruction count. Empty hotspot lists
    /// yield the default mix.
    pub fn from_hotspots(hotspots: &[(String, u64)]) -> Self {
        let parts: Vec<(UopMix, f64)> = hotspots
            .iter()
            .map(|(name, insns)| (UopMix::for_kernel(name), *insns as f64))
            .collect();
        UopMix::blend(&parts)
    }

    /// The aggregate mix of a [`KernelProfile`] given its descriptor table.
    ///
    /// # Panics
    ///
    /// Panics if `kernels` is shorter than the profile (a profile always
    /// matches the descriptor table it was collected against).
    pub fn from_profile(profile: &KernelProfile, kernels: &[KernelDesc]) -> Self {
        assert!(
            kernels.len() >= profile.len(),
            "kernel table shorter than profile"
        );
        let parts: Vec<(UopMix, f64)> = profile
            .instructions
            .iter()
            .enumerate()
            .map(|(k, insns)| (UopMix::for_kernel(kernels[k].name), *insns as f64))
            .collect();
        UopMix::blend(&parts)
    }

    /// The pre-profiling mix for a preset speed rank (0 = ultrafast …
    /// 9 = placebo; out-of-range ranks clamp to the slowest).
    pub fn for_preset_rank(rank: usize) -> Self {
        let kernels = PRESET_KERNELS[rank.min(PRESET_KERNELS.len() - 1)];
        let parts: Vec<(UopMix, f64)> = kernels
            .iter()
            .map(|(name, w)| (UopMix::for_kernel(name), *w))
            .collect();
        UopMix::blend(&parts)
    }

    /// Compact rendering: `alu 0.30 simd 0.15 ...` (fixed precision, stable
    /// across runs — safe to byte-compare).
    pub fn render(&self) -> String {
        UopClass::ALL
            .iter()
            .map(|c| format!("{} {:.4}", c.name(), self.fraction(*c)))
            .collect::<Vec<_>>()
            .join(" ")
    }
}

impl Default for UopMix {
    fn default() -> Self {
        UopMix::new(DEFAULT_MIX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_sums_to_one(mix: &UopMix) {
        let sum: f64 = mix.fractions().iter().sum();
        assert!((sum - 1.0).abs() < 1e-12, "sum = {sum}");
    }

    #[test]
    fn every_table_mix_normalizes() {
        for (name, _) in KERNEL_MIXES {
            assert_sums_to_one(&UopMix::for_kernel(name));
        }
        assert_sums_to_one(&UopMix::default());
    }

    #[test]
    fn unknown_kernel_gets_default() {
        assert_eq!(UopMix::for_kernel("not_a_kernel"), UopMix::default());
        assert!(!UopMix::knows_kernel("not_a_kernel"));
        assert!(UopMix::knows_kernel("satd"));
    }

    #[test]
    fn sad_is_simd_dominated_cabac_is_not() {
        let sad = UopMix::for_kernel("sad");
        let cabac = UopMix::for_kernel("cabac");
        assert!(sad.fraction(UopClass::Simd) > 0.5);
        assert!(cabac.fraction(UopClass::Simd) < 0.01);
        assert!(cabac.fraction(UopClass::Branch) > sad.fraction(UopClass::Branch));
    }

    #[test]
    fn hotspot_weighting_tracks_dominant_kernel() {
        let hot = vec![("sad".to_owned(), 900u64), ("cabac".to_owned(), 100u64)];
        let mix = UopMix::from_hotspots(&hot);
        assert_sums_to_one(&mix);
        // 90% sad: the blend must sit close to sad's SIMD share.
        assert!(mix.fraction(UopClass::Simd) > 0.4);
        assert_eq!(UopMix::from_hotspots(&[]), UopMix::default());
    }

    #[test]
    fn profile_weighting_matches_hotspot_weighting() {
        let kernels = [KernelDesc::new("sad", 1024), KernelDesc::new("cabac", 4096)];
        let mut p = KernelProfile::new(2);
        p.instructions = vec![900, 100];
        let from_profile = UopMix::from_profile(&p, &kernels);
        let from_hot = UopMix::from_hotspots(&[("sad".to_owned(), 900), ("cabac".to_owned(), 100)]);
        assert_eq!(from_profile, from_hot);
    }

    #[test]
    fn preset_ranks_shift_toward_simd() {
        let fast = UopMix::for_preset_rank(0);
        let slow = UopMix::for_preset_rank(9);
        assert_sums_to_one(&fast);
        assert_sums_to_one(&slow);
        // Slow presets do more SATD/trellis; rank 9 clamps out of range too.
        assert_eq!(UopMix::for_preset_rank(99), slow);
        assert!(slow.fraction(UopClass::Mul) > fast.fraction(UopClass::Mul));
    }

    #[test]
    fn zero_weights_fall_back() {
        assert_eq!(UopMix::new([0.0; NUM_CLASSES]), UopMix::default());
        assert_eq!(UopMix::blend(&[]), UopMix::default());
    }

    #[test]
    fn render_is_fixed_width() {
        let text = UopMix::default().render();
        assert!(text.starts_with("alu 0.3"));
        assert_eq!(text.split(' ').count(), NUM_CLASSES * 2);
    }
}
