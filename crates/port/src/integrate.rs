//! Wiring the port model into the interval core and the report pipeline.
//!
//! The interval model's base dispatch time assumes the core sustains its
//! full dispatch width whenever uops are available. The port model knows
//! better: a SIMD-saturated SATD mix cannot issue four uops per cycle
//! through two SIMD-capable ports. [`dispatch_bound`] turns a config + mix
//! into the sustainable issue rate, and [`refine_report`] re-runs a
//! profiled report's cycle accounting under that bound — inflating the
//! backend-core Top-down share exactly where port contention lives.

use serde::{Deserialize, Serialize};

use vtx_trace::ProfileReport;
use vtx_uarch::config::UarchConfig;
use vtx_uarch::interval::CoreModel;
use vtx_uarch::topdown::TopDown;

use crate::error::PortError;
use crate::layout::PortLayout;
use crate::mix::UopMix;
use crate::solver::{solve, ThroughputSolve};

/// What the port refinement of one report did.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PortRefinement {
    /// Config the refinement ran under.
    pub config_name: String,
    /// Aggregate uop mix the refinement used (from the report's hotspots).
    pub mix: UopMix,
    /// Full solver result (per-port utilization, bottleneck group).
    pub solve: ThroughputSolve,
    /// Sustained issue rate fed to the interval model, uops/cycle.
    pub dispatch_bound: f64,
    /// Nominal dispatch width of the config.
    pub nominal_width: f64,
    /// Top-down shares before refinement.
    pub topdown_before: TopDown,
    /// Top-down shares after refinement.
    pub topdown_after: TopDown,
    /// Total cycles before refinement.
    pub cycles_before: u64,
    /// Total cycles after refinement.
    pub cycles_after: u64,
}

impl PortRefinement {
    /// Slowdown factor the ports impose (`>= 1.0`).
    pub fn slowdown(&self) -> f64 {
        if self.cycles_before == 0 {
            1.0
        } else {
            self.cycles_after as f64 / self.cycles_before as f64
        }
    }
}

/// The sustainable issue rate (uops/cycle) for `mix` on `cfg`'s port
/// layout, clamped to the config's dispatch width.
///
/// # Errors
///
/// Propagates [`PortError`] from the solver (zero width, unserved class).
pub fn dispatch_bound(cfg: &UarchConfig, mix: &UopMix) -> Result<f64, PortError> {
    let layout = PortLayout::for_config(cfg);
    let s = solve(&layout, mix, f64::from(cfg.dispatch_width))?;
    Ok(s.uops_per_cycle)
}

/// Re-runs `report`'s cycle accounting with the port-model dispatch bound
/// for its own hotspot mix, updating the breakdown, Top-down shares,
/// stall rates, IPC, and simulated seconds in place. Per-port utilization
/// and the bound are published to the telemetry registry.
///
/// # Errors
///
/// Propagates [`PortError`] from the solver; the report is untouched on
/// error.
pub fn refine_report(
    report: &mut ProfileReport,
    cfg: &UarchConfig,
) -> Result<PortRefinement, PortError> {
    let mix = UopMix::from_hotspots(&report.hotspots);
    let layout = PortLayout::for_config(cfg);
    let width = f64::from(cfg.dispatch_width);
    let s = solve(&layout, &mix, width)?;
    let bound = s.uops_per_cycle;

    let model = CoreModel::new(cfg)
        .with_dispatch_bound(bound)
        .map_err(|_| PortError::ZeroWidth)?;
    let breakdown = model.run(&report.counts);
    let topdown = breakdown.topdown();

    let refinement = PortRefinement {
        config_name: cfg.name.clone(),
        mix,
        dispatch_bound: bound,
        nominal_width: width,
        topdown_before: report.topdown,
        topdown_after: topdown,
        cycles_before: report.breakdown.total_cycles,
        cycles_after: breakdown.total_cycles,
        solve: s,
    };

    let pki = |v: f64| {
        if report.counts.instructions == 0 {
            0.0
        } else {
            v * 1000.0 / report.counts.instructions as f64
        }
    };
    report.stalls.any = pki(breakdown.any_stall_cycles());
    report.stalls.rob = pki(breakdown.rob_stall_cycles);
    report.stalls.rs = pki(breakdown.rs_stall_cycles);
    report.stalls.sb = pki(breakdown.sb_stall_cycles);
    report.seconds = breakdown.seconds(cfg.freq_ghz);
    report.ipc = if breakdown.total_cycles == 0 {
        0.0
    } else {
        report.counts.instructions as f64 / breakdown.total_cycles as f64
    };
    report.breakdown = breakdown;
    report.topdown = topdown;

    vtx_telemetry::ports::publish(&refinement.solve.utilization, bound);
    Ok(refinement)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vtx_uarch::hierarchy::LevelCounters;
    use vtx_uarch::interval::ExecutionCounts;

    fn fake_report(cfg: &UarchConfig) -> ProfileReport {
        let counts = ExecutionCounts {
            instructions: 1_000_000,
            uops: 1_100_000,
            branches: 100_000,
            branch_mispredicts: 2_000,
            inst_fetch: LevelCounters {
                l1: 300_000,
                l2: 2_000,
                l3: 200,
                l4: 0,
                mem: 50,
            },
            itlb_misses: 100,
            loads: LevelCounters {
                l1: 200_000,
                l2: 8_000,
                l3: 1_500,
                l4: 0,
                mem: 700,
            },
            stores: LevelCounters {
                l1: 80_000,
                l2: 3_000,
                l3: 400,
                l4: 0,
                mem: 150,
            },
            heavy_ops: 100_000,
            redirects: 10_000,
        };
        let breakdown = CoreModel::new(cfg).run(&counts);
        let topdown = breakdown.topdown();
        ProfileReport {
            config_name: cfg.name.clone(),
            seconds: breakdown.seconds(cfg.freq_ghz),
            ipc: counts.instructions as f64 / breakdown.total_cycles as f64,
            counts,
            breakdown,
            topdown,
            mpki: Default::default(),
            stalls: Default::default(),
            hotspots: vec![("satd".to_owned(), 700_000), ("cabac".to_owned(), 300_000)],
            profile: vtx_trace::kernel::KernelProfile::new(0),
        }
    }

    #[test]
    fn bound_never_exceeds_width_and_binds_for_simd_mixes() {
        for cfg in UarchConfig::table_iv() {
            let b = dispatch_bound(&cfg, &UopMix::for_kernel("sad")).unwrap();
            assert!(b <= f64::from(cfg.dispatch_width) + 1e-12, "{}", cfg.name);
            assert!(b > 0.0);
        }
        // A SIMD-saturated mix cannot sustain the full width on the
        // two-SIMD-port baseline layout.
        let cfg = UarchConfig::baseline();
        let b = dispatch_bound(&cfg, &UopMix::for_kernel("sad")).unwrap();
        assert!(b < f64::from(cfg.dispatch_width));
    }

    #[test]
    fn refinement_inflates_backend_core_and_keeps_topdown_normalized() {
        let cfg = UarchConfig::baseline();
        let mut report = fake_report(&cfg);
        let before = report.topdown;
        let r = refine_report(&mut report, &cfg).unwrap();
        assert!(r.slowdown() >= 1.0);
        assert!((report.topdown.sum() - 1.0).abs() < 1e-9);
        assert!(report.topdown.backend_core >= before.backend_core);
        // Report fields were rewritten consistently.
        assert_eq!(report.breakdown.total_cycles, r.cycles_after);
        assert!(
            (report.ipc - report.counts.instructions as f64 / report.breakdown.total_cycles as f64)
                .abs()
                < 1e-12
        );
        assert!((report.seconds - report.breakdown.seconds(cfg.freq_ghz)).abs() < 1e-15);
    }

    #[test]
    fn widened_core_feels_less_port_pressure() {
        let base = UarchConfig::baseline();
        let be2 = UarchConfig::be_op2();
        let mix = UopMix::for_kernel("satd");
        let b_base = dispatch_bound(&base, &mix).unwrap();
        let b_be2 = dispatch_bound(&be2, &mix).unwrap();
        assert!(
            b_be2 >= b_base,
            "widened layout should not bind tighter: {b_be2} vs {b_base}"
        );
    }

    #[test]
    fn refinement_publishes_port_gauges() {
        let cfg = UarchConfig::baseline();
        let mut report = fake_report(&cfg);
        let before = vtx_telemetry::ports::solver_runs().value();
        refine_report(&mut report, &cfg).unwrap();
        assert!(vtx_telemetry::ports::solver_runs().value() > before);
    }
}
