//! uops.info-style automated port-mapping inference.
//!
//! The harness plays both sides of the experiment that Abel & Reineke run
//! against real silicon:
//!
//! * [`BlockedPortBench`] is the "machine": it holds a hidden ground-truth
//!   [`PortLayout`] and answers throughput queries for a uop class (or a
//!   whole mix) while a chosen set of ports is blocked by saturating filler
//!   uops, with a small deterministic measurement noise.
//! * [`infer`] is the "experimenter": it only calls the bench's public
//!   measurement API, never looks at the hidden layout, and recovers the
//!   port mapping from blocked-port throughput differentials. From the
//!   recovered mapping it also builds a PALMED-style conjunctive
//!   abstract-resource model: one resource per distinct port-union, where a
//!   class uses a resource iff its ports lie inside the resource's union.
//!
//! Every measurement is a pure function of `(seed, experiment identity)`,
//! so two runs with the same seed are byte-identical — the determinism CI
//! job compares full rendered reports across runs.

use serde::{Deserialize, Serialize};

use vtx_uarch::config::UarchConfig;

use crate::error::PortError;
use crate::layout::{ClassMask, PortLayout, PortMask, UopClass, NUM_CLASSES};
use crate::mix::UopMix;
use crate::rng::derive;
use crate::solver::solve;

/// Relative half-width of the multiplicative measurement noise the bench
/// injects (±1%). Inference thresholds sit far above this.
pub const NOISE: f64 = 0.01;

/// Synthetic measurement bench: a hidden layout probed through blocked-port
/// throughput experiments.
#[derive(Debug)]
pub struct BlockedPortBench {
    truth: PortLayout,
    seed: u64,
    experiments: std::cell::Cell<u64>,
}

impl BlockedPortBench {
    /// Wraps a ground-truth layout. `seed` drives the measurement noise.
    pub fn new(truth: PortLayout, seed: u64) -> Self {
        BlockedPortBench {
            truth,
            seed,
            experiments: std::cell::Cell::new(0),
        }
    }

    /// How many measurements have been taken so far.
    pub fn experiments(&self) -> u64 {
        self.experiments.get()
    }

    /// Number of ports the machine under test exposes (observable on real
    /// hardware from counter topology, so the experimenter may use it).
    pub fn num_ports(&self) -> usize {
        self.truth.num_ports()
    }

    /// Name of the machine under test (for reports).
    pub fn machine(&self) -> &str {
        &self.truth.name
    }

    /// Deterministic noise factor for one experiment identity.
    fn noise(&self, salt: u64) -> f64 {
        let u = (derive(self.seed, salt) >> 11) as f64 / (1u64 << 53) as f64;
        1.0 + NOISE * (2.0 * u - 1.0)
    }

    /// Measured throughput (uops/cycle) of a single-class micro-kernel with
    /// the ports in `blocked` kept busy by filler uops. A class whose ports
    /// are all blocked measures 0.
    pub fn measure_class(&self, class: UopClass, blocked: PortMask) -> f64 {
        self.experiments.set(self.experiments.get() + 1);
        let free = self.truth.class_ports(class) & !blocked;
        let ideal = f64::from(free.count_ones());
        let salt = 0x10 + class.index() as u64 * 0x1_0000 + u64::from(blocked);
        ideal * self.noise(salt)
    }

    /// Measured throughput of a full mix with ports blocked. Unserved
    /// classes surface as an error just as a hung micro-benchmark would.
    pub fn measure_mix(&self, mix: &UopMix, blocked: PortMask) -> Result<f64, PortError> {
        self.experiments.set(self.experiments.get() + 1);
        let masked = self.masked_truth(blocked)?;
        let s = solve(&masked, mix, f64::from(u32::MAX))?;
        let mut salt_bits = 0u64;
        for f in mix.fractions() {
            salt_bits = salt_bits.wrapping_mul(31).wrapping_add((f * 1e6) as u64);
        }
        let salt = (0x9000_0000 + salt_bits) ^ u64::from(blocked);
        Ok(s.uops_per_cycle * self.noise(salt))
    }

    /// The hidden layout with blocked ports stripped.
    fn masked_truth(&self, blocked: PortMask) -> Result<PortLayout, PortError> {
        let mut classes_per_port: Vec<Vec<UopClass>> = Vec::new();
        for p in 0..self.truth.num_ports() {
            if blocked & (1 << p) as PortMask != 0 {
                classes_per_port.push(Vec::new());
                continue;
            }
            classes_per_port.push(
                UopClass::ALL
                    .into_iter()
                    .filter(|c| self.truth.allows(p, *c))
                    .collect(),
            );
        }
        let refs: Vec<&[UopClass]> = classes_per_port.iter().map(Vec::as_slice).collect();
        PortLayout::new(&self.truth.name, &refs)
    }
}

/// One abstract resource of the PALMED-style conjunctive model: classes
/// mapped to `classes` share the `ports.count_ones()` slots of `ports`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AbstractResource {
    /// Ports pooled by this resource.
    pub ports: PortMask,
    /// Classes that load this resource.
    pub classes: ClassMask,
    /// Slots per cycle (`ports.count_ones()`).
    pub throughput: f64,
}

/// A port mapping recovered purely from measurements.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InferredModel {
    /// Recovered layout (same shape as the hidden truth when inference
    /// succeeds).
    pub layout: PortLayout,
    /// Conjunctive resources: predicted load is `max` over resources of
    /// `flow(classes) / throughput`.
    pub resources: Vec<AbstractResource>,
    /// Measurements spent.
    pub experiments: u64,
}

impl InferredModel {
    /// Predicted throughput of `mix` from the conjunctive resources alone
    /// (clamped to `width`). Mirrors PALMED: the resources compress the
    /// layout, and for mappings recovered here they reproduce the exact
    /// subset bound.
    pub fn predicted_throughput(&self, mix: &UopMix, width: f64) -> Result<f64, PortError> {
        if width <= 0.0 {
            return Err(PortError::ZeroWidth);
        }
        let flow = mix.fractions();
        let mut load = 0.0f64;
        for r in &self.resources {
            let f: f64 = UopClass::ALL
                .iter()
                .filter(|c| r.classes & (1 << c.index()) as ClassMask != 0)
                .map(|c| flow[c.index()])
                .sum();
            if f > 0.0 {
                load = load.max(f / r.throughput);
            }
        }
        // A class with flow but no resource would be unserved.
        for c in UopClass::ALL {
            if flow[c.index()] > 0.0 && self.layout.class_ports(c) == 0 {
                return Err(PortError::UnservedClass {
                    class: c,
                    layout: self.layout.name.clone(),
                });
            }
        }
        if load <= 0.0 {
            return Ok(width);
        }
        Ok(width.min(1.0 / load))
    }
}

/// Recovers the port mapping of the machine behind `bench`.
///
/// For every class, the membership probe blocks all ports but one: if the
/// class still issues (throughput > 0.5 against noise ±1%), that port
/// accepts it. An unblocked run cross-checks the recovered port count; a
/// disagreement beyond the noise budget is a conflict, not a silent guess.
///
/// # Errors
///
/// [`PortError::InferenceConflict`] when the cross-check fails (cannot
/// happen against [`BlockedPortBench`] noise, but guards future benches
/// with structural error injected).
pub fn infer(bench: &BlockedPortBench) -> Result<InferredModel, PortError> {
    let n = bench.num_ports();
    let all = ((1u32 << n) - 1) as PortMask;
    let mut recovered: Vec<Vec<UopClass>> = vec![Vec::new(); n];
    for class in UopClass::ALL {
        let mut member_ports: PortMask = 0;
        for (p, port_classes) in recovered.iter_mut().enumerate() {
            let blocked = all & !(1 << p) as PortMask;
            let t = bench.measure_class(class, blocked);
            // One free port sustains ~1 uop/cycle if it accepts the class,
            // ~0 otherwise; 0.5 splits the modes with 49σ of margin.
            if t > 0.5 {
                member_ports |= (1 << p) as PortMask;
                port_classes.push(class);
            }
        }
        // Cross-check: unblocked throughput must equal the member count.
        let unblocked = bench.measure_class(class, 0);
        let expect = f64::from(member_ports.count_ones());
        if (unblocked - expect).abs() > expect.max(1.0) * (3.0 * NOISE + 0.05) {
            return Err(PortError::InferenceConflict {
                class,
                recovered_ports: member_ports.count_ones(),
                unblocked,
            });
        }
    }
    let refs: Vec<&[UopClass]> = recovered.iter().map(Vec::as_slice).collect();
    let layout = PortLayout::new(bench.machine(), &refs)?;
    let resources = conjunctive_resources(&layout);
    Ok(InferredModel {
        layout,
        resources,
        experiments: bench.experiments(),
    })
}

/// Builds the conjunctive resource set of a layout: one resource per
/// distinct nonempty port-union over class subsets, loading exactly the
/// classes whose ports sit inside the union. This is the minimal PALMED
/// decomposition for a mapping with unit-throughput ports, and it makes the
/// abstract model reproduce the exact subset bound.
fn conjunctive_resources(layout: &PortLayout) -> Vec<AbstractResource> {
    let mut unions: Vec<PortMask> = Vec::new();
    for subset in 1u16..(1 << NUM_CLASSES) {
        let u = layout.union_ports(subset as ClassMask);
        if u != 0 && !unions.contains(&u) {
            unions.push(u);
        }
    }
    unions.sort_unstable();
    unions
        .into_iter()
        .map(|ports| {
            let classes = UopClass::ALL
                .into_iter()
                .filter(|c| {
                    let cp = layout.class_ports(*c);
                    cp != 0 && cp & !ports == 0
                })
                .fold(0, |m, c| m | (1 << c.index()) as ClassMask);
            AbstractResource {
                ports,
                classes,
                throughput: f64::from(ports.count_ones()),
            }
        })
        .filter(|r| r.classes != 0)
        .collect()
}

/// Validation of an inferred model against its bench: worst relative error
/// between predicted and measured throughput over the standard mix suite
/// (every table kernel plus the ten preset blends).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Validation {
    /// Worst relative error across the suite.
    pub max_rel_error: f64,
    /// Mean relative error across the suite.
    pub mean_rel_error: f64,
    /// Mixes evaluated.
    pub cases: usize,
}

/// Validates `model` against `bench` over every table kernel mix and the
/// ten preset blends, at unbounded width (pure port bound).
pub fn validate(model: &InferredModel, bench: &BlockedPortBench) -> Result<Validation, PortError> {
    let width = f64::from(u32::MAX);
    let mut max_rel = 0.0f64;
    let mut sum_rel = 0.0f64;
    let mut cases = 0usize;
    let mut check = |mix: &UopMix| -> Result<(), PortError> {
        let predicted = model.predicted_throughput(mix, width)?;
        let measured = bench.measure_mix(mix, 0)?;
        let rel = (predicted - measured).abs() / measured.max(1e-9);
        max_rel = max_rel.max(rel);
        sum_rel += rel;
        cases += 1;
        Ok(())
    };
    for name in UopMix::kernel_names() {
        check(&UopMix::for_kernel(name))?;
    }
    for rank in 0..10 {
        check(&UopMix::for_preset_rank(rank))?;
    }
    Ok(Validation {
        max_rel_error: max_rel,
        mean_rel_error: sum_rel / cases as f64,
        cases,
    })
}

/// Runs the full inference experiment across every Table IV configuration
/// and renders a deterministic text report (byte-identical for identical
/// seeds — the CI determinism job compares two of these).
pub fn render_inference_report(seed: u64) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "port-mapping inference (seed {seed})");
    for cfg in &UarchConfig::table_iv() {
        let truth = PortLayout::for_config(cfg);
        let bench = BlockedPortBench::new(
            truth.clone(),
            derive(
                seed,
                0xC0F + cfg.name.len() as u64 * 131 + cfg.name.bytes().map(u64::from).sum::<u64>(),
            ),
        );
        let _ = writeln!(out, "\nconfig {} ({} ports)", cfg.name, truth.num_ports());
        match infer(&bench) {
            Err(e) => {
                let _ = writeln!(out, "  inference FAILED: {e}");
            }
            Ok(model) => {
                let exact = model.layout.render() == truth.render();
                let _ = writeln!(
                    out,
                    "  recovered mapping ({} experiments, exact={})",
                    model.experiments, exact
                );
                out.push_str(&model.layout.render());
                let _ = writeln!(out, "  resources: {}", model.resources.len());
                match validate(&model, &bench) {
                    Err(e) => {
                        let _ = writeln!(out, "  validation FAILED: {e}");
                    }
                    Ok(v) => {
                        let _ = writeln!(
                            out,
                            "  validation: {} mixes, mean rel err {:.4}, max rel err {:.4}",
                            v.cases, v.mean_rel_error, v.max_rel_error
                        );
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_gainestown_exactly() {
        let bench = BlockedPortBench::new(PortLayout::gainestown(), 1);
        let model = infer(&bench).unwrap();
        assert_eq!(model.layout.render(), PortLayout::gainestown().render());
        // 7 classes × (6 probes + 1 cross-check) = 49 experiments.
        assert_eq!(model.experiments, 49);
    }

    #[test]
    fn recovers_widened_exactly() {
        let bench = BlockedPortBench::new(PortLayout::widened(), 2);
        let model = infer(&bench).unwrap();
        assert_eq!(model.layout.render(), PortLayout::widened().render());
    }

    #[test]
    fn validation_within_noise() {
        for (truth, seed) in [(PortLayout::gainestown(), 3), (PortLayout::widened(), 4)] {
            let bench = BlockedPortBench::new(truth, seed);
            let model = infer(&bench).unwrap();
            let v = validate(&model, &bench).unwrap();
            assert!(v.cases > 30);
            // Exact recovery: only measurement noise (±1%) separates
            // prediction from measurement — far inside the 5% criterion.
            assert!(v.max_rel_error < 0.05, "max rel err {}", v.max_rel_error);
        }
    }

    #[test]
    fn conjunctive_model_matches_solver() {
        let truth = PortLayout::gainestown();
        let bench = BlockedPortBench::new(truth.clone(), 5);
        let model = infer(&bench).unwrap();
        for rank in 0..10 {
            let mix = UopMix::for_preset_rank(rank);
            let exact = solve(&truth, &mix, 4.0).unwrap().uops_per_cycle;
            let abstracted = model.predicted_throughput(&mix, 4.0).unwrap();
            assert!(
                (exact - abstracted).abs() < 1e-9,
                "rank {rank}: {exact} vs {abstracted}"
            );
        }
    }

    #[test]
    fn report_is_deterministic() {
        assert_eq!(render_inference_report(42), render_inference_report(42));
        assert_ne!(render_inference_report(42), render_inference_report(43));
    }

    #[test]
    fn report_covers_all_table_iv_configs() {
        let r = render_inference_report(7);
        for name in ["baseline", "fe_op", "be_op1", "be_op2", "bs_op"] {
            assert!(r.contains(name), "missing {name}:\n{r}");
        }
        assert!(!r.contains("FAILED"), "{r}");
        assert!(r.contains("exact=true"));
    }

    #[test]
    fn measurement_noise_is_bounded_and_deterministic() {
        let bench = BlockedPortBench::new(PortLayout::gainestown(), 9);
        let a = bench.measure_class(UopClass::Load, 0);
        let bench2 = BlockedPortBench::new(PortLayout::gainestown(), 9);
        let b = bench2.measure_class(UopClass::Load, 0);
        assert_eq!(a, b);
        assert!((a - 2.0).abs() < 2.0 * NOISE + 1e-9);
    }
}
