//! # vtx-port — issue-port execution model and port-mapping inference
//!
//! The interval model (`vtx-uarch`) treats the execution back end as a flat
//! dispatch width: any four uops issue per cycle regardless of what they
//! are. Real cores issue through *ports* — each accepting only some uop
//! classes — and codec kernels stress them very unevenly: SAD/SATD saturate
//! the SIMD ports while CABAC lives on the scalar ALUs and the branch unit.
//! This crate models that level:
//!
//! * [`layout`] — per-microarchitecture port layouts (ports × uop classes),
//!   keyed to the Table IV configurations of `vtx-uarch`: the
//!   core-widened `be_op2` column gets a seventh port, everything else
//!   shares the Gainestown-style six-port layout.
//! * [`mix`] — per-kernel uop-class mixes for every `vtx-codec` kernel,
//!   aggregated from profiled hotspot weights or blended per preset rank.
//! * [`solver`] — a saturating-flow steady-state solver: the exact
//!   max-flow subset bound `L* = max_S f(S)/|ports(S)|` over the seven uop
//!   classes gives sustainable uops/cycle and per-port utilization.
//! * [`infer`] — a uops.info-style inference harness: a hidden
//!   ground-truth layout is probed only through blocked-port throughput
//!   measurements (with deterministic noise), the experimenter recovers
//!   the mapping, compresses it into a PALMED-style conjunctive
//!   abstract-resource model, and validates predictions against fresh
//!   measurements. Byte-deterministic for a fixed seed.
//! * [`integrate`] — wiring into the rest of the pipeline: the solver's
//!   dispatch bound feeds `CoreModel::with_dispatch_bound`, so port
//!   contention shows up as backend-core Top-down share, and per-port
//!   utilizations publish to `vtx-telemetry` gauges.
//!
//! # Quickstart
//!
//! ```
//! use vtx_port::{solve, PortLayout, UopMix};
//!
//! let layout = PortLayout::gainestown();
//! let mix = UopMix::for_kernel("satd");
//! let s = solve(&layout, &mix, 4.0).expect("satd mix is well-formed");
//! assert!(s.uops_per_cycle <= 4.0);
//! assert!(s.utilization.iter().all(|u| (0.0..=1.0 + 1e-9).contains(u)));
//! ```
//!
//! Inference round-trip:
//!
//! ```
//! use vtx_port::{infer, BlockedPortBench, PortLayout};
//!
//! let bench = BlockedPortBench::new(PortLayout::gainestown(), 42);
//! let model = infer::infer(&bench).expect("probes are consistent");
//! assert_eq!(model.layout.render(), PortLayout::gainestown().render());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod error;
pub mod infer;
pub mod integrate;
pub mod layout;
pub mod mix;
pub mod rng;
pub mod solver;

pub use error::PortError;
pub use infer::{
    render_inference_report, validate, AbstractResource, BlockedPortBench, InferredModel,
};
pub use integrate::{dispatch_bound, refine_report, PortRefinement};
pub use layout::{ClassMask, PortLayout, PortMask, UopClass, NUM_CLASSES};
pub use mix::UopMix;
pub use solver::{solve, ThroughputSolve};
