//! Zipf popularity over a finite catalog.
//!
//! Video popularity in production CDNs is famously heavy-tailed: a small
//! head of titles absorbs most requests. We model it as Zipf(s): item of
//! rank `i` (0-based) gets weight `(i + 1)^-s`. The sampler precomputes
//! the normalized CDF once and maps a caller-supplied uniform draw to a
//! rank by binary search, so it composes with any RNG the caller already
//! threads through its draw sequence (the workload generator hands it the
//! same SplitMix64 stream it uses for everything else, keeping trace
//! generation byte-deterministic).

/// Inverse-CDF sampler for a Zipf(s) distribution over `n` ranks.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    /// `cdf[i]` = P(rank <= i); strictly increasing, last element 1.0.
    cdf: Vec<f64>,
    /// The skew exponent the table was built with.
    s: f64,
}

impl ZipfSampler {
    /// Build the CDF table for `n` ranks with skew `s`.
    ///
    /// `s = 0` degenerates to uniform; `s = 1` is the classic Zipf head
    /// (~rank-1 gets 1/H_n of the mass). `n` must be nonzero and `s`
    /// finite and nonnegative.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "zipf catalog must be nonempty");
        assert!(s.is_finite() && s >= 0.0, "zipf skew must be finite >= 0");
        let mut cdf = Vec::with_capacity(n);
        let mut total = 0.0f64;
        for i in 0..n {
            total += ((i + 1) as f64).powf(-s);
            cdf.push(total);
        }
        for v in &mut cdf {
            *v /= total;
        }
        // Guard against float slop: the last bucket must catch u -> 1.
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }
        Self { cdf, s }
    }

    /// Number of ranks in the catalog.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True when the catalog is empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// The skew exponent this table was built with.
    pub fn skew(&self) -> f64 {
        self.s
    }

    /// Map a uniform draw `u` in `[0, 1)` to a rank in `0..len()`.
    pub fn sample(&self, u: f64) -> usize {
        debug_assert!((0.0..1.0).contains(&u), "u must be in [0,1)");
        self.cdf
            .partition_point(|&c| c <= u)
            .min(self.cdf.len() - 1)
    }

    /// Probability mass of `rank` (for tests and reporting).
    pub fn mass(&self, rank: usize) -> f64 {
        let lo = if rank == 0 { 0.0 } else { self.cdf[rank - 1] };
        self.cdf[rank] - lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic low-discrepancy probe: a dense grid of uniforms.
    fn grid_frequencies(z: &ZipfSampler, draws: usize) -> Vec<u64> {
        let mut freq = vec![0u64; z.len()];
        for i in 0..draws {
            let u = (i as f64 + 0.5) / draws as f64;
            freq[z.sample(u)] += 1;
        }
        freq
    }

    #[test]
    fn uniform_when_skew_zero() {
        let z = ZipfSampler::new(8, 0.0);
        let freq = grid_frequencies(&z, 8000);
        for &f in &freq {
            assert!((f as i64 - 1000).abs() <= 1, "near-uniform: {freq:?}");
        }
    }

    #[test]
    fn frequency_sanity_classic_zipf() {
        // Zipf(1.0) over 10 ranks: head mass 1/H_10 ~ 0.341, and the
        // rank frequencies must be non-increasing.
        let z = ZipfSampler::new(10, 1.0);
        let freq = grid_frequencies(&z, 100_000);
        for w in freq.windows(2) {
            assert!(w[0] >= w[1], "monotone non-increasing: {freq:?}");
        }
        let head = freq[0] as f64 / 100_000.0;
        assert!((head - 0.3414).abs() < 0.01, "head mass {head}");
        // Rank 0 must dominate rank 9 by roughly 10x.
        assert!(freq[0] > 8 * freq[9], "head/tail ratio: {freq:?}");
    }

    #[test]
    fn sample_edges() {
        let z = ZipfSampler::new(4, 1.2);
        assert_eq!(z.sample(0.0), 0);
        // Just below 1.0 lands on the last rank's bucket boundary side.
        assert_eq!(z.sample(0.999_999_9), 3);
        assert_eq!(z.len(), 4);
        assert!(!z.is_empty());
        let total: f64 = (0..4).map(|r| z.mass(r)).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn single_rank_catalog() {
        let z = ZipfSampler::new(1, 1.0);
        assert_eq!(z.sample(0.0), 0);
        assert_eq!(z.sample(0.5), 0);
    }
}
