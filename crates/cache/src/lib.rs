//! # vtx-cache — popularity-aware segment caching for the serving stack
//!
//! The paper characterizes cloud transcoding as a fleet-scale workload
//! where the same popular titles are transcoded over and over under
//! distinct live/VOD presets. Once `(segment, rung)` is the dispatch unit
//! (vtx-serve's segmented ABR path), a segment-granular cache converts
//! repeated transcodes into lookups. This crate provides the two pieces
//! that make that study reproducible:
//!
//! * [`zipf::ZipfSampler`] — a seedable Zipf(s) popularity distribution
//!   over a finite catalog, sampled by inverse CDF from a caller-supplied
//!   uniform draw so the workload generator's byte-determinism carries
//!   through unchanged.
//! * [`cache::SegmentCache`] — a byte-capacity-bounded cache keyed by
//!   [`cache::CacheKey`] `(video, preset, crf, refs, rung, segment)` with
//!   pluggable deterministic eviction ([`cache::EvictPolicy`]): LRU, LFU,
//!   and a cost-aware GDSF variant that weighs the recompute cost billed
//!   by the serving cost model against entry size. Both the discrete-event
//!   simulator and the real threaded executor consume the same structure —
//!   a hit skips the transcode and bills a lookup cost, a miss populates
//!   the cache from the muxed segment bytes.
//!
//! Everything in this crate is a pure function of its inputs: no clocks,
//! no thread-local state, and BTreeMap-ordered victim scans, so two runs
//! fed identical key streams produce identical hit/miss/evict sequences.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cache;
pub mod zipf;

pub use cache::{CacheKey, CacheSpec, CacheStats, EvictPolicy, SegmentCache};
pub use zipf::ZipfSampler;
