//! The deterministic byte-bounded segment cache.
//!
//! Keys identify an encoded artifact exactly: the source video, the full
//! knob vector (preset, CRF, reference frames), the ladder rung index and
//! the segment index. Two requests that would produce byte-identical
//! CMAF segments share a key; anything else does not.
//!
//! Eviction is deterministic: victims are chosen by scanning the ordered
//! entry map and picking the minimum of a policy-specific score, with the
//! key order itself as the final tie-break. No wall clock, no randomness —
//! a logical tick counter orders recency.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Identity of one encoded segment artifact.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CacheKey {
    /// Source video name (vbench catalog entry).
    pub video: String,
    /// x264 preset the rung encodes with.
    pub preset: String,
    /// CRF the rung encodes with.
    pub crf: u8,
    /// Reference-frame count carried from the parent job.
    pub refs: u32,
    /// Ladder rung index (0 = `hi`).
    pub rung: u32,
    /// Segment index within the video.
    pub seg: u32,
}

impl CacheKey {
    /// Compact deterministic rendering for logs and traces.
    pub fn render(&self) -> String {
        format!(
            "{}#{}@{}:{}:{}r{}",
            self.video, self.seg, self.preset, self.crf, self.rung, self.refs
        )
    }
}

/// Which entry to sacrifice when the byte budget runs out.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum EvictPolicy {
    /// Least-recently-used: evict the entry with the oldest access tick.
    #[default]
    Lru,
    /// Least-frequently-used: evict the entry with the fewest hits,
    /// oldest tick breaking ties.
    Lfu,
    /// Greedy-Dual-Size-Frequency: evict the entry with the smallest
    /// `clock + freq * recompute_cost / size` score, so big artifacts
    /// that are cheap to recompute go first and the aging clock keeps
    /// one-hit wonders from pinning the cache.
    Gdsf,
}

impl EvictPolicy {
    /// All policies, in canonical order.
    pub const ALL: [EvictPolicy; 3] = [EvictPolicy::Lru, EvictPolicy::Lfu, EvictPolicy::Gdsf];

    /// Canonical lowercase name (CLI flag value).
    pub fn name(&self) -> &'static str {
        match self {
            EvictPolicy::Lru => "lru",
            EvictPolicy::Lfu => "lfu",
            EvictPolicy::Gdsf => "gdsf",
        }
    }

    /// Parse a CLI flag value.
    pub fn from_name(name: &str) -> Option<EvictPolicy> {
        EvictPolicy::ALL.into_iter().find(|p| p.name() == name)
    }
}

/// Configuration for a [`SegmentCache`], carried inside `ServeConfig`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CacheSpec {
    /// Byte budget; zero disables admission entirely (all misses).
    pub capacity_bytes: u64,
    /// Eviction policy.
    pub policy: EvictPolicy,
    /// Service time billed for a cache hit, in microseconds.
    pub lookup_us: u64,
}

impl Default for CacheSpec {
    fn default() -> Self {
        CacheSpec {
            capacity_bytes: 0,
            policy: EvictPolicy::Lru,
            lookup_us: 250,
        }
    }
}

/// Cumulative counters, exported into the serving report.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Lookups that found the key.
    pub hits: u64,
    /// Lookups that did not.
    pub misses: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
    /// Entries admitted (first-time inserts).
    pub inserted: u64,
    /// Inserts refused because the artifact alone exceeds capacity.
    pub rejected: u64,
    /// Bytes resident right now.
    pub occupancy_bytes: u64,
    /// The configured byte budget.
    pub capacity_bytes: u64,
    /// Entries resident right now.
    pub entries: u64,
}

impl CacheStats {
    /// Hit rate in milli-units (0..=1000); 0 when no lookups happened.
    pub fn hit_milli(&self) -> u64 {
        (self.hits * 1000)
            .checked_div(self.hits + self.misses)
            .unwrap_or(0)
    }
}

#[derive(Debug, Clone)]
struct Entry {
    bytes: u64,
    cost_us: u64,
    freq: u64,
    last_tick: u64,
    /// GDSF score at last touch (clock + freq * cost / size, scaled).
    pri: u128,
}

/// Fixed-point scale for the GDSF cost/size ratio.
const GDSF_SCALE: u128 = 1024;

/// A byte-capacity-bounded deterministic segment cache.
///
/// Shared verbatim by the simulator and the real executor: `lookup`
/// answers hit/miss and refreshes recency/frequency; `insert` admits a
/// freshly encoded artifact, evicting per policy until it fits.
#[derive(Debug, Clone)]
pub struct SegmentCache {
    spec: CacheSpec,
    entries: BTreeMap<CacheKey, Entry>,
    used: u64,
    tick: u64,
    /// GDSF aging clock: rises to each victim's score on eviction.
    clock: u128,
    hits: u64,
    misses: u64,
    evictions: u64,
    inserted: u64,
    rejected: u64,
}

impl SegmentCache {
    /// Create an empty cache with the given spec.
    pub fn new(spec: CacheSpec) -> Self {
        SegmentCache {
            spec,
            entries: BTreeMap::new(),
            used: 0,
            tick: 0,
            clock: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
            inserted: 0,
            rejected: 0,
        }
    }

    /// Service time billed for a hit, in microseconds.
    pub fn lookup_us(&self) -> u64 {
        self.spec.lookup_us.max(1)
    }

    fn score(&self, e: &Entry) -> u128 {
        self.clock + (e.freq as u128 * e.cost_us as u128 * GDSF_SCALE) / e.bytes.max(1) as u128
    }

    /// Probe for `key`. A hit refreshes recency and frequency and returns
    /// `true`; a miss returns `false`. Both outcomes are counted.
    pub fn lookup(&mut self, key: &CacheKey) -> bool {
        self.tick += 1;
        let tick = self.tick;
        let clock = self.clock;
        if let Some(e) = self.entries.get_mut(key) {
            e.freq += 1;
            e.last_tick = tick;
            e.pri =
                clock + (e.freq as u128 * e.cost_us as u128 * GDSF_SCALE) / e.bytes.max(1) as u128;
            self.hits += 1;
            true
        } else {
            self.misses += 1;
            false
        }
    }

    /// Admit a freshly produced artifact of `bytes` bytes whose recompute
    /// cost (engine service time) was `cost_us`. Evicts per policy until
    /// it fits; returns `false` when the artifact alone exceeds capacity
    /// (capacity zero rejects everything). Re-inserting a resident key
    /// refreshes its size and cost in place.
    pub fn insert(&mut self, key: CacheKey, bytes: u64, cost_us: u64) -> bool {
        let bytes = bytes.max(1);
        if bytes > self.spec.capacity_bytes {
            self.rejected += 1;
            return false;
        }
        self.tick += 1;
        if let Some(e) = self.entries.get_mut(&key) {
            // Refresh in place (same key => same artifact; sizes should
            // match, but stay honest about occupancy if they don't).
            self.used = self.used - e.bytes + bytes;
            e.bytes = bytes;
            e.cost_us = cost_us;
            e.last_tick = self.tick;
            // Occupancy can only shrink here if sizes disagree; no evict.
            return true;
        }
        while self.used + bytes > self.spec.capacity_bytes {
            let victim = self.pick_victim().expect("nonempty: used > 0");
            let gone = self.entries.remove(&victim).expect("victim resident");
            self.used -= gone.bytes;
            self.evictions += 1;
            if self.spec.policy == EvictPolicy::Gdsf {
                self.clock = self.clock.max(self.score(&gone));
            }
        }
        let freq = 1;
        let pri = self.clock + (freq as u128 * cost_us as u128 * GDSF_SCALE) / bytes as u128;
        self.entries.insert(
            key,
            Entry {
                bytes,
                cost_us,
                freq,
                last_tick: self.tick,
                pri,
            },
        );
        self.used += bytes;
        self.inserted += 1;
        true
    }

    /// Choose the eviction victim per policy; `None` when empty.
    fn pick_victim(&self) -> Option<CacheKey> {
        let mut best: Option<(&CacheKey, &Entry)> = None;
        for (k, e) in &self.entries {
            let better = match best {
                None => true,
                Some((_, b)) => match self.spec.policy {
                    EvictPolicy::Lru => e.last_tick < b.last_tick,
                    EvictPolicy::Lfu => (e.freq, e.last_tick) < (b.freq, b.last_tick),
                    EvictPolicy::Gdsf => (e.pri, e.last_tick) < (b.pri, b.last_tick),
                },
            };
            if better {
                best = Some((k, e));
            }
        }
        best.map(|(k, _)| k.clone())
    }

    /// Snapshot the cumulative counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            inserted: self.inserted,
            rejected: self.rejected,
            occupancy_bytes: self.used,
            capacity_bytes: self.spec.capacity_bytes,
            entries: self.entries.len() as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(video: &str, seg: u32, rung: u32) -> CacheKey {
        CacheKey {
            video: video.to_owned(),
            preset: "veryfast".to_owned(),
            crf: 26,
            refs: 2,
            rung,
            seg,
        }
    }

    fn cache(capacity: u64, policy: EvictPolicy) -> SegmentCache {
        SegmentCache::new(CacheSpec {
            capacity_bytes: capacity,
            policy,
            lookup_us: 250,
        })
    }

    #[test]
    fn zero_capacity_rejects_everything() {
        let mut c = cache(0, EvictPolicy::Lru);
        assert!(!c.insert(key("a", 0, 0), 1, 100));
        assert!(!c.lookup(&key("a", 0, 0)));
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.rejected, s.entries), (0, 1, 1, 0));
        assert_eq!(s.occupancy_bytes, 0);
        assert_eq!(s.hit_milli(), 0);
    }

    #[test]
    fn capacity_boundary_exact_fit_then_evict() {
        let mut c = cache(100, EvictPolicy::Lru);
        assert!(c.insert(key("a", 0, 0), 60, 100));
        assert!(c.insert(key("b", 0, 0), 40, 100)); // exactly full
        assert_eq!(c.stats().occupancy_bytes, 100);
        assert_eq!(c.stats().evictions, 0);
        // One more byte forces an eviction of the LRU entry ("a").
        assert!(c.insert(key("c", 0, 0), 1, 100));
        let s = c.stats();
        assert_eq!(s.evictions, 1);
        assert!(!c.lookup(&key("a", 0, 0)));
        assert!(c.lookup(&key("b", 0, 0)));
        assert!(c.lookup(&key("c", 0, 0)));
    }

    #[test]
    fn oversized_artifact_rejected_single_entry_kept() {
        let mut c = cache(50, EvictPolicy::Lru);
        assert!(!c.insert(key("big", 0, 0), 51, 100));
        assert_eq!(c.stats().rejected, 1);
        // A single entry exactly at capacity is admissible and survives.
        assert!(c.insert(key("fit", 0, 0), 50, 100));
        assert!(c.lookup(&key("fit", 0, 0)));
        // The next artifact displaces it (single-entry cache behavior).
        assert!(c.insert(key("next", 0, 0), 50, 100));
        assert!(!c.lookup(&key("fit", 0, 0)));
        assert!(c.lookup(&key("next", 0, 0)));
        assert_eq!(c.stats().entries, 1);
    }

    #[test]
    fn lru_evicts_oldest_touch() {
        let mut c = cache(30, EvictPolicy::Lru);
        c.insert(key("a", 0, 0), 10, 100);
        c.insert(key("b", 0, 0), 10, 100);
        c.insert(key("c", 0, 0), 10, 100);
        assert!(c.lookup(&key("a", 0, 0))); // refresh a; b is now LRU
        c.insert(key("d", 0, 0), 10, 100);
        assert!(c.lookup(&key("a", 0, 0)));
        assert!(!c.lookup(&key("b", 0, 0)));
        assert!(c.lookup(&key("c", 0, 0)));
    }

    #[test]
    fn lfu_keeps_frequent() {
        let mut c = cache(20, EvictPolicy::Lfu);
        c.insert(key("hot", 0, 0), 10, 100);
        c.insert(key("cold", 0, 0), 10, 100);
        for _ in 0..5 {
            assert!(c.lookup(&key("hot", 0, 0)));
        }
        // "cold" was touched more recently, but "hot" has higher freq.
        c.insert(key("new", 0, 0), 10, 100);
        assert!(c.lookup(&key("hot", 0, 0)));
        assert!(!c.lookup(&key("cold", 0, 0)));
    }

    #[test]
    fn gdsf_prefers_evicting_cheap_big_artifacts() {
        let mut c = cache(30, EvictPolicy::Gdsf);
        // Big and cheap to recompute: low score.
        c.insert(key("cheapbig", 0, 0), 20, 1_000);
        // Small and expensive to recompute: high score.
        c.insert(key("dearsmall", 0, 0), 10, 50_000);
        c.insert(key("next", 0, 0), 15, 10_000);
        assert!(!c.lookup(&key("cheapbig", 0, 0)));
        assert!(c.lookup(&key("dearsmall", 0, 0)));
        assert!(c.lookup(&key("next", 0, 0)));
    }

    #[test]
    fn reinsert_refreshes_in_place() {
        let mut c = cache(100, EvictPolicy::Lru);
        assert!(c.insert(key("a", 0, 0), 40, 100));
        assert!(c.insert(key("a", 0, 0), 50, 200));
        let s = c.stats();
        assert_eq!(s.entries, 1);
        assert_eq!(s.occupancy_bytes, 50);
        assert_eq!(s.inserted, 1);
    }

    fn drive(c: &mut SegmentCache) -> CacheStats {
        for i in 0..200u32 {
            let k = key("v", i % 7, i % 3);
            if !c.lookup(&k) {
                c.insert(k, 64 + u64::from(i % 5) * 16, 1_000 + u64::from(i) * 7);
            }
        }
        c.stats()
    }

    #[test]
    fn deterministic_under_identical_streams() {
        for policy in EvictPolicy::ALL {
            let a = drive(&mut cache(512, policy));
            let b = drive(&mut cache(512, policy));
            assert_eq!(a, b, "{policy:?}");
            assert_eq!(a.hits + a.misses, 200);
        }
    }

    #[test]
    fn policy_names_roundtrip() {
        for p in EvictPolicy::ALL {
            assert_eq!(EvictPolicy::from_name(p.name()), Some(p));
        }
        assert_eq!(EvictPolicy::from_name("arc"), None);
    }

    #[test]
    fn key_render_is_compact() {
        assert_eq!(key("cat", 3, 1).render(), "cat#3@veryfast:26:1r2");
    }
}
