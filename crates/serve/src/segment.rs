//! Segment-granular dispatch: a catalog job fans out into per-(segment,
//! rung) units.
//!
//! The paper's serving workload is segmented ABR delivery, not whole-clip
//! transcodes: a source clip is cut at GOP boundaries into ~2-second
//! segments and every segment is transcoded to each rung of a bitrate
//! ladder. [`SegmentPlan::expand`] performs that decomposition — each
//! catalog job becomes `segments × rungs` dispatch units that flow through
//! the existing admission/dispatch/chaos/obs machinery as ordinary jobs
//! with dense ids (so exactly-once conservation, retries and requeues all
//! apply per *segment*, not per clip). A catalog job is complete only when
//! every one of its units completed — i.e. when its manifest can be
//! assembled from all rung segments ([`SegmentPlan::stats`],
//! [`SegmentPlan::manifests`]).
//!
//! [`SegmentPlan::materialize`] is the byte-deterministic packaging path
//! shared by the simulated and real drivers: it encodes each (video, rung)
//! with forced IDRs at the cut points and muxes the result into CMAF
//! init/media segments via `vtx-container`. Because the encoded bytes
//! depend only on (seed, plan), both drivers emit identical artifacts for
//! the same seed.

use std::collections::{BTreeMap, BTreeSet};

use vtx_codec::{encode_video, instr};
use vtx_container::package::{master_playlist, media_playlist, package_stream};
use vtx_container::segment::segment_points;
use vtx_container::{manifest, Ladder};
use vtx_core::CoreError;
use vtx_frame::vbench;
use vtx_frame::{synth, VideoSpec};
use vtx_sched::TranscodeTask;
use vtx_trace::layout::CodeLayout;
use vtx_trace::Profiler;
use vtx_uarch::config::UarchConfig;

use crate::error::ServeError;
use crate::report::SegmentStats;
use crate::service::EventRecord;
use crate::workload::JobSpec;

/// How to decompose catalog jobs into dispatch units.
#[derive(Debug, Clone, PartialEq)]
pub struct SegmentOptions {
    /// Target segment duration in milliseconds (cut points land on whole
    /// GOPs of `fps * target_ms / 1000` frames).
    pub target_ms: u32,
    /// The ABR ladder every segment fans out across.
    pub ladder: Ladder,
    /// Use thumbnail geometry (64×48×6 frames), matching the real
    /// executor's smoke mode. Production-shaped plans set this to `false`.
    pub tiny: bool,
    /// Rung indices live (interactive) parents fan across — a trimmed
    /// per-class ladder, since a live edge serves fewer renditions than a
    /// VOD packaging job. Empty (the default) fans every parent across
    /// the full ladder; out-of-range indices are ignored.
    pub live_rungs: Vec<usize>,
    /// Stagger unit deadlines by rung so low rungs ship first: with `n`
    /// rungs, the unit for rung position `i` (0 = `hi`) gets
    /// `budget × (n − i) / n` of the parent's deadline budget. The lowest
    /// rung then has the earliest deadline, so EDF admission drains it
    /// first and a degraded manifest has something to serve. `false` (the
    /// default) keeps every unit on the parent's deadline.
    pub rung_deadlines: bool,
}

impl Default for SegmentOptions {
    fn default() -> Self {
        SegmentOptions {
            target_ms: 2_000,
            ladder: Ladder::standard(),
            tiny: true,
            live_rungs: Vec::new(),
            rung_deadlines: false,
        }
    }
}

/// One catalog job of the plan, with its resolved segment geometry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParentInfo {
    /// The catalog job's original id.
    pub id: u64,
    /// vbench short name.
    pub video: String,
    /// Reference-frame count inherited by every unit.
    pub refs: u8,
    /// Clip length in frames at plan geometry.
    pub frames: u32,
    /// Frame rate.
    pub fps: u32,
    /// Segment start frames (`[0, g, 2g, …]`).
    pub points: Vec<u32>,
    /// Ladder rung indices this parent fans across (trimmed for live
    /// parents when [`SegmentOptions::live_rungs`] is set).
    pub rungs: Vec<usize>,
}

/// Where one dispatch unit sits in the (parent, segment, rung) grid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnitMeta {
    /// Index into [`SegmentPlan::parents`].
    pub parent: usize,
    /// The parent catalog job's original id.
    pub parent_job: u64,
    /// Segment index within the clip.
    pub seg: usize,
    /// Rung index within the ladder.
    pub rung: usize,
    /// First frame of the segment.
    pub start_frame: u32,
    /// Frames in this segment.
    pub frames: u32,
    /// Frames in the whole clip (the unit costs `frames / total_frames`
    /// of the whole-clip service time).
    pub total_frames: u32,
}

/// A fully-expanded segment plan: the unit trace plus everything needed to
/// account, package and manifest it afterwards.
#[derive(Debug, Clone, PartialEq)]
pub struct SegmentPlan {
    /// Catalog jobs in input order.
    pub parents: Vec<ParentInfo>,
    /// Per-unit grid coordinates, indexed by dense unit id.
    pub meta: Vec<UnitMeta>,
    /// The dispatch units (ordinary [`JobSpec`]s with dense ids).
    pub units: Vec<JobSpec>,
    /// The ladder the plan fanned out across.
    pub ladder: Ladder,
    /// Target segment duration the cut points were derived from.
    pub target_ms: u32,
    /// Whether plan geometry is thumbnail-sized.
    pub tiny: bool,
}

impl SegmentPlan {
    /// Decomposes catalog jobs into per-(segment, rung) dispatch units.
    ///
    /// Units inherit the parent's arrival, priority, deadline and timeout;
    /// the task swaps in the rung's preset and CRF (refs stay the
    /// parent's). Unit ids are dense positions in the returned trace, so
    /// the expanded plan is itself a valid workload for both drivers.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::EmptyWorkload`] for no parents and
    /// [`ServeError::UnknownVideo`] for out-of-catalog names.
    pub fn expand(parents: &[JobSpec], opts: &SegmentOptions) -> Result<SegmentPlan, ServeError> {
        if parents.is_empty() {
            return Err(ServeError::EmptyWorkload);
        }
        if opts.ladder.rungs.is_empty() {
            return Err(ServeError::EmptyWorkload);
        }
        let all_rungs: Vec<usize> = (0..opts.ladder.rungs.len()).collect();
        let mut live_rungs: Vec<usize> = opts
            .live_rungs
            .iter()
            .copied()
            .filter(|&ri| ri < opts.ladder.rungs.len())
            .collect();
        live_rungs.sort_unstable();
        live_rungs.dedup();
        if live_rungs.is_empty() {
            live_rungs = all_rungs.clone();
        }
        let mut infos = Vec::with_capacity(parents.len());
        let mut meta = Vec::new();
        let mut units = Vec::new();
        for (pi, p) in parents.iter().enumerate() {
            let spec = plan_spec(&p.task.video, opts.tiny)?;
            let frames = spec.sim_frames;
            let points = segment_points(frames, spec.fps, opts.target_ms);
            let rungs = if p.priority == crate::workload::Priority::Interactive {
                live_rungs.clone()
            } else {
                all_rungs.clone()
            };
            for (si, &start) in points.iter().enumerate() {
                let end = points.get(si + 1).copied().unwrap_or(frames);
                for (pos, &ri) in rungs.iter().enumerate() {
                    let rung = &opts.ladder.rungs[ri];
                    let deadline_us = if opts.rung_deadlines {
                        let budget = p.deadline_us.saturating_sub(p.arrival_us);
                        let n = rungs.len() as u64;
                        p.arrival_us + budget * (n - pos as u64) / n
                    } else {
                        p.deadline_us
                    };
                    units.push(JobSpec {
                        id: units.len() as u64,
                        arrival_us: p.arrival_us,
                        task: TranscodeTask::new(&p.task.video, rung.crf, p.task.refs, rung.preset),
                        priority: p.priority,
                        deadline_us,
                        timeout_us: p.timeout_us,
                    });
                    meta.push(UnitMeta {
                        parent: pi,
                        parent_job: p.id,
                        seg: si,
                        rung: ri,
                        start_frame: start,
                        frames: end - start,
                        total_frames: frames,
                    });
                }
            }
            infos.push(ParentInfo {
                id: p.id,
                video: p.task.video.clone(),
                refs: p.task.refs,
                frames,
                fps: spec.fps,
                points,
                rungs,
            });
        }
        Ok(SegmentPlan {
            parents: infos,
            meta,
            units,
            ladder: opts.ladder.clone(),
            target_ms: opts.target_ms,
            tiny: opts.tiny,
        })
    }

    /// Per-unit `(frames, total_frames)` for
    /// [`crate::service::ServeConfig::unit_frames`], indexed by unit id.
    pub fn unit_frames(&self) -> Vec<(u32, u32)> {
        self.meta
            .iter()
            .map(|m| (m.frames, m.total_frames))
            .collect()
    }

    /// Per-unit ladder rung index (0 = `hi`) for
    /// [`crate::service::ServeConfig::unit_rungs`], indexed by unit id.
    pub fn unit_rungs(&self) -> Vec<u8> {
        self.meta.iter().map(|m| m.rung as u8).collect()
    }

    /// Per-unit segment index for
    /// [`crate::service::ServeConfig::unit_segs`], indexed by unit id.
    pub fn unit_segs(&self) -> Vec<u32> {
        self.meta.iter().map(|m| m.seg as u32).collect()
    }

    /// Per-unit encoded-artifact size estimate in bytes, for cache
    /// occupancy accounting: raw YUV420 bytes of the segment divided by a
    /// CRF-driven compression factor. Deterministic in the plan alone, so
    /// both drivers account occupancy identically.
    pub fn unit_bytes(&self) -> Result<Vec<u64>, ServeError> {
        let mut geometry = Vec::with_capacity(self.parents.len());
        for p in &self.parents {
            let spec = plan_spec(&p.video, self.tiny)?;
            geometry.push(u64::from(spec.sim_width) * u64::from(spec.sim_height));
        }
        Ok(self
            .meta
            .iter()
            .map(|m| {
                let crf = u64::from(self.ladder.rungs[m.rung].crf);
                let raw = u64::from(m.frames) * geometry[m.parent] * 3 / 2;
                (raw / (crf + 4)).max(1)
            })
            .collect())
    }

    /// Unit ids that completed, read from the event log alone.
    pub fn completed_units(&self, log: &[EventRecord]) -> BTreeSet<u64> {
        log.iter()
            .filter_map(|e| match e {
                EventRecord::Complete { id, .. } if (*id as usize) < self.meta.len() => Some(*id),
                _ => None,
            })
            .collect()
    }

    /// Parent indices whose every (segment, rung) unit completed — the
    /// jobs whose manifest is assemblable.
    pub fn complete_parents(&self, log: &[EventRecord]) -> Vec<usize> {
        let done = self.completed_units(log);
        let mut left: Vec<u64> = self
            .parents
            .iter()
            .map(|p| p.points.len() as u64 * p.rungs.len() as u64)
            .collect();
        for &id in &done {
            left[self.meta[id as usize].parent] -= 1;
        }
        (0..self.parents.len())
            .filter(|&pi| left[pi] == 0)
            .collect()
    }

    /// Segment-granular accounting from the event log.
    pub fn stats(&self, log: &[EventRecord]) -> SegmentStats {
        let done = self.completed_units(log);
        let mut per_rung: Vec<(String, u64, u64)> = self
            .ladder
            .rungs
            .iter()
            .map(|r| (r.name.clone(), 0, 0))
            .collect();
        let max_segs = self
            .parents
            .iter()
            .map(|p| p.points.len())
            .max()
            .unwrap_or(0);
        let mut per_segment = vec![(0u64, 0u64); max_segs];
        for (id, m) in self.meta.iter().enumerate() {
            let complete = done.contains(&(id as u64));
            per_rung[m.rung].1 += 1;
            per_segment[m.seg].0 += 1;
            if complete {
                per_rung[m.rung].2 += 1;
                per_segment[m.seg].1 += 1;
            }
        }
        let complete = self.rungs_complete(&done);
        let degraded = self
            .parents
            .iter()
            .zip(&complete)
            .filter(|(p, c)| !c.is_empty() && c.len() < p.rungs.len())
            .count() as u64;
        SegmentStats {
            parents: self.parents.len() as u64,
            parents_complete: self.complete_parents(log).len() as u64,
            parents_degraded: degraded,
            units: self.meta.len() as u64,
            units_complete: done.len() as u64,
            per_rung,
            per_segment,
        }
    }

    /// Per-parent list of rung indices whose every segment unit completed.
    fn rungs_complete(&self, done: &BTreeSet<u64>) -> Vec<Vec<usize>> {
        let mut left: Vec<BTreeMap<usize, u64>> = self
            .parents
            .iter()
            .map(|p| {
                p.rungs
                    .iter()
                    .map(|&ri| (ri, p.points.len() as u64))
                    .collect()
            })
            .collect();
        for &id in done {
            let m = &self.meta[id as usize];
            if let Some(l) = left[m.parent].get_mut(&m.rung) {
                *l -= 1;
            }
        }
        left.into_iter()
            .map(|map| {
                map.into_iter()
                    .filter(|&(_, l)| l == 0)
                    .map(|(ri, _)| ri)
                    .collect()
            })
            .collect()
    }

    /// Builds a ladder restricted to `rungs` (indices into the plan's
    /// ladder, ascending).
    fn sub_ladder(&self, rungs: &[usize]) -> Ladder {
        Ladder {
            rungs: rungs
                .iter()
                .map(|&ri| self.ladder.rungs[ri].clone())
                .collect(),
        }
    }

    /// Assembles manifests for every complete parent: `(path, text)` pairs
    /// under `job{id}/` — one master playlist plus one media playlist per
    /// rung. Incomplete parents get nothing: a missing unit means the
    /// manifest cannot reference its segment.
    pub fn manifests(&self, log: &[EventRecord]) -> Vec<(String, String)> {
        let mut out = Vec::new();
        for pi in self.complete_parents(log) {
            let p = &self.parents[pi];
            out.push((
                format!("job{}/master.m3u8", p.id),
                manifest::render_master(&master_playlist(&self.sub_ladder(&p.rungs))),
            ));
            for &ri in &p.rungs {
                let rung = &self.ladder.rungs[ri];
                out.push((
                    format!("job{}/{}/media.m3u8", p.id, rung.name),
                    manifest::render_media(&media_playlist(&rung.name, &p.points, p.frames, p.fps)),
                ));
            }
        }
        out
    }

    /// Partial-manifest delivery: every parent with at least one fully
    /// completed rung gets a manifest. Fully complete parents get the
    /// normal master; partially complete parents get a master restricted
    /// to the rungs that finished, marked with the degraded tag
    /// ([`vtx_container::manifest::DEGRADED_TAG`]) — the ladder-aware
    /// shedding payoff: an overloaded fleet that dropped the `hi` rung
    /// still ships a playable (if degraded) rendition set.
    pub fn manifests_partial(&self, log: &[EventRecord]) -> Vec<(String, String)> {
        let done = self.completed_units(log);
        let complete = self.rungs_complete(&done);
        let mut out = Vec::new();
        for (p, rungs) in self.parents.iter().zip(&complete) {
            if rungs.is_empty() {
                continue;
            }
            let master = master_playlist(&self.sub_ladder(rungs));
            let body = if rungs.len() == p.rungs.len() {
                manifest::render_master(&master)
            } else {
                manifest::render_master_degraded(&master)
            };
            out.push((format!("job{}/master.m3u8", p.id), body));
            for &ri in rungs {
                let rung = &self.ladder.rungs[ri];
                out.push((
                    format!("job{}/{}/media.m3u8", p.id, rung.name),
                    manifest::render_media(&media_playlist(&rung.name, &p.points, p.frames, p.fps)),
                ));
            }
        }
        out
    }

    /// Encodes and muxes the actual segments for every parent rung whose
    /// units all completed: `(path, bytes)` pairs under `job{id}/{rung}/`
    /// (init.mp4 plus one .m4s per segment). Fully complete parents get
    /// every rung (as before); partially complete parents get exactly the
    /// rungs their degraded manifest references. Each (video, refs, rung)
    /// is encoded once with forced IDRs at the cut points and packaged via
    /// `vtx-container`; everything is a pure function of (seed, plan), so
    /// the simulated and real drivers produce byte-identical artifacts.
    ///
    /// # Errors
    ///
    /// Propagates encoder and packaging failures.
    pub fn materialize(
        &self,
        seed: u64,
        log: &[EventRecord],
    ) -> Result<Vec<(String, Vec<u8>)>, ServeError> {
        let kernels = instr::kernel_table();
        let done = self.completed_units(log);
        let complete = self.rungs_complete(&done);
        let mut videos: BTreeMap<&str, vtx_frame::Video> = BTreeMap::new();
        let mut cache: BTreeMap<(String, u8, usize), vtx_container::Packaged> = BTreeMap::new();
        let mut out = Vec::new();
        for (p, rungs) in self.parents.iter().zip(&complete) {
            if rungs.is_empty() {
                continue;
            }
            if !videos.contains_key(p.video.as_str()) {
                let spec = plan_spec(&p.video, self.tiny)?;
                videos.insert(&p.video, synth::generate(&spec, seed));
            }
            for &ri in rungs {
                let rung = &self.ladder.rungs[ri];
                let key = (p.video.clone(), p.refs, ri);
                if !cache.contains_key(&key) {
                    let cfg = rung
                        .preset
                        .config()
                        .with_crf(f64::from(rung.crf))
                        .with_refs(p.refs)
                        .with_force_kf(p.points[1..].to_vec());
                    let mut prof = Profiler::new(
                        &UarchConfig::baseline(),
                        kernels,
                        CodeLayout::default_order(kernels),
                    )
                    .map_err(CoreError::from)?;
                    // Packaging is artifact production, not measurement:
                    // sample sparsely, like the mezzanine encode.
                    prof.set_sample_shift(6);
                    let encoded = encode_video(&videos[p.video.as_str()], &cfg, &mut prof)
                        .map_err(CoreError::from)?;
                    cache.insert(
                        key.clone(),
                        package_stream(&encoded.bitstream.data, &p.points)?,
                    );
                }
                let packaged = &cache[&key];
                out.push((
                    format!("job{}/{}/init.mp4", p.id, rung.name),
                    packaged.init.clone(),
                ));
                for (si, seg) in packaged.media.iter().enumerate() {
                    out.push((
                        format!("job{}/{}/seg{si}.m4s", p.id, rung.name),
                        seg.clone(),
                    ));
                }
            }
        }
        Ok(out)
    }
}

/// Resolves a catalog video to the geometry the plan runs at.
fn plan_spec(video: &str, tiny: bool) -> Result<VideoSpec, ServeError> {
    let mut spec = vbench::by_name(video).ok_or_else(|| ServeError::UnknownVideo {
        name: video.to_string(),
    })?;
    if tiny {
        spec.sim_width = 64;
        spec.sim_height = 48;
        spec.sim_frames = 6;
    }
    Ok(spec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vtx_codec::Preset;

    use crate::workload::Priority;

    fn parent(id: u64, video: &str) -> JobSpec {
        JobSpec {
            id,
            arrival_us: id * 1_000,
            task: TranscodeTask::new(video, 23, 2, Preset::Medium),
            priority: Priority::Standard,
            deadline_us: id * 1_000 + 5_000_000,
            timeout_us: 8_000_000,
        }
    }

    fn tiny_plan() -> SegmentPlan {
        // 6 frames at ~100 ms targets → 2–3 segments per clip.
        let opts = SegmentOptions {
            target_ms: 100,
            ..SegmentOptions::default()
        };
        SegmentPlan::expand(&[parent(0, "desktop"), parent(1, "cat")], &opts).unwrap()
    }

    #[test]
    fn expand_covers_the_grid() {
        let plan = tiny_plan();
        assert_eq!(plan.parents.len(), 2);
        let units_expected: usize = plan
            .parents
            .iter()
            .map(|p| p.points.len() * plan.ladder.rungs.len())
            .collect::<Vec<_>>()
            .iter()
            .sum();
        assert!(plan.parents.iter().all(|p| p.points.len() >= 2));
        assert_eq!(plan.units.len(), units_expected);
        assert_eq!(plan.meta.len(), plan.units.len());
        // Dense ids, inherited envelope, rung task fields.
        for (i, u) in plan.units.iter().enumerate() {
            assert_eq!(u.id, i as u64);
            let m = &plan.meta[i];
            let p = &plan.parents[m.parent];
            assert_eq!(u.task.video, p.video);
            assert_eq!(u.task.refs, p.refs);
            assert_eq!(u.task.crf, plan.ladder.rungs[m.rung].crf);
        }
        // Unit frames cover each parent's clip exactly, per rung.
        let per_parent: u32 = plan
            .meta
            .iter()
            .filter(|m| m.parent == 0 && m.rung == 0)
            .map(|m| m.frames)
            .sum();
        assert_eq!(per_parent, plan.parents[0].frames);
    }

    #[test]
    fn stats_gate_parents_on_all_units() {
        let plan = tiny_plan();
        // Complete every unit except the last one of parent 1.
        let log: Vec<EventRecord> = plan
            .units
            .iter()
            .take(plan.units.len() - 1)
            .map(|u| EventRecord::Complete {
                t: 1,
                id: u.id,
                server: 0,
                sojourn_us: 1,
                violation: false,
            })
            .collect();
        let s = plan.stats(&log);
        assert_eq!(s.parents, 2);
        assert_eq!(s.parents_complete, 1);
        assert_eq!(s.units, plan.units.len() as u64);
        assert_eq!(s.units_complete, plan.units.len() as u64 - 1);
        let rung_units: u64 = s.per_rung.iter().map(|r| r.1).sum();
        assert_eq!(rung_units, s.units);
        let seg_units: u64 = s.per_segment.iter().map(|s| s.0).sum();
        assert_eq!(seg_units, s.units);
        // Manifests only for the complete parent.
        let m = plan.manifests(&log);
        assert!(m.iter().all(|(p, _)| p.starts_with("job0/")));
        assert_eq!(m.len(), 1 + plan.ladder.rungs.len());
        assert!(m[0].0.ends_with("master.m3u8"));
    }

    #[test]
    fn live_rungs_trim_interactive_parents() {
        let mut live = parent(0, "desktop");
        live.priority = Priority::Interactive;
        let vod = parent(1, "desktop");
        let opts = SegmentOptions {
            target_ms: 100,
            live_rungs: vec![1, 2, 99], // out-of-range index ignored
            ..SegmentOptions::default()
        };
        let plan = SegmentPlan::expand(&[live, vod], &opts).unwrap();
        assert_eq!(plan.parents[0].rungs, vec![1, 2]);
        assert_eq!(plan.parents[1].rungs, vec![0, 1, 2]);
        // The live parent's units never reference the trimmed rung 0.
        for (u, m) in plan.units.iter().zip(&plan.meta) {
            if m.parent == 0 {
                assert!(m.rung >= 1, "live unit on trimmed rung");
                assert_eq!(u.task.crf, plan.ladder.rungs[m.rung].crf);
            }
        }
        // A clean run completes everything: manifests list only the
        // trimmed ladder for the live parent and nothing is degraded.
        let log: Vec<EventRecord> = plan
            .units
            .iter()
            .map(|u| EventRecord::Complete {
                t: 1,
                id: u.id,
                server: 0,
                sojourn_us: 1,
                violation: false,
            })
            .collect();
        let s = plan.stats(&log);
        assert_eq!(s.parents_complete, 2);
        assert_eq!(s.parents_degraded, 0);
        let masters: Vec<String> = plan
            .manifests(&log)
            .into_iter()
            .filter(|(p, _)| p.ends_with("master.m3u8"))
            .map(|(_, b)| b)
            .collect();
        assert!(!masters[0].contains("NAME=\"hi\""), "live master trimmed");
        assert!(masters[1].contains("NAME=\"hi\""), "vod master full");
    }

    #[test]
    fn rung_deadlines_ship_low_rungs_first() {
        let opts = SegmentOptions {
            target_ms: 100,
            rung_deadlines: true,
            ..SegmentOptions::default()
        };
        let plan = SegmentPlan::expand(&[parent(3, "cat")], &opts).unwrap();
        for (u, m) in plan.units.iter().zip(&plan.meta) {
            let p = &plan.parents[m.parent];
            let budget = 5_000_000u64;
            let n = p.rungs.len() as u64;
            let expect = u.arrival_us + budget * (n - m.rung as u64) / n;
            assert_eq!(u.deadline_us, expect);
        }
        // Within a segment, the lowest rung has the earliest deadline.
        let seg0: Vec<&JobSpec> = plan
            .units
            .iter()
            .zip(&plan.meta)
            .filter(|(_, m)| m.seg == 0)
            .map(|(u, _)| u)
            .collect();
        assert!(seg0[0].deadline_us > seg0[2].deadline_us, "hi after lo");
    }

    #[test]
    fn partial_manifests_mark_degraded_rungs() {
        let plan = tiny_plan();
        // Complete everything except parent 1's rung 0 (hi) units.
        let log: Vec<EventRecord> = plan
            .units
            .iter()
            .zip(&plan.meta)
            .filter(|(_, m)| !(m.parent == 1 && m.rung == 0))
            .map(|(u, _)| EventRecord::Complete {
                t: 1,
                id: u.id,
                server: 0,
                sojourn_us: 1,
                violation: false,
            })
            .collect();
        let s = plan.stats(&log);
        assert_eq!(s.parents_complete, 1);
        assert_eq!(s.parents_degraded, 1);
        // Strict manifests: only the complete parent.
        assert!(plan
            .manifests(&log)
            .iter()
            .all(|(p, _)| p.starts_with("job0/")));
        // Partial manifests: both parents; job1's master is degraded and
        // omits the missing hi rung but still parses.
        let partial = plan.manifests_partial(&log);
        let job1_master = partial
            .iter()
            .find(|(p, _)| p == "job1/master.m3u8")
            .map(|(_, b)| b)
            .unwrap();
        assert!(job1_master.contains(vtx_container::manifest::DEGRADED_TAG));
        assert!(!job1_master.contains("NAME=\"hi\""));
        let (m, degraded) = vtx_container::manifest::parse_master_flagged(job1_master).unwrap();
        assert!(degraded);
        assert_eq!(m.variants.len(), plan.ladder.rungs.len() - 1);
        let job0_master = partial
            .iter()
            .find(|(p, _)| p == "job0/master.m3u8")
            .map(|(_, b)| b)
            .unwrap();
        assert!(!job0_master.contains(vtx_container::manifest::DEGRADED_TAG));
        // No media playlist for the shed rung.
        assert!(!partial.iter().any(|(p, _)| p == "job1/hi/media.m3u8"));
        assert!(partial.iter().any(|(p, _)| p == "job1/mid/media.m3u8"));
        // Materialize covers exactly the manifested rungs.
        let arts = plan.materialize(42, &log).unwrap();
        assert!(!arts.iter().any(|(p, _)| p.starts_with("job1/hi/")));
        assert!(arts.iter().any(|(p, _)| p.starts_with("job1/mid/")));
        assert!(arts.iter().any(|(p, _)| p.starts_with("job0/hi/")));
    }

    #[test]
    fn unit_tables_line_up() {
        let plan = tiny_plan();
        let rungs = plan.unit_rungs();
        let segs = plan.unit_segs();
        let bytes = plan.unit_bytes().unwrap();
        assert_eq!(rungs.len(), plan.units.len());
        assert_eq!(segs.len(), plan.units.len());
        assert_eq!(bytes.len(), plan.units.len());
        for (i, m) in plan.meta.iter().enumerate() {
            assert_eq!(rungs[i] as usize, m.rung);
            assert_eq!(segs[i] as usize, m.seg);
            assert!(bytes[i] >= 1);
        }
        // Higher-quality rungs (lower CRF) estimate bigger artifacts for
        // the same segment geometry.
        let hi = plan
            .meta
            .iter()
            .position(|m| m.parent == 0 && m.seg == 0 && m.rung == 0)
            .unwrap();
        let lo = plan
            .meta
            .iter()
            .position(|m| m.parent == 0 && m.seg == 0 && m.rung == 2)
            .unwrap();
        assert!(bytes[hi] > bytes[lo]);
    }

    #[test]
    fn unit_frames_scale_table() {
        let plan = tiny_plan();
        let uf = plan.unit_frames();
        assert_eq!(uf.len(), plan.units.len());
        assert!(uf.iter().all(|&(f, t)| f >= 1 && f <= t));
    }

    #[test]
    fn unknown_video_is_structured() {
        let err =
            SegmentPlan::expand(&[parent(0, "nope")], &SegmentOptions::default()).unwrap_err();
        assert!(matches!(err, ServeError::UnknownVideo { .. }));
    }

    use crate::chaos::ChaosConfig;
    use crate::fleet::Fleet;
    use crate::policy::policy_by_name;
    use crate::service::ServeConfig;
    use crate::sim::{simulate_trace, SimOutcome};

    fn run_plan(plan: &SegmentPlan, seed: u64, chaos: Option<ChaosConfig>) -> SimOutcome {
        let cfg = ServeConfig {
            unit_frames: plan.unit_frames(),
            chaos: chaos.unwrap_or_default(),
            ..ServeConfig::default()
        };
        simulate_trace(
            &plan.units,
            seed,
            Fleet::sized(8).unwrap(),
            policy_by_name("smart", seed).unwrap(),
            cfg,
        )
        .unwrap()
    }

    #[test]
    fn segmented_sim_is_deterministic_and_manifests_assemble() {
        let plan = tiny_plan();
        let a = run_plan(&plan, 42, None);
        let b = run_plan(&plan, 42, None);
        assert_eq!(a.report.render(), b.report.render());
        let lines = |o: &SimOutcome| {
            o.event_log
                .iter()
                .map(EventRecord::render)
                .collect::<Vec<_>>()
        };
        assert_eq!(lines(&a), lines(&b), "event logs byte-identical");
        // Clean run: every unit completes, so every manifest assembles.
        let stats = plan.stats(&a.event_log);
        assert_eq!(stats.parents_complete, stats.parents);
        assert_eq!(stats.units_complete, stats.units);
        assert_eq!(
            plan.manifests(&a.event_log),
            plan.manifests(&b.event_log),
            "manifests byte-identical"
        );
        // Unit service time is a strict fraction of the whole clip's.
        assert!(a.report.completed == plan.units.len() as u64);
    }

    #[test]
    fn chaos_requeues_individual_units_and_conserves() {
        // Many parents so units are in flight when the crashes fire.
        let parents: Vec<JobSpec> = (0..12)
            .map(|i| parent(i, if i % 2 == 0 { "desktop" } else { "cat" }))
            .collect();
        let opts = SegmentOptions {
            target_ms: 100,
            ..SegmentOptions::default()
        };
        let plan = SegmentPlan::expand(&parents, &opts).unwrap();
        let horizon = plan.units.iter().map(|u| u.arrival_us).max().unwrap();
        let out = run_plan(
            &plan,
            42,
            Some(ChaosConfig::kill_two_straggle_one(42, 8, horizon.max(1))),
        );
        // Exactly-once accounting proven from the trace alone.
        let stats = out.obs.tracker().check_conservation().unwrap();
        assert_eq!(stats.arrived, out.report.offered);
        assert_eq!(stats.completed, out.report.completed);
        // Each unit completes at most once.
        let mut seen = BTreeSet::new();
        let mut requeued = BTreeSet::new();
        for e in &out.event_log {
            match e {
                EventRecord::Complete { id, .. } => {
                    assert!(seen.insert(*id), "unit {id} completed twice")
                }
                EventRecord::Requeue { id, .. } => {
                    requeued.insert(*id);
                }
                _ => {}
            }
        }
        assert_eq!(
            out.report.faults.requeued > 0,
            !requeued.is_empty(),
            "report and log agree on requeues"
        );
        // Requeue granularity is the unit, not the parent: any parent with
        // a requeued unit also has units that were never requeued.
        for &id in &requeued {
            let p = plan.meta[id as usize].parent;
            let siblings = plan
                .meta
                .iter()
                .enumerate()
                .filter(|(_, m)| m.parent == p)
                .count();
            let requeued_here = plan
                .meta
                .iter()
                .enumerate()
                .filter(|(i, m)| m.parent == p && requeued.contains(&(*i as u64)))
                .count();
            assert!(
                requeued_here < siblings,
                "parent {p}: whole job requeued, not individual segments"
            );
        }
        assert!(
            out.report.faults.requeued > 0,
            "crash plan must actually lose in-flight units"
        );
    }
}
