//! Segment-granular dispatch: a catalog job fans out into per-(segment,
//! rung) units.
//!
//! The paper's serving workload is segmented ABR delivery, not whole-clip
//! transcodes: a source clip is cut at GOP boundaries into ~2-second
//! segments and every segment is transcoded to each rung of a bitrate
//! ladder. [`SegmentPlan::expand`] performs that decomposition — each
//! catalog job becomes `segments × rungs` dispatch units that flow through
//! the existing admission/dispatch/chaos/obs machinery as ordinary jobs
//! with dense ids (so exactly-once conservation, retries and requeues all
//! apply per *segment*, not per clip). A catalog job is complete only when
//! every one of its units completed — i.e. when its manifest can be
//! assembled from all rung segments ([`SegmentPlan::stats`],
//! [`SegmentPlan::manifests`]).
//!
//! [`SegmentPlan::materialize`] is the byte-deterministic packaging path
//! shared by the simulated and real drivers: it encodes each (video, rung)
//! with forced IDRs at the cut points and muxes the result into CMAF
//! init/media segments via `vtx-container`. Because the encoded bytes
//! depend only on (seed, plan), both drivers emit identical artifacts for
//! the same seed.

use std::collections::{BTreeMap, BTreeSet};

use vtx_codec::{encode_video, instr};
use vtx_container::package::{master_playlist, media_playlist, package_stream};
use vtx_container::segment::segment_points;
use vtx_container::{manifest, Ladder};
use vtx_core::CoreError;
use vtx_frame::vbench;
use vtx_frame::{synth, VideoSpec};
use vtx_sched::TranscodeTask;
use vtx_trace::layout::CodeLayout;
use vtx_trace::Profiler;
use vtx_uarch::config::UarchConfig;

use crate::error::ServeError;
use crate::report::SegmentStats;
use crate::service::EventRecord;
use crate::workload::JobSpec;

/// How to decompose catalog jobs into dispatch units.
#[derive(Debug, Clone, PartialEq)]
pub struct SegmentOptions {
    /// Target segment duration in milliseconds (cut points land on whole
    /// GOPs of `fps * target_ms / 1000` frames).
    pub target_ms: u32,
    /// The ABR ladder every segment fans out across.
    pub ladder: Ladder,
    /// Use thumbnail geometry (64×48×6 frames), matching the real
    /// executor's smoke mode. Production-shaped plans set this to `false`.
    pub tiny: bool,
}

impl Default for SegmentOptions {
    fn default() -> Self {
        SegmentOptions {
            target_ms: 2_000,
            ladder: Ladder::standard(),
            tiny: true,
        }
    }
}

/// One catalog job of the plan, with its resolved segment geometry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParentInfo {
    /// The catalog job's original id.
    pub id: u64,
    /// vbench short name.
    pub video: String,
    /// Reference-frame count inherited by every unit.
    pub refs: u8,
    /// Clip length in frames at plan geometry.
    pub frames: u32,
    /// Frame rate.
    pub fps: u32,
    /// Segment start frames (`[0, g, 2g, …]`).
    pub points: Vec<u32>,
}

/// Where one dispatch unit sits in the (parent, segment, rung) grid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnitMeta {
    /// Index into [`SegmentPlan::parents`].
    pub parent: usize,
    /// The parent catalog job's original id.
    pub parent_job: u64,
    /// Segment index within the clip.
    pub seg: usize,
    /// Rung index within the ladder.
    pub rung: usize,
    /// First frame of the segment.
    pub start_frame: u32,
    /// Frames in this segment.
    pub frames: u32,
    /// Frames in the whole clip (the unit costs `frames / total_frames`
    /// of the whole-clip service time).
    pub total_frames: u32,
}

/// A fully-expanded segment plan: the unit trace plus everything needed to
/// account, package and manifest it afterwards.
#[derive(Debug, Clone, PartialEq)]
pub struct SegmentPlan {
    /// Catalog jobs in input order.
    pub parents: Vec<ParentInfo>,
    /// Per-unit grid coordinates, indexed by dense unit id.
    pub meta: Vec<UnitMeta>,
    /// The dispatch units (ordinary [`JobSpec`]s with dense ids).
    pub units: Vec<JobSpec>,
    /// The ladder the plan fanned out across.
    pub ladder: Ladder,
    /// Target segment duration the cut points were derived from.
    pub target_ms: u32,
    /// Whether plan geometry is thumbnail-sized.
    pub tiny: bool,
}

impl SegmentPlan {
    /// Decomposes catalog jobs into per-(segment, rung) dispatch units.
    ///
    /// Units inherit the parent's arrival, priority, deadline and timeout;
    /// the task swaps in the rung's preset and CRF (refs stay the
    /// parent's). Unit ids are dense positions in the returned trace, so
    /// the expanded plan is itself a valid workload for both drivers.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::EmptyWorkload`] for no parents and
    /// [`ServeError::UnknownVideo`] for out-of-catalog names.
    pub fn expand(parents: &[JobSpec], opts: &SegmentOptions) -> Result<SegmentPlan, ServeError> {
        if parents.is_empty() {
            return Err(ServeError::EmptyWorkload);
        }
        if opts.ladder.rungs.is_empty() {
            return Err(ServeError::EmptyWorkload);
        }
        let mut infos = Vec::with_capacity(parents.len());
        let mut meta = Vec::new();
        let mut units = Vec::new();
        for (pi, p) in parents.iter().enumerate() {
            let spec = plan_spec(&p.task.video, opts.tiny)?;
            let frames = spec.sim_frames;
            let points = segment_points(frames, spec.fps, opts.target_ms);
            for (si, &start) in points.iter().enumerate() {
                let end = points.get(si + 1).copied().unwrap_or(frames);
                for (ri, rung) in opts.ladder.rungs.iter().enumerate() {
                    units.push(JobSpec {
                        id: units.len() as u64,
                        arrival_us: p.arrival_us,
                        task: TranscodeTask::new(&p.task.video, rung.crf, p.task.refs, rung.preset),
                        priority: p.priority,
                        deadline_us: p.deadline_us,
                        timeout_us: p.timeout_us,
                    });
                    meta.push(UnitMeta {
                        parent: pi,
                        parent_job: p.id,
                        seg: si,
                        rung: ri,
                        start_frame: start,
                        frames: end - start,
                        total_frames: frames,
                    });
                }
            }
            infos.push(ParentInfo {
                id: p.id,
                video: p.task.video.clone(),
                refs: p.task.refs,
                frames,
                fps: spec.fps,
                points,
            });
        }
        Ok(SegmentPlan {
            parents: infos,
            meta,
            units,
            ladder: opts.ladder.clone(),
            target_ms: opts.target_ms,
            tiny: opts.tiny,
        })
    }

    /// Per-unit `(frames, total_frames)` for
    /// [`crate::service::ServeConfig::unit_frames`], indexed by unit id.
    pub fn unit_frames(&self) -> Vec<(u32, u32)> {
        self.meta
            .iter()
            .map(|m| (m.frames, m.total_frames))
            .collect()
    }

    /// Unit ids that completed, read from the event log alone.
    pub fn completed_units(&self, log: &[EventRecord]) -> BTreeSet<u64> {
        log.iter()
            .filter_map(|e| match e {
                EventRecord::Complete { id, .. } if (*id as usize) < self.meta.len() => Some(*id),
                _ => None,
            })
            .collect()
    }

    /// Parent indices whose every (segment, rung) unit completed — the
    /// jobs whose manifest is assemblable.
    pub fn complete_parents(&self, log: &[EventRecord]) -> Vec<usize> {
        let done = self.completed_units(log);
        let mut left: Vec<u64> = self
            .parents
            .iter()
            .map(|p| p.points.len() as u64 * self.ladder.rungs.len() as u64)
            .collect();
        for &id in &done {
            left[self.meta[id as usize].parent] -= 1;
        }
        (0..self.parents.len())
            .filter(|&pi| left[pi] == 0)
            .collect()
    }

    /// Segment-granular accounting from the event log.
    pub fn stats(&self, log: &[EventRecord]) -> SegmentStats {
        let done = self.completed_units(log);
        let mut per_rung: Vec<(String, u64, u64)> = self
            .ladder
            .rungs
            .iter()
            .map(|r| (r.name.clone(), 0, 0))
            .collect();
        let max_segs = self
            .parents
            .iter()
            .map(|p| p.points.len())
            .max()
            .unwrap_or(0);
        let mut per_segment = vec![(0u64, 0u64); max_segs];
        for (id, m) in self.meta.iter().enumerate() {
            let complete = done.contains(&(id as u64));
            per_rung[m.rung].1 += 1;
            per_segment[m.seg].0 += 1;
            if complete {
                per_rung[m.rung].2 += 1;
                per_segment[m.seg].1 += 1;
            }
        }
        SegmentStats {
            parents: self.parents.len() as u64,
            parents_complete: self.complete_parents(log).len() as u64,
            units: self.meta.len() as u64,
            units_complete: done.len() as u64,
            per_rung,
            per_segment,
        }
    }

    /// Assembles manifests for every complete parent: `(path, text)` pairs
    /// under `job{id}/` — one master playlist plus one media playlist per
    /// rung. Incomplete parents get nothing: a missing unit means the
    /// manifest cannot reference its segment.
    pub fn manifests(&self, log: &[EventRecord]) -> Vec<(String, String)> {
        let mut out = Vec::new();
        for pi in self.complete_parents(log) {
            let p = &self.parents[pi];
            out.push((
                format!("job{}/master.m3u8", p.id),
                manifest::render_master(&master_playlist(&self.ladder)),
            ));
            for rung in &self.ladder.rungs {
                out.push((
                    format!("job{}/{}/media.m3u8", p.id, rung.name),
                    manifest::render_media(&media_playlist(&rung.name, &p.points, p.frames, p.fps)),
                ));
            }
        }
        out
    }

    /// Encodes and muxes the actual segments for every complete parent:
    /// `(path, bytes)` pairs under `job{id}/{rung}/` (init.mp4 plus one
    /// .m4s per segment). Each (video, refs, rung) is encoded once with
    /// forced IDRs at the cut points and packaged via `vtx-container`;
    /// everything is a pure function of (seed, plan), so the simulated and
    /// real drivers produce byte-identical artifacts.
    ///
    /// # Errors
    ///
    /// Propagates encoder and packaging failures.
    pub fn materialize(
        &self,
        seed: u64,
        log: &[EventRecord],
    ) -> Result<Vec<(String, Vec<u8>)>, ServeError> {
        let kernels = instr::kernel_table();
        let mut videos: BTreeMap<&str, vtx_frame::Video> = BTreeMap::new();
        let mut cache: BTreeMap<(String, u8, usize), vtx_container::Packaged> = BTreeMap::new();
        let mut out = Vec::new();
        for pi in self.complete_parents(log) {
            let p = &self.parents[pi];
            if !videos.contains_key(p.video.as_str()) {
                let spec = plan_spec(&p.video, self.tiny)?;
                videos.insert(&p.video, synth::generate(&spec, seed));
            }
            for (ri, rung) in self.ladder.rungs.iter().enumerate() {
                let key = (p.video.clone(), p.refs, ri);
                if !cache.contains_key(&key) {
                    let cfg = rung
                        .preset
                        .config()
                        .with_crf(f64::from(rung.crf))
                        .with_refs(p.refs)
                        .with_force_kf(p.points[1..].to_vec());
                    let mut prof = Profiler::new(
                        &UarchConfig::baseline(),
                        kernels,
                        CodeLayout::default_order(kernels),
                    )
                    .map_err(CoreError::from)?;
                    // Packaging is artifact production, not measurement:
                    // sample sparsely, like the mezzanine encode.
                    prof.set_sample_shift(6);
                    let encoded = encode_video(&videos[p.video.as_str()], &cfg, &mut prof)
                        .map_err(CoreError::from)?;
                    cache.insert(
                        key.clone(),
                        package_stream(&encoded.bitstream.data, &p.points)?,
                    );
                }
                let packaged = &cache[&key];
                out.push((
                    format!("job{}/{}/init.mp4", p.id, rung.name),
                    packaged.init.clone(),
                ));
                for (si, seg) in packaged.media.iter().enumerate() {
                    out.push((
                        format!("job{}/{}/seg{si}.m4s", p.id, rung.name),
                        seg.clone(),
                    ));
                }
            }
        }
        Ok(out)
    }
}

/// Resolves a catalog video to the geometry the plan runs at.
fn plan_spec(video: &str, tiny: bool) -> Result<VideoSpec, ServeError> {
    let mut spec = vbench::by_name(video).ok_or_else(|| ServeError::UnknownVideo {
        name: video.to_string(),
    })?;
    if tiny {
        spec.sim_width = 64;
        spec.sim_height = 48;
        spec.sim_frames = 6;
    }
    Ok(spec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vtx_codec::Preset;

    use crate::workload::Priority;

    fn parent(id: u64, video: &str) -> JobSpec {
        JobSpec {
            id,
            arrival_us: id * 1_000,
            task: TranscodeTask::new(video, 23, 2, Preset::Medium),
            priority: Priority::Standard,
            deadline_us: id * 1_000 + 5_000_000,
            timeout_us: 8_000_000,
        }
    }

    fn tiny_plan() -> SegmentPlan {
        // 6 frames at ~100 ms targets → 2–3 segments per clip.
        let opts = SegmentOptions {
            target_ms: 100,
            ladder: Ladder::standard(),
            tiny: true,
        };
        SegmentPlan::expand(&[parent(0, "desktop"), parent(1, "cat")], &opts).unwrap()
    }

    #[test]
    fn expand_covers_the_grid() {
        let plan = tiny_plan();
        assert_eq!(plan.parents.len(), 2);
        let units_expected: usize = plan
            .parents
            .iter()
            .map(|p| p.points.len() * plan.ladder.rungs.len())
            .collect::<Vec<_>>()
            .iter()
            .sum();
        assert!(plan.parents.iter().all(|p| p.points.len() >= 2));
        assert_eq!(plan.units.len(), units_expected);
        assert_eq!(plan.meta.len(), plan.units.len());
        // Dense ids, inherited envelope, rung task fields.
        for (i, u) in plan.units.iter().enumerate() {
            assert_eq!(u.id, i as u64);
            let m = &plan.meta[i];
            let p = &plan.parents[m.parent];
            assert_eq!(u.task.video, p.video);
            assert_eq!(u.task.refs, p.refs);
            assert_eq!(u.task.crf, plan.ladder.rungs[m.rung].crf);
        }
        // Unit frames cover each parent's clip exactly, per rung.
        let per_parent: u32 = plan
            .meta
            .iter()
            .filter(|m| m.parent == 0 && m.rung == 0)
            .map(|m| m.frames)
            .sum();
        assert_eq!(per_parent, plan.parents[0].frames);
    }

    #[test]
    fn stats_gate_parents_on_all_units() {
        let plan = tiny_plan();
        // Complete every unit except the last one of parent 1.
        let log: Vec<EventRecord> = plan
            .units
            .iter()
            .take(plan.units.len() - 1)
            .map(|u| EventRecord::Complete {
                t: 1,
                id: u.id,
                server: 0,
                sojourn_us: 1,
                violation: false,
            })
            .collect();
        let s = plan.stats(&log);
        assert_eq!(s.parents, 2);
        assert_eq!(s.parents_complete, 1);
        assert_eq!(s.units, plan.units.len() as u64);
        assert_eq!(s.units_complete, plan.units.len() as u64 - 1);
        let rung_units: u64 = s.per_rung.iter().map(|r| r.1).sum();
        assert_eq!(rung_units, s.units);
        let seg_units: u64 = s.per_segment.iter().map(|s| s.0).sum();
        assert_eq!(seg_units, s.units);
        // Manifests only for the complete parent.
        let m = plan.manifests(&log);
        assert!(m.iter().all(|(p, _)| p.starts_with("job0/")));
        assert_eq!(m.len(), 1 + plan.ladder.rungs.len());
        assert!(m[0].0.ends_with("master.m3u8"));
    }

    #[test]
    fn unit_frames_scale_table() {
        let plan = tiny_plan();
        let uf = plan.unit_frames();
        assert_eq!(uf.len(), plan.units.len());
        assert!(uf.iter().all(|&(f, t)| f >= 1 && f <= t));
    }

    #[test]
    fn unknown_video_is_structured() {
        let err =
            SegmentPlan::expand(&[parent(0, "nope")], &SegmentOptions::default()).unwrap_err();
        assert!(matches!(err, ServeError::UnknownVideo { .. }));
    }

    use crate::chaos::ChaosConfig;
    use crate::fleet::Fleet;
    use crate::policy::policy_by_name;
    use crate::service::ServeConfig;
    use crate::sim::{simulate_trace, SimOutcome};

    fn run_plan(plan: &SegmentPlan, seed: u64, chaos: Option<ChaosConfig>) -> SimOutcome {
        let cfg = ServeConfig {
            unit_frames: plan.unit_frames(),
            chaos: chaos.unwrap_or_default(),
            ..ServeConfig::default()
        };
        simulate_trace(
            &plan.units,
            seed,
            Fleet::sized(8).unwrap(),
            policy_by_name("smart", seed).unwrap(),
            cfg,
        )
        .unwrap()
    }

    #[test]
    fn segmented_sim_is_deterministic_and_manifests_assemble() {
        let plan = tiny_plan();
        let a = run_plan(&plan, 42, None);
        let b = run_plan(&plan, 42, None);
        assert_eq!(a.report.render(), b.report.render());
        let lines = |o: &SimOutcome| {
            o.event_log
                .iter()
                .map(EventRecord::render)
                .collect::<Vec<_>>()
        };
        assert_eq!(lines(&a), lines(&b), "event logs byte-identical");
        // Clean run: every unit completes, so every manifest assembles.
        let stats = plan.stats(&a.event_log);
        assert_eq!(stats.parents_complete, stats.parents);
        assert_eq!(stats.units_complete, stats.units);
        assert_eq!(
            plan.manifests(&a.event_log),
            plan.manifests(&b.event_log),
            "manifests byte-identical"
        );
        // Unit service time is a strict fraction of the whole clip's.
        assert!(a.report.completed == plan.units.len() as u64);
    }

    #[test]
    fn chaos_requeues_individual_units_and_conserves() {
        // Many parents so units are in flight when the crashes fire.
        let parents: Vec<JobSpec> = (0..12)
            .map(|i| parent(i, if i % 2 == 0 { "desktop" } else { "cat" }))
            .collect();
        let opts = SegmentOptions {
            target_ms: 100,
            ladder: Ladder::standard(),
            tiny: true,
        };
        let plan = SegmentPlan::expand(&parents, &opts).unwrap();
        let horizon = plan.units.iter().map(|u| u.arrival_us).max().unwrap();
        let out = run_plan(
            &plan,
            42,
            Some(ChaosConfig::kill_two_straggle_one(42, 8, horizon.max(1))),
        );
        // Exactly-once accounting proven from the trace alone.
        let stats = out.obs.tracker().check_conservation().unwrap();
        assert_eq!(stats.arrived, out.report.offered);
        assert_eq!(stats.completed, out.report.completed);
        // Each unit completes at most once.
        let mut seen = BTreeSet::new();
        let mut requeued = BTreeSet::new();
        for e in &out.event_log {
            match e {
                EventRecord::Complete { id, .. } => {
                    assert!(seen.insert(*id), "unit {id} completed twice")
                }
                EventRecord::Requeue { id, .. } => {
                    requeued.insert(*id);
                }
                _ => {}
            }
        }
        assert_eq!(
            out.report.faults.requeued > 0,
            !requeued.is_empty(),
            "report and log agree on requeues"
        );
        // Requeue granularity is the unit, not the parent: any parent with
        // a requeued unit also has units that were never requeued.
        for &id in &requeued {
            let p = plan.meta[id as usize].parent;
            let siblings = plan
                .meta
                .iter()
                .enumerate()
                .filter(|(_, m)| m.parent == p)
                .count();
            let requeued_here = plan
                .meta
                .iter()
                .enumerate()
                .filter(|(i, m)| m.parent == p && requeued.contains(&(*i as u64)))
                .count();
            assert!(
                requeued_here < siblings,
                "parent {p}: whole job requeued, not individual segments"
            );
        }
        assert!(
            out.report.faults.requeued > 0,
            "crash plan must actually lose in-flight units"
        );
    }
}
