//! Fleet sharding for two-level dispatch: cells, consistent-hash routing,
//! and an indexed idle set.
//!
//! A 10k-server fleet cannot afford a global assignment solve per event.
//! fig9-XL shards the fleet into contiguous **cells** of a few dozen
//! servers; jobs are routed to a cell by seeded consistent hashing with
//! **power-of-two-choices** (two candidate cells per job id, the one with
//! more idle capacity wins), and the exact assignment problem is solved
//! only *within* the chosen cell. Both levels are pure functions of the
//! seed, so the whole arrangement stays byte-deterministic.
//!
//! [`IdleIndex`] is the companion data structure: a Fenwick (binary
//! indexed) tree over the per-server idle bits with per-cell counters. It
//! answers "k-th idle server" (random policy), "first idle server at or
//! after s" (round-robin) and "how idle is cell c" (routing) in
//! O(log fleet), and is maintained incrementally by the XL event loop
//! instead of the O(fleet) scan the small engine performs per event.

use crate::rng::derive;

/// Virtual nodes per cell on the consistent-hash ring. More points smooth
/// the key distribution across cells.
const VNODES_PER_CELL: usize = 16;

/// Default servers per cell when the caller does not force a cell count.
pub const DEFAULT_CELL_SIZE: usize = 64;

/// Fleets at or above this size take the indexed two-level dispatch path;
/// below it the engines keep the historical full-scan path (which the
/// committed fig9 artifacts pin byte-for-byte).
pub const XL_FLEET_THRESHOLD: usize = 64;

/// Static sharding of `n_servers` into contiguous cells, plus the seeded
/// consistent-hash ring used to route jobs to cells.
#[derive(Debug, Clone)]
pub struct CellPlan {
    n_servers: usize,
    n_cells: usize,
    /// Cell boundaries: cell `c` owns servers `starts[c] .. starts[c + 1]`.
    starts: Vec<usize>,
    /// Consistent-hash ring: (point, cell), sorted by point.
    ring: Vec<(u64, usize)>,
    seed: u64,
}

impl CellPlan {
    /// Builds a plan with `target_cells` cells (0 = auto-size at
    /// [`DEFAULT_CELL_SIZE`] servers per cell). Cells are contiguous index
    /// ranges whose sizes differ by at most one server.
    pub fn build(n_servers: usize, target_cells: usize, seed: u64) -> CellPlan {
        assert!(n_servers > 0, "cannot shard an empty fleet");
        let n_cells = if target_cells == 0 {
            n_servers.div_ceil(DEFAULT_CELL_SIZE)
        } else {
            target_cells.min(n_servers)
        }
        .max(1);
        let base = n_servers / n_cells;
        let extra = n_servers % n_cells;
        let mut starts = Vec::with_capacity(n_cells + 1);
        let mut at = 0usize;
        for c in 0..n_cells {
            starts.push(at);
            at += base + usize::from(c < extra);
        }
        starts.push(n_servers);
        let mut ring: Vec<(u64, usize)> = (0..n_cells)
            .flat_map(|c| {
                (0..VNODES_PER_CELL).map(move |v| {
                    (
                        derive(seed ^ 0xCE11_0000, (c * VNODES_PER_CELL + v) as u64),
                        c,
                    )
                })
            })
            .collect();
        ring.sort_unstable();
        CellPlan {
            n_servers,
            n_cells,
            starts,
            ring,
            seed,
        }
    }

    /// Number of cells.
    pub fn n_cells(&self) -> usize {
        self.n_cells
    }

    /// Fleet size this plan shards.
    pub fn n_servers(&self) -> usize {
        self.n_servers
    }

    /// The cell owning server `s`.
    pub fn cell_of(&self, s: usize) -> usize {
        debug_assert!(s < self.n_servers);
        // starts is sorted; partition_point gives the first start > s.
        self.starts.partition_point(|&b| b <= s) - 1
    }

    /// The server range of cell `c`.
    pub fn range(&self, c: usize) -> std::ops::Range<usize> {
        self.starts[c]..self.starts[c + 1]
    }

    /// Successor cell of a hash point on the ring.
    fn ring_cell(&self, point: u64) -> usize {
        let i = self.ring.partition_point(|&(p, _)| p < point);
        self.ring[if i == self.ring.len() { 0 } else { i }].1
    }

    /// The job's two candidate cells (power-of-two-choices): successors of
    /// two independent seeded hashes of the job id on the ring. The pair is
    /// a pure function of `(seed, job id)`.
    pub fn candidates(&self, job_id: u64) -> (usize, usize) {
        let a = self.ring_cell(derive(self.seed ^ 0x0007_E001, job_id));
        let b = self.ring_cell(derive(self.seed ^ 0x0007_E002, job_id.wrapping_add(1)));
        (a, b)
    }
}

/// Fenwick-indexed idle set with per-cell counters.
#[derive(Debug, Clone)]
pub struct IdleIndex {
    plan: CellPlan,
    idle: Vec<bool>,
    /// 1-based Fenwick tree over the idle bits.
    tree: Vec<u32>,
    per_cell: Vec<u32>,
    total: usize,
}

impl IdleIndex {
    /// Builds the index with every server idle.
    pub fn new(plan: CellPlan) -> IdleIndex {
        let n = plan.n_servers();
        let mut idx = IdleIndex {
            per_cell: (0..plan.n_cells())
                .map(|c| (plan.range(c).len()) as u32)
                .collect(),
            plan,
            idle: vec![true; n],
            tree: vec![0; n + 1],
            total: n,
        };
        for s in 0..n {
            idx.tree_add(s, 1);
        }
        idx
    }

    /// The plan this index shards by.
    pub fn plan(&self) -> &CellPlan {
        &self.plan
    }

    fn tree_add(&mut self, s: usize, delta: i32) {
        let mut i = s + 1;
        while i < self.tree.len() {
            self.tree[i] = (self.tree[i] as i32 + delta) as u32;
            i += i & i.wrapping_neg();
        }
    }

    /// Idle servers among indices `0..=s`.
    fn rank(&self, s: usize) -> usize {
        let mut i = s + 1;
        let mut acc = 0usize;
        while i > 0 {
            acc += self.tree[i] as usize;
            i -= i & i.wrapping_neg();
        }
        acc
    }

    /// Marks `s` idle. Returns whether the bit changed.
    pub fn set_idle(&mut self, s: usize) -> bool {
        if self.idle[s] {
            return false;
        }
        self.idle[s] = true;
        self.tree_add(s, 1);
        self.per_cell[self.plan.cell_of(s)] += 1;
        self.total += 1;
        true
    }

    /// Marks `s` busy (or removed — a Down server simply never comes back).
    /// Returns whether the bit changed.
    pub fn set_busy(&mut self, s: usize) -> bool {
        if !self.idle[s] {
            return false;
        }
        self.idle[s] = false;
        self.tree_add(s, -1);
        self.per_cell[self.plan.cell_of(s)] -= 1;
        self.total -= 1;
        true
    }

    /// Whether server `s` is idle.
    pub fn is_idle(&self, s: usize) -> bool {
        self.idle[s]
    }

    /// Total idle servers.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Idle servers in cell `c`.
    pub fn idle_in_cell(&self, c: usize) -> usize {
        self.per_cell[c] as usize
    }

    /// The `k`-th idle server (0-based, ascending index order), if any —
    /// a Fenwick descend, O(log fleet).
    pub fn nth_idle(&self, k: usize) -> Option<usize> {
        if k >= self.total {
            return None;
        }
        let mut want = k + 1;
        let mut pos = 0usize; // 1-based prefix position
        let mut step = self.tree.len().next_power_of_two() >> 1;
        while step > 0 {
            let next = pos + step;
            if next < self.tree.len() && (self.tree[next] as usize) < want {
                want -= self.tree[next] as usize;
                pos = next;
            }
            step >>= 1;
        }
        Some(pos) // pos is 1-based index of the predecessor → 0-based server
    }

    /// First idle server with index `>= s`, without wraparound.
    pub fn next_idle_at_or_after(&self, s: usize) -> Option<usize> {
        let before = if s == 0 { 0 } else { self.rank(s - 1) };
        self.nth_idle(before)
    }

    /// The idle servers of cell `c`, ascending.
    pub fn cell_idle(&self, c: usize) -> Vec<usize> {
        self.plan.range(c).filter(|&s| self.idle[s]).collect()
    }

    /// All idle servers, ascending.
    pub fn to_vec(&self) -> Vec<usize> {
        (0..self.idle.len()).filter(|&s| self.idle[s]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cells_partition_the_fleet() {
        for (n, target) in [(10, 3), (500, 0), (64, 1), (7, 10)] {
            let plan = CellPlan::build(n, target, 42);
            let mut covered = vec![false; n];
            for c in 0..plan.n_cells() {
                for s in plan.range(c) {
                    assert!(!covered[s], "server {s} in two cells");
                    covered[s] = true;
                    assert_eq!(plan.cell_of(s), c);
                }
            }
            assert!(covered.iter().all(|&x| x), "n={n} target={target}");
            let sizes: Vec<usize> = (0..plan.n_cells()).map(|c| plan.range(c).len()).collect();
            let (lo, hi) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
            assert!(hi - lo <= 1, "uneven cells: {sizes:?}");
        }
    }

    #[test]
    fn routing_is_deterministic_and_spread() {
        let plan = CellPlan::build(512, 8, 7);
        let plan2 = CellPlan::build(512, 8, 7);
        let mut hits = vec![0usize; plan.n_cells()];
        for id in 0..4000u64 {
            let (a, b) = plan.candidates(id);
            assert_eq!((a, b), plan2.candidates(id), "id {id}");
            hits[a] += 1;
            hits[b] += 1;
        }
        // Every cell must see a reasonable share of candidates.
        for (c, &h) in hits.iter().enumerate() {
            assert!(h > 200, "cell {c} starved: {h} of 8000 candidate slots");
        }
    }

    #[test]
    fn different_seeds_route_differently() {
        let a = CellPlan::build(256, 4, 1);
        let b = CellPlan::build(256, 4, 2);
        let differs = (0..100u64).any(|id| a.candidates(id) != b.candidates(id));
        assert!(differs);
    }

    #[test]
    fn idle_index_tracks_bits_and_counts() {
        let plan = CellPlan::build(10, 3, 0);
        let mut idx = IdleIndex::new(plan);
        assert_eq!(idx.total(), 10);
        assert!(idx.set_busy(3));
        assert!(!idx.set_busy(3), "double busy is a no-op");
        assert!(idx.set_busy(0));
        assert_eq!(idx.total(), 8);
        assert_eq!(idx.to_vec(), vec![1, 2, 4, 5, 6, 7, 8, 9]);
        assert!(idx.set_idle(3));
        assert_eq!(idx.to_vec(), vec![1, 2, 3, 4, 5, 6, 7, 8, 9]);
        let cell_sum: usize = (0..idx.plan().n_cells()).map(|c| idx.idle_in_cell(c)).sum();
        assert_eq!(cell_sum, idx.total());
    }

    #[test]
    fn nth_idle_matches_linear_scan() {
        let plan = CellPlan::build(67, 5, 3);
        let mut idx = IdleIndex::new(plan);
        for s in [0, 1, 13, 40, 66, 65, 32] {
            idx.set_busy(s);
        }
        let linear = idx.to_vec();
        for (k, &want) in linear.iter().enumerate() {
            assert_eq!(idx.nth_idle(k), Some(want), "k={k}");
        }
        assert_eq!(idx.nth_idle(linear.len()), None);
    }

    #[test]
    fn next_idle_at_or_after_matches_scan() {
        let plan = CellPlan::build(20, 2, 9);
        let mut idx = IdleIndex::new(plan);
        for s in [0, 1, 2, 7, 19] {
            idx.set_busy(s);
        }
        for s in 0..20 {
            let want = (s..20).find(|&x| idx.is_idle(x));
            assert_eq!(idx.next_idle_at_or_after(s), want, "s={s}");
        }
    }

    #[test]
    fn cell_idle_respects_ranges() {
        let plan = CellPlan::build(30, 3, 5);
        let mut idx = IdleIndex::new(plan);
        idx.set_busy(11);
        for c in 0..idx.plan().n_cells() {
            let r = idx.plan().range(c);
            let got = idx.cell_idle(c);
            assert!(got.iter().all(|s| r.contains(s)));
            assert_eq!(got.len(), idx.idle_in_cell(c));
        }
    }
}
