//! The real executor: the same service core, driven by wall-clock time and
//! actual [`vtx_core::Transcoder`] jobs on per-server worker threads.
//!
//! This is the proof that the serving layer is not simulation-only: admission,
//! shedding, dispatch and accounting all run through the identical
//! [`ServiceCore`] entry points the discrete-event engine uses — only the
//! clock (wall time) and the service process (a profiled transcode on the
//! server's Table IV microarchitecture) differ. Wall-clock runs are not
//! byte-reproducible; the determinism story belongs to [`crate::sim`].

use std::collections::BTreeMap;
use std::sync::mpsc;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use vtx_core::{CoreError, TranscodeOptions, Transcoder};
use vtx_frame::{synth, vbench};
use vtx_telemetry::Span;

use crate::cost::CostModel;
use crate::error::ServeError;
use crate::fleet::Fleet;
use crate::policy::DispatchPolicy;
use crate::queue::PendingJob;
use crate::service::{ServeConfig, ServiceCore};
use crate::sim::SimOutcome;
use crate::workload::{JobSpec, WorkloadSpec};

/// Real-executor tuning.
#[derive(Debug, Clone)]
pub struct ExecConfig {
    /// Shared service-layer configuration (queues, retries, window).
    pub serve: ServeConfig,
    /// Divisor applied to trace arrival gaps so a long trace replays
    /// quickly; deadline and timeout *budgets* (relative to arrival) are
    /// preserved. 1 = real time.
    pub arrival_compression: u64,
    /// Shrink inputs to thumbnail size (64×48×6 frames) so a smoke run
    /// finishes in seconds. Production-shaped runs set this to `false`.
    pub tiny_videos: bool,
    /// Profiler sampling shift for the transcodes (higher = faster).
    pub sample_shift: u32,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            serve: ServeConfig::default(),
            arrival_compression: 1,
            tiny_videos: true,
            sample_shift: 4,
        }
    }
}

/// Rescales arrivals in place, keeping per-job deadline/timeout budgets.
pub fn compress_arrivals(jobs: &mut [JobSpec], divisor: u64) {
    if divisor <= 1 {
        return;
    }
    for j in jobs.iter_mut() {
        let budget = j.deadline_us.saturating_sub(j.arrival_us);
        j.arrival_us /= divisor;
        j.deadline_us = j.arrival_us.saturating_add(budget);
    }
}

struct Done {
    server: usize,
    job: PendingJob,
    started_us: u64,
    result: Result<(), CoreError>,
}

/// Replays a workload with real transcodes on worker threads.
///
/// # Errors
///
/// Returns [`ServeError::EmptyWorkload`] for an empty trace,
/// [`ServeError::UnknownVideo`] for out-of-catalog names, and
/// [`ServeError::Core`] if building a transcoder fails.
pub fn run_real(
    workload: &WorkloadSpec,
    fleet: Fleet,
    policy: Box<dyn DispatchPolicy>,
    cfg: &ExecConfig,
) -> Result<SimOutcome, ServeError> {
    let mut jobs = workload.generate()?;
    compress_arrivals(&mut jobs, cfg.arrival_compression);
    run_real_trace(&jobs, workload.seed, fleet, policy, cfg)
}

/// Replays a pre-generated trace with real transcodes.
///
/// # Errors
///
/// Same conditions as [`run_real`].
pub fn run_real_trace(
    jobs: &[JobSpec],
    seed: u64,
    fleet: Fleet,
    policy: Box<dyn DispatchPolicy>,
    cfg: &ExecConfig,
) -> Result<SimOutcome, ServeError> {
    if jobs.is_empty() {
        return Err(ServeError::EmptyWorkload);
    }
    let _span = Span::enter_with("serve/run_real", |a| {
        a.u64("jobs", jobs.len() as u64);
        a.u64("seed", seed);
    });

    // One mezzanine encode per distinct video, shared by every worker.
    let mut transcoders: BTreeMap<String, Arc<Transcoder>> = BTreeMap::new();
    for j in jobs {
        if transcoders.contains_key(&j.task.video) {
            continue;
        }
        let mut spec = vbench::by_name(&j.task.video).ok_or_else(|| ServeError::UnknownVideo {
            name: j.task.video.clone(),
        })?;
        if cfg.tiny_videos {
            spec.sim_width = 64;
            spec.sim_height = 48;
            spec.sim_frames = 6;
        }
        let t = Transcoder::from_video(synth::generate(&spec, seed))?;
        transcoders.insert(j.task.video.clone(), Arc::new(t));
    }

    let model = CostModel::new(seed);
    let mut core = ServiceCore::new(cfg.serve.clone(), fleet, model, policy);
    let n_servers = core.fleet().len();

    // Per-server worker threads: each owns its uarch and pulls (job, start)
    // work items; completions funnel into one channel.
    let (done_tx, done_rx) = mpsc::channel::<Done>();
    let mut work_txs = Vec::with_capacity(n_servers);
    let mut workers = Vec::with_capacity(n_servers);
    for (idx, server) in core.fleet().servers().iter().enumerate() {
        let (tx, rx) = mpsc::channel::<(PendingJob, u64)>();
        work_txs.push(tx);
        let done = done_tx.clone();
        let uarch = server.uarch.clone();
        let sample_shift = cfg.sample_shift;
        let pool = transcoders.clone();
        workers.push(thread::spawn(move || {
            while let Ok((job, started_us)) = rx.recv() {
                let opts = TranscodeOptions::on(uarch.clone()).with_sample_shift(sample_shift);
                let result = pool
                    .get(&job.spec.task.video)
                    .expect("transcoder pre-built for every trace video")
                    .transcode(&job.spec.task.encoder_config(), &opts)
                    .map(|_| ());
                // Receiver gone = run aborted; nothing left to report.
                if done
                    .send(Done {
                        server: idx,
                        job,
                        started_us,
                        result,
                    })
                    .is_err()
                {
                    break;
                }
            }
        }));
    }
    drop(done_tx);

    let start = Instant::now();
    let now_us = || start.elapsed().as_micros() as u64;

    let mut arrivals: Vec<JobSpec> = jobs.to_vec();
    arrivals.sort_by_key(|j| (j.arrival_us, j.id));
    let mut next_arrival = 0usize;
    let mut busy = vec![false; n_servers];
    let mut in_flight = 0usize;
    let mut makespan = 0u64;

    loop {
        let t = now_us();
        while next_arrival < arrivals.len() && arrivals[next_arrival].arrival_us <= t {
            core.offer(arrivals[next_arrival].clone(), t);
            next_arrival += 1;
        }
        let idle: Vec<usize> = (0..n_servers).filter(|&s| !busy[s]).collect();
        let t = now_us();
        for (job, server) in core.dispatch(&idle, t) {
            busy[server] = true;
            in_flight += 1;
            // Worker threads outlive every send in this loop.
            work_txs[server]
                .send((job, t))
                .expect("worker thread alive");
        }
        makespan = makespan.max(now_us());
        if next_arrival == arrivals.len() && in_flight == 0 && core.queued() == 0 {
            break;
        }

        // Sleep until the next arrival is due or a completion lands.
        let wait_us = if next_arrival < arrivals.len() {
            arrivals[next_arrival].arrival_us.saturating_sub(now_us())
        } else {
            5_000
        }
        .clamp(100, 5_000);
        match done_rx.recv_timeout(Duration::from_micros(wait_us)) {
            Ok(done) => {
                let t = now_us();
                busy[done.server] = false;
                in_flight -= 1;
                match done.result {
                    // Real runs are never killed mid-transcode: a job that
                    // outlived its deadline completes and books a violation.
                    Ok(()) => core.complete(&done.job, done.server, done.started_us, t),
                    // A failed transcode consumes one attempt and goes back
                    // through admission (or is shed) like a sim timeout.
                    Err(_) => core.timeout(done.job, done.server, done.started_us, t),
                }
                makespan = makespan.max(t);
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {}
            Err(mpsc::RecvTimeoutError::Disconnected) => break,
        }
    }

    drop(work_txs);
    for w in workers {
        let _ = w.join();
    }

    let assignments = core.assignments().to_vec();
    let (report, event_log) = core.into_report(seed, makespan);
    Ok(SimOutcome {
        report,
        event_log,
        assignments,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use vtx_codec::Preset;
    use vtx_sched::TranscodeTask;

    use crate::workload::Priority;

    #[test]
    fn compress_preserves_budgets() {
        let mut jobs = vec![JobSpec {
            id: 0,
            arrival_us: 1_000_000,
            task: TranscodeTask::new("bike", 23, 3, Preset::Ultrafast),
            priority: Priority::Standard,
            deadline_us: 3_000_000,
            timeout_us: 5_000_000,
        }];
        compress_arrivals(&mut jobs, 10);
        assert_eq!(jobs[0].arrival_us, 100_000);
        assert_eq!(jobs[0].deadline_us, 2_100_000, "2 s budget preserved");
        compress_arrivals(&mut jobs, 1);
        assert_eq!(jobs[0].arrival_us, 100_000, "divisor 1 is identity");
    }

    // The end-to-end real-executor run lives in the workspace integration
    // tests (`vtx-tests/tests/serving.rs`): it needs several seconds of
    // real transcoding and a single-threaded test harness.
}
