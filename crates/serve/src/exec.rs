//! The real executor: the same service core, driven by wall-clock time and
//! actual [`vtx_core::Transcoder`] jobs on per-server worker threads.
//!
//! This is the proof that the serving layer is not simulation-only: admission,
//! shedding, dispatch and accounting all run through the identical
//! [`ServiceCore`] entry points the discrete-event engine uses — only the
//! clock (wall time) and the service process (a profiled transcode on the
//! server's Table IV microarchitecture) differ. Wall-clock runs are not
//! byte-reproducible; the determinism story belongs to [`crate::sim`].
//!
//! The same [`crate::chaos::ChaosConfig`] the simulator obeys applies here,
//! against the wall clock: a fail-stop crash makes the worker thread die
//! without reporting (its in-flight job is recovered when the failure
//! detector's down verdict fires), a fail-slow window stretches the
//! worker's observed service time, and hedged duplicates race real
//! transcodes with first-completion-wins accounting.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use vtx_chaos::{FailureDetector, FaultKind, Health};
use vtx_core::{CoreError, TranscodeOptions, Transcoder};
use vtx_frame::{synth, vbench, Video};
use vtx_telemetry::Span;

use crate::cost::CostModel;
use crate::error::ServeError;
use crate::fleet::Fleet;
use crate::policy::DispatchPolicy;
use crate::queue::PendingJob;
use crate::segment::SegmentPlan;
use crate::service::{ServeConfig, ServiceCore};
use crate::sim::SimOutcome;
use crate::workload::{JobSpec, Priority, WorkloadSpec};

/// Real-executor tuning.
#[derive(Debug, Clone)]
pub struct ExecConfig {
    /// Shared service-layer configuration (queues, retries, window).
    pub serve: ServeConfig,
    /// Divisor applied to trace arrival gaps so a long trace replays
    /// quickly; deadline and timeout *budgets* (relative to arrival) are
    /// preserved. 1 = real time.
    pub arrival_compression: u64,
    /// Shrink inputs to thumbnail size (64×48×6 frames) so a smoke run
    /// finishes in seconds. Production-shaped runs set this to `false`.
    pub tiny_videos: bool,
    /// Profiler sampling shift for the transcodes (higher = faster).
    pub sample_shift: u32,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            serve: ServeConfig::default(),
            arrival_compression: 1,
            tiny_videos: true,
            sample_shift: 4,
        }
    }
}

/// Rescales arrivals in place, keeping per-job deadline/timeout budgets.
pub fn compress_arrivals(jobs: &mut [JobSpec], divisor: u64) {
    if divisor <= 1 {
        return;
    }
    for j in jobs.iter_mut() {
        let budget = j.deadline_us.saturating_sub(j.arrival_us);
        j.arrival_us /= divisor;
        j.deadline_us = j.arrival_us.saturating_add(budget);
    }
}

struct Done {
    server: usize,
    job: PendingJob,
    started_us: u64,
    /// `Ok` carries the encoded artifact size in bytes (from the report's
    /// bitrate × duration), which sizes the segment-cache insertion.
    result: Result<u64, CoreError>,
}

/// Replays a workload with real transcodes on worker threads.
///
/// # Errors
///
/// Returns [`ServeError::EmptyWorkload`] for an empty trace,
/// [`ServeError::UnknownVideo`] for out-of-catalog names, and
/// [`ServeError::Core`] if building a transcoder fails.
pub fn run_real(
    workload: &WorkloadSpec,
    fleet: Fleet,
    policy: Box<dyn DispatchPolicy>,
    cfg: &ExecConfig,
) -> Result<SimOutcome, ServeError> {
    let mut jobs = workload.generate()?;
    compress_arrivals(&mut jobs, cfg.arrival_compression);
    run_real_trace(&jobs, workload.seed, fleet, policy, cfg)
}

/// Replays a pre-generated trace with real transcodes.
///
/// # Errors
///
/// Same conditions as [`run_real`].
pub fn run_real_trace(
    jobs: &[JobSpec],
    seed: u64,
    fleet: Fleet,
    policy: Box<dyn DispatchPolicy>,
    cfg: &ExecConfig,
) -> Result<SimOutcome, ServeError> {
    run_real_inner(jobs, seed, fleet, policy, cfg, None)
}

/// Runs a segment plan's units with real transcodes: each worker encodes
/// the unit's actual GOP-aligned slice of the source clip at the unit's
/// rung. True service times are scaled to the unit's frame share via
/// [`ServeConfig::unit_frames`], and clip geometry follows the plan's
/// `tiny` flag (not [`ExecConfig::tiny_videos`]) so the slice boundaries
/// match the plan's cut points.
///
/// # Errors
///
/// Same conditions as [`run_real`].
pub fn run_real_segmented(
    plan: &SegmentPlan,
    seed: u64,
    fleet: Fleet,
    policy: Box<dyn DispatchPolicy>,
    cfg: &ExecConfig,
) -> Result<SimOutcome, ServeError> {
    let mut cfg = cfg.clone();
    cfg.serve.unit_frames = plan.unit_frames();
    let mut jobs = plan.units.clone();
    compress_arrivals(&mut jobs, cfg.arrival_compression);
    run_real_inner(&jobs, seed, fleet, policy, &cfg, Some(plan))
}

/// Builds the worker transcoder pool. Whole-clip runs get one mezzanine
/// per distinct video keyed by name; segmented runs get one per distinct
/// (video, segment) slice keyed `"{video}#{seg}"`, cut from the same
/// seeded synthesis the plan's packaging path uses.
fn build_pool(
    jobs: &[JobSpec],
    seed: u64,
    cfg: &ExecConfig,
    seg: Option<&SegmentPlan>,
) -> Result<BTreeMap<String, Arc<Transcoder>>, ServeError> {
    let mut transcoders: BTreeMap<String, Arc<Transcoder>> = BTreeMap::new();
    if let Some(plan) = seg {
        let mut fulls: BTreeMap<String, Video> = BTreeMap::new();
        for p in &plan.parents {
            if !fulls.contains_key(&p.video) {
                let mut spec =
                    vbench::by_name(&p.video).ok_or_else(|| ServeError::UnknownVideo {
                        name: p.video.clone(),
                    })?;
                if plan.tiny {
                    spec.sim_width = 64;
                    spec.sim_height = 48;
                    spec.sim_frames = 6;
                }
                fulls.insert(p.video.clone(), synth::generate(&spec, seed));
            }
            let full = &fulls[&p.video];
            for (si, &start) in p.points.iter().enumerate() {
                let key = format!("{}#{si}", p.video);
                if transcoders.contains_key(&key) {
                    continue;
                }
                let end = p.points.get(si + 1).copied().unwrap_or(p.frames) as usize;
                let mut spec = full.spec.clone();
                spec.sim_frames = (end - start as usize) as u32;
                let slice = Video::new(spec, full.frames[start as usize..end].to_vec());
                transcoders.insert(key, Arc::new(Transcoder::from_video(slice)?));
            }
        }
        return Ok(transcoders);
    }
    for j in jobs {
        if transcoders.contains_key(&j.task.video) {
            continue;
        }
        let mut spec = vbench::by_name(&j.task.video).ok_or_else(|| ServeError::UnknownVideo {
            name: j.task.video.clone(),
        })?;
        if cfg.tiny_videos {
            spec.sim_width = 64;
            spec.sim_height = 48;
            spec.sim_frames = 6;
        }
        let t = Transcoder::from_video(synth::generate(&spec, seed))?;
        transcoders.insert(j.task.video.clone(), Arc::new(t));
    }
    Ok(transcoders)
}

fn run_real_inner(
    jobs: &[JobSpec],
    seed: u64,
    fleet: Fleet,
    policy: Box<dyn DispatchPolicy>,
    cfg: &ExecConfig,
    seg: Option<&SegmentPlan>,
) -> Result<SimOutcome, ServeError> {
    if jobs.is_empty() {
        return Err(ServeError::EmptyWorkload);
    }
    let _span = Span::enter_with("serve/run_real", |a| {
        a.u64("jobs", jobs.len() as u64);
        a.u64("seed", seed);
    });

    let transcoders = build_pool(jobs, seed, cfg, seg)?;
    // Segment index per dense unit id; `None` = whole-clip pool keys.
    let seg_of: Option<Arc<Vec<u32>>> =
        seg.map(|plan| Arc::new(plan.meta.iter().map(|m| m.seg as u32).collect()));

    let model = CostModel::new(seed);
    let mut core = ServiceCore::new(cfg.serve.clone(), fleet, model, policy);
    let n_servers = core.fleet().len();
    let plan = cfg.serve.chaos.plan.clone();
    let hedge_after = cfg.serve.chaos.hedge_after;

    let start = Instant::now();

    // Per-server worker threads: each owns its uarch and pulls (job, start)
    // work items; completions funnel into one channel. Fail-stop crashes
    // are coordinator-driven: when a planned crash fires, the coordinator
    // raises the worker's crash flag and closes its work channel, so the
    // worker dies deterministically (a blocked-idle worker wakes on the
    // closed channel, a mid-transcode worker sees the flag and loses its
    // finished work) no matter how the wall clock raced the workload.
    let (done_tx, done_rx) = mpsc::channel::<Done>();
    let crash_flags: Vec<Arc<AtomicBool>> = (0..n_servers)
        .map(|_| Arc::new(AtomicBool::new(false)))
        .collect();
    let mut work_txs: Vec<Option<mpsc::Sender<(PendingJob, u64)>>> = Vec::with_capacity(n_servers);
    let mut workers = Vec::with_capacity(n_servers);
    for (idx, server) in core.fleet().servers().iter().enumerate() {
        let (tx, rx) = mpsc::channel::<(PendingJob, u64)>();
        work_txs.push(Some(tx));
        let done = done_tx.clone();
        let uarch = server.uarch.clone();
        let sample_shift = cfg.sample_shift;
        let pool = transcoders.clone();
        let plan_w = plan.clone();
        let dead = crash_flags[idx].clone();
        let seg_map = seg_of.clone();
        workers.push(thread::spawn(move || {
            while let Ok((job, started_us)) = rx.recv() {
                if dead.load(Ordering::Acquire) {
                    // Fail-stop: die without reporting; the detector's down
                    // verdict recovers the job.
                    break;
                }
                let opts = TranscodeOptions::on(uarch.clone()).with_sample_shift(sample_shift);
                let work_start = start.elapsed().as_micros() as u64;
                let key = match &seg_map {
                    Some(m) => format!("{}#{}", job.spec.task.video, m[job.spec.id as usize]),
                    None => job.spec.task.video.clone(),
                };
                let result = pool
                    .get(&key)
                    .expect("transcoder pre-built for every trace video")
                    .transcode(&job.spec.task.encoder_config(), &opts)
                    .map(|r| ((r.bitrate_kbps * r.seconds * 125.0) as u64).max(1));
                let now = start.elapsed().as_micros() as u64;
                if dead.load(Ordering::Acquire) {
                    // Died mid-transcode: the finished work is lost.
                    break;
                }
                // Fail-slow: stretch the observed service time to what the
                // plan says this window costs.
                let elapsed = now.saturating_sub(work_start);
                let wall = plan_w.inflate(idx, work_start, elapsed);
                if wall > elapsed {
                    thread::sleep(Duration::from_micros(wall - elapsed));
                }
                // Receiver gone = run aborted; nothing left to report.
                if done
                    .send(Done {
                        server: idx,
                        job,
                        started_us,
                        result,
                    })
                    .is_err()
                {
                    break;
                }
            }
        }));
    }
    drop(done_tx);

    let now_us = || start.elapsed().as_micros() as u64;

    let mut arrivals: Vec<JobSpec> = jobs.to_vec();
    arrivals.sort_by_key(|j| (j.arrival_us, j.id));
    let mut next_arrival = 0usize;
    let mut busy = vec![false; n_servers];
    let mut in_flight = 0usize;
    let mut makespan = 0u64;

    // Fault bookkeeping (all empty without a plan): a copy of every
    // in-flight job so down verdicts can requeue work a dead worker will
    // never report, a pre-loaded detector (a crashed server's heartbeats
    // stop at its crash time), hedge triggers, and copy counts so hedged
    // jobs terminate exactly once.
    let mut running: Vec<Option<(PendingJob, u64, bool)>> = (0..n_servers).map(|_| None).collect();
    let mut detector = FailureDetector::new(cfg.serve.chaos.detector, n_servers);
    let mut fault_due: Vec<(u64, usize, FaultKind)> = Vec::new();
    for s in 0..n_servers {
        let f = plan.server(s);
        if let Some(c) = f.crash_us {
            detector.stop_beats(s, c);
            fault_due.push((c, s, FaultKind::Crash));
        }
        for w in &f.slowdowns {
            fault_due.push((w.from_us, s, FaultKind::SlowDown));
        }
        for st in &f.stalls {
            fault_due.push((st.at_us, s, FaultKind::Stall));
        }
    }
    fault_due.sort_unstable_by_key(|&(t, s, _)| (t, s));
    let mut next_fault = 0usize;
    let mut hedges_due: Vec<(u64, u64)> = Vec::new(); // (due_us, job id)
    let mut copies: BTreeMap<u64, u8> = BTreeMap::new();
    let mut done_ids: BTreeSet<u64> = BTreeSet::new();
    let mut lost: BTreeSet<(u64, u32)> = BTreeSet::new(); // (id, attempt)

    // A run may not end before every planned crash has fired AND matured
    // to a down verdict: exiting early is exactly the wall-clock race that
    // made fast runs miss their own fault script.
    let crash_victims: Vec<usize> = (0..n_servers)
        .filter(|&s| plan.server(s).crash_us.is_some())
        .collect();

    loop {
        let t = now_us();
        // Book plan faults as they fire; a crash also kills its worker via
        // the flag + channel-close handshake.
        while next_fault < fault_due.len() && fault_due[next_fault].0 <= t {
            let (_, s, kind) = fault_due[next_fault];
            core.record_fault(s, kind, t);
            if kind == FaultKind::Crash {
                crash_flags[s].store(true, Ordering::Release);
                work_txs[s] = None;
            }
            next_fault += 1;
        }
        // Heartbeat sweep: push detector verdicts into the core, and
        // requeue whatever a newly-down server still holds.
        for s in 0..n_servers {
            match detector.classify(s, t) {
                Health::Up => {}
                Health::Suspected => core.mark_suspected(s, t),
                Health::Down => {
                    core.mark_down(s, t);
                    if let Some((job, started_us, _)) = running[s].take() {
                        busy[s] = false;
                        in_flight -= 1;
                        let id = job.spec.id;
                        let left = copies
                            .get_mut(&id)
                            .map(|c| {
                                *c -= 1;
                                *c
                            })
                            .unwrap_or(0);
                        if left == 0 {
                            copies.remove(&id);
                        }
                        // A Done for this copy may still race in; drop it.
                        lost.insert((id, job.attempts));
                        if !done_ids.contains(&id) && left == 0 {
                            core.fail(job, s, started_us, t);
                        }
                    }
                }
            }
        }
        while next_arrival < arrivals.len() && arrivals[next_arrival].arrival_us <= t {
            core.offer(arrivals[next_arrival].clone(), t);
            next_arrival += 1;
        }
        let idle: Vec<usize> = (0..n_servers).filter(|&s| !busy[s]).collect();
        let t = now_us();
        for (job, server) in core.dispatch(&idle, t) {
            // A cache hit never reaches a worker: the artifact already
            // exists, so the job completes on the spot for the lookup cost
            // (sub-millisecond against the wall clock — booked as zero).
            if core.cache_lookup(&job, server, t).is_some() {
                core.complete(&job, server, t, t);
                done_ids.insert(job.spec.id);
                makespan = makespan.max(t);
                continue;
            }
            busy[server] = true;
            in_flight += 1;
            let id = job.spec.id;
            *copies.entry(id).or_insert(0) += 1;
            if job.spec.priority == Priority::Interactive && job.attempts == 1 {
                if let Some(due) = crate::chaos::hedge_due_us(
                    job.spec.arrival_us,
                    job.spec.deadline_us,
                    hedge_after,
                ) {
                    if due > t && due < job.spec.deadline_us {
                        hedges_due.push((due, id));
                    }
                }
            }
            running[server] = Some((job.clone(), t, false));
            // A dead worker's channel is closed; the job copy in
            // `running` is recovered by the down verdict above.
            if let Some(tx) = &work_txs[server] {
                let _ = tx.send((job, t));
            }
        }
        // Launch due hedges: a duplicate of the original copy on the best
        // detected-up idle server; first completion wins.
        let t = now_us();
        let mut i = 0;
        while i < hedges_due.len() {
            if hedges_due[i].0 > t {
                i += 1;
                continue;
            }
            let (_, id) = hedges_due.swap_remove(i);
            if done_ids.contains(&id) || copies.get(&id) != Some(&1) {
                continue;
            }
            let Some(origin) = (0..n_servers)
                .find(|&s| running[s].as_ref().is_some_and(|(j, _, _)| j.spec.id == id))
            else {
                continue;
            };
            let job = running[origin].as_ref().expect("found above").0.clone();
            let pick = (0..n_servers)
                .filter(|&s| !busy[s] && core.health()[s] == Health::Up)
                .min_by_key(|&s| {
                    (
                        core.model().predicted_us(&job.spec, core.fleet().server(s)),
                        s,
                    )
                });
            if let Some(server) = pick {
                core.hedge_dispatch(&job, server, t);
                copies.insert(id, 2);
                busy[server] = true;
                in_flight += 1;
                running[server] = Some((job.clone(), t, true));
                if let Some(tx) = &work_txs[server] {
                    let _ = tx.send((job, t));
                }
            }
        }
        makespan = makespan.max(now_us());
        let crashes_matured = next_fault == fault_due.len()
            && crash_victims
                .iter()
                .all(|&s| core.health()[s] == Health::Down);
        if next_arrival == arrivals.len() && in_flight == 0 {
            if core.queued() == 0 && crashes_matured {
                break;
            }
            // Whole fleet down with work still queued: nothing can ever be
            // served again; settle the books so every admitted job reaches
            // a terminal state.
            if core.health().iter().all(|&h| h == Health::Down) {
                core.shed_stranded(now_us());
                break;
            }
        }

        // Sleep until the next arrival is due or a completion lands.
        let wait_us = if next_arrival < arrivals.len() {
            arrivals[next_arrival].arrival_us.saturating_sub(now_us())
        } else {
            5_000
        }
        .clamp(100, 5_000);
        match done_rx.recv_timeout(Duration::from_micros(wait_us)) {
            Ok(done) => {
                let t = now_us();
                let id = done.job.spec.id;
                if lost.remove(&(id, done.job.attempts)) {
                    // Raced a down verdict that already requeued this copy.
                    continue;
                }
                busy[done.server] = false;
                let was_hedge = running[done.server].take().is_some_and(|(_, _, h)| h);
                in_flight -= 1;
                let left = copies
                    .get_mut(&id)
                    .map(|c| {
                        *c -= 1;
                        *c
                    })
                    .unwrap_or(0);
                if left == 0 {
                    copies.remove(&id);
                }
                match done.result {
                    Ok(bytes) => {
                        if done_ids.contains(&id) {
                            // The other copy already won; bill the work.
                            core.hedge_discard(id, done.server, done.started_us, t);
                        } else {
                            core.complete(&done.job, done.server, done.started_us, t);
                            done_ids.insert(id);
                            if was_hedge {
                                core.note_hedge_won();
                            }
                            core.cache_insert(&done.job, done.server, Some(bytes));
                        }
                    }
                    Err(_) => {
                        if done_ids.contains(&id) || left > 0 {
                            core.hedge_discard(id, done.server, done.started_us, t);
                        } else {
                            core.timeout(done.job, done.server, done.started_us, t);
                        }
                    }
                }
                makespan = makespan.max(t);
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {}
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                // Every worker is gone (all crashed). Keep sweeping so the
                // detector's down verdicts recover what they held, but
                // don't spin while waiting for them to mature.
                if in_flight == 0
                    && core.queued() == 0
                    && next_arrival == arrivals.len()
                    && crashes_matured
                {
                    break;
                }
                thread::sleep(Duration::from_millis(1));
            }
        }
    }

    drop(work_txs);
    for w in workers {
        let _ = w.join();
    }

    let assignments = core.assignments().to_vec();
    let (report, event_log, obs) = core.finish(seed, makespan);
    Ok(SimOutcome {
        report,
        event_log,
        assignments,
        obs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use vtx_codec::Preset;
    use vtx_sched::TranscodeTask;

    use crate::workload::Priority;

    #[test]
    fn compress_preserves_budgets() {
        let mut jobs = vec![JobSpec {
            id: 0,
            arrival_us: 1_000_000,
            task: TranscodeTask::new("bike", 23, 3, Preset::Ultrafast),
            priority: Priority::Standard,
            deadline_us: 3_000_000,
            timeout_us: 5_000_000,
        }];
        compress_arrivals(&mut jobs, 10);
        assert_eq!(jobs[0].arrival_us, 100_000);
        assert_eq!(jobs[0].deadline_us, 2_100_000, "2 s budget preserved");
        compress_arrivals(&mut jobs, 1);
        assert_eq!(jobs[0].arrival_us, 100_000, "divisor 1 is identity");
    }

    // The end-to-end real-executor run lives in the workspace integration
    // tests (`vtx-tests/tests/serving.rs`): it needs several seconds of
    // real transcoding and a single-threaded test harness.
}
