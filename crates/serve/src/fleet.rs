//! Heterogeneous worker fleets built from the Table IV configurations.

use serde::{Deserialize, Serialize};

use vtx_sched::affinity::CONFIG_NAMES;
use vtx_uarch::config::UarchConfig;

use crate::error::ServeError;

/// One server: a microarchitecture plus a relative speed grade (cloud
/// fleets mix CPU generations; 1.0 = the paper's reference part).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServerSpec {
    /// Display name (unique within a fleet).
    pub name: String,
    /// Microarchitecture configuration (Table IV column).
    pub uarch: UarchConfig,
    /// Relative speed multiplier (>1 = faster part).
    pub speed: f64,
}

impl ServerSpec {
    /// Index of this server's uarch in [`CONFIG_NAMES`] order, `None` for
    /// the baseline (which attacks no Top-down category).
    pub fn config_index(&self) -> Option<usize> {
        CONFIG_NAMES.iter().position(|&n| n == self.uarch.name)
    }
}

/// A validated, nonempty set of servers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fleet {
    servers: Vec<ServerSpec>,
}

impl Fleet {
    /// Builds a fleet, rejecting an empty server list.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::EmptyFleet`] when `servers` is empty.
    pub fn new(servers: Vec<ServerSpec>) -> Result<Self, ServeError> {
        if servers.is_empty() {
            return Err(ServeError::EmptyFleet);
        }
        Ok(Fleet { servers })
    }

    /// The bundled heterogeneous fleet: the baseline plus the four modified
    /// Table IV configurations, with mixed speed grades — slow front-end
    /// box, reference back-end boxes, one fast bad-speculation box — so
    /// placement quality actually matters.
    ///
    /// # Panics
    ///
    /// Never: the construction is static.
    pub fn table_iv() -> Self {
        let speeds = [0.9, 1.0, 1.05, 1.0, 1.15];
        let mut servers = vec![ServerSpec {
            name: "baseline-0".to_owned(),
            uarch: UarchConfig::baseline(),
            speed: speeds[0],
        }];
        for (i, cfg) in UarchConfig::modified_configs().into_iter().enumerate() {
            servers.push(ServerSpec {
                name: format!("{}-0", cfg.name),
                uarch: cfg,
                speed: speeds[i + 1],
            });
        }
        Fleet { servers }
    }

    /// A fleet of `n` replicas of every Table IV configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::EmptyFleet`] when `n` is 0.
    pub fn table_iv_replicated(n: usize) -> Result<Self, ServeError> {
        if n == 0 {
            return Err(ServeError::EmptyFleet);
        }
        let base = Fleet::table_iv();
        let mut servers = Vec::with_capacity(base.len() * n);
        for r in 0..n {
            for s in &base.servers {
                let mut s = s.clone();
                // base names end in "-0"; re-suffix per replica.
                let stem = s.name.trim_end_matches("-0").to_owned();
                s.name = format!("{stem}-{r}");
                servers.push(s);
            }
        }
        Ok(Fleet { servers })
    }

    /// Number of servers.
    pub fn len(&self) -> usize {
        self.servers.len()
    }

    /// Whether the fleet is empty (never true for a constructed fleet).
    pub fn is_empty(&self) -> bool {
        self.servers.is_empty()
    }

    /// The servers, index order.
    pub fn servers(&self) -> &[ServerSpec] {
        &self.servers
    }

    /// One server.
    pub fn server(&self, idx: usize) -> &ServerSpec {
        &self.servers[idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_iv_fleet_has_all_five_configs() {
        let f = Fleet::table_iv();
        assert_eq!(f.len(), 5);
        assert_eq!(f.server(0).uarch.name, "baseline");
        assert_eq!(f.server(0).config_index(), None);
        for (i, name) in CONFIG_NAMES.iter().enumerate() {
            let s = f.servers().iter().find(|s| s.uarch.name == *name).unwrap();
            assert_eq!(s.config_index(), Some(i));
        }
    }

    #[test]
    fn replication_renames_uniquely() {
        let f = Fleet::table_iv_replicated(2).unwrap();
        assert_eq!(f.len(), 10);
        let mut names: Vec<&str> = f.servers().iter().map(|s| s.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 10, "server names must be unique");
    }

    #[test]
    fn empty_fleet_is_rejected() {
        assert_eq!(Fleet::new(vec![]).unwrap_err(), ServeError::EmptyFleet);
        assert_eq!(
            Fleet::table_iv_replicated(0).unwrap_err(),
            ServeError::EmptyFleet
        );
    }
}
