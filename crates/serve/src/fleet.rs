//! Heterogeneous worker fleets built from the Table IV configurations.

use serde::{Deserialize, Serialize};

use vtx_sched::affinity::CONFIG_NAMES;
use vtx_uarch::config::UarchConfig;

use crate::error::ServeError;

/// One server: a microarchitecture plus a relative speed grade (cloud
/// fleets mix CPU generations; 1.0 = the paper's reference part).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServerSpec {
    /// Display name (unique within a fleet).
    pub name: String,
    /// Microarchitecture configuration (Table IV column).
    pub uarch: UarchConfig,
    /// Relative speed multiplier (>1 = faster part).
    pub speed: f64,
}

impl ServerSpec {
    /// Index of this server's uarch in [`CONFIG_NAMES`] order, `None` for
    /// the baseline (which attacks no Top-down category).
    pub fn config_index(&self) -> Option<usize> {
        CONFIG_NAMES.iter().position(|&n| n == self.uarch.name)
    }
}

/// A validated, nonempty set of servers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fleet {
    servers: Vec<ServerSpec>,
}

impl Fleet {
    /// Builds a fully validated fleet, mirroring the vtx-sched `try_`
    /// pattern: every constructor precondition becomes an error, and the
    /// panicking wrapper ([`Fleet::validated`]) stays for callers whose
    /// input is static.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::EmptyFleet`] for an empty list,
    /// [`ServeError::DuplicateServer`] when two servers share a name, and
    /// [`ServeError::InvalidSpeed`] for a speed grade that is not finite
    /// and positive.
    pub fn try_new(servers: Vec<ServerSpec>) -> Result<Self, ServeError> {
        if servers.is_empty() {
            return Err(ServeError::EmptyFleet);
        }
        for (i, s) in servers.iter().enumerate() {
            if !s.speed.is_finite() || s.speed <= 0.0 {
                return Err(ServeError::InvalidSpeed {
                    name: s.name.clone(),
                    speed: s.speed,
                });
            }
            if servers[..i].iter().any(|other| other.name == s.name) {
                return Err(ServeError::DuplicateServer {
                    name: s.name.clone(),
                });
            }
        }
        Ok(Fleet { servers })
    }

    /// Builds a fleet, rejecting an empty server list. Kept for existing
    /// callers; [`Fleet::try_new`] additionally validates names and speeds.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::EmptyFleet`] when `servers` is empty.
    pub fn new(servers: Vec<ServerSpec>) -> Result<Self, ServeError> {
        if servers.is_empty() {
            return Err(ServeError::EmptyFleet);
        }
        Ok(Fleet { servers })
    }

    /// The panicking wrapper around [`Fleet::try_new`], for static fleets
    /// (mirrors how vtx-sched pairs `try_*` with a panicking front door).
    ///
    /// # Panics
    ///
    /// Panics with the underlying [`ServeError`] message on invalid input.
    pub fn validated(servers: Vec<ServerSpec>) -> Self {
        Fleet::try_new(servers).unwrap_or_else(|e| panic!("{e}"))
    }

    /// The bundled heterogeneous fleet: the baseline plus the four modified
    /// Table IV configurations, with mixed speed grades — slow front-end
    /// box, reference back-end boxes, one fast bad-speculation box — so
    /// placement quality actually matters.
    ///
    /// # Panics
    ///
    /// Never: the construction is static.
    pub fn table_iv() -> Self {
        let speeds = [0.9, 1.0, 1.05, 1.0, 1.15];
        let mut servers = vec![ServerSpec {
            name: "baseline-0".to_owned(),
            uarch: UarchConfig::baseline(),
            speed: speeds[0],
        }];
        for (i, cfg) in UarchConfig::modified_configs().into_iter().enumerate() {
            servers.push(ServerSpec {
                name: format!("{}-0", cfg.name),
                uarch: cfg,
                speed: speeds[i + 1],
            });
        }
        Fleet { servers }
    }

    /// A fleet of `n` replicas of every Table IV configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::EmptyFleet`] when `n` is 0.
    pub fn table_iv_replicated(n: usize) -> Result<Self, ServeError> {
        if n == 0 {
            return Err(ServeError::EmptyFleet);
        }
        let base = Fleet::table_iv();
        let mut servers = Vec::with_capacity(base.len() * n);
        for r in 0..n {
            for s in &base.servers {
                let mut s = s.clone();
                // base names end in "-0"; re-suffix per replica.
                let stem = s.name.trim_end_matches("-0").to_owned();
                s.name = format!("{stem}-{r}");
                servers.push(s);
            }
        }
        Ok(Fleet { servers })
    }

    /// A fleet of exactly `n` servers: the first `n` slots of enough
    /// Table IV replications. Used by the fault-tolerance study, whose
    /// canonical scenario runs 8 servers.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::EmptyFleet`] when `n` is 0.
    pub fn sized(n: usize) -> Result<Self, ServeError> {
        if n == 0 {
            return Err(ServeError::EmptyFleet);
        }
        let per = Fleet::table_iv().len();
        let mut f = Fleet::table_iv_replicated(n.div_ceil(per))?;
        f.servers.truncate(n);
        Ok(f)
    }

    /// Number of servers.
    pub fn len(&self) -> usize {
        self.servers.len()
    }

    /// Whether the fleet is empty (never true for a constructed fleet).
    pub fn is_empty(&self) -> bool {
        self.servers.is_empty()
    }

    /// The servers, index order.
    pub fn servers(&self) -> &[ServerSpec] {
        &self.servers
    }

    /// One server.
    pub fn server(&self, idx: usize) -> &ServerSpec {
        &self.servers[idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_iv_fleet_has_all_five_configs() {
        let f = Fleet::table_iv();
        assert_eq!(f.len(), 5);
        assert_eq!(f.server(0).uarch.name, "baseline");
        assert_eq!(f.server(0).config_index(), None);
        for (i, name) in CONFIG_NAMES.iter().enumerate() {
            let s = f.servers().iter().find(|s| s.uarch.name == *name).unwrap();
            assert_eq!(s.config_index(), Some(i));
        }
    }

    #[test]
    fn replication_renames_uniquely() {
        let f = Fleet::table_iv_replicated(2).unwrap();
        assert_eq!(f.len(), 10);
        let mut names: Vec<&str> = f.servers().iter().map(|s| s.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 10, "server names must be unique");
    }

    #[test]
    fn try_new_validates_names_and_speeds() {
        let mut servers = Fleet::table_iv().servers().to_vec();
        assert!(Fleet::try_new(servers.clone()).is_ok());
        servers[1].speed = 0.0;
        assert!(matches!(
            Fleet::try_new(servers.clone()).unwrap_err(),
            ServeError::InvalidSpeed { speed, .. } if speed == 0.0
        ));
        servers[1].speed = f64::NAN;
        assert!(matches!(
            Fleet::try_new(servers.clone()).unwrap_err(),
            ServeError::InvalidSpeed { .. }
        ));
        servers[1].speed = 1.0;
        servers[1].name = servers[0].name.clone();
        assert_eq!(
            Fleet::try_new(servers).unwrap_err(),
            ServeError::DuplicateServer {
                name: "baseline-0".into()
            }
        );
        assert_eq!(Fleet::try_new(vec![]).unwrap_err(), ServeError::EmptyFleet);
    }

    #[test]
    fn validated_wrapper_accepts_good_fleets() {
        let f = Fleet::validated(Fleet::table_iv().servers().to_vec());
        assert_eq!(f.len(), 5);
    }

    #[test]
    #[should_panic(expected = "invalid speed")]
    fn validated_wrapper_panics_on_bad_input() {
        let mut servers = Fleet::table_iv().servers().to_vec();
        servers[0].speed = -1.0;
        let _ = Fleet::validated(servers);
    }

    #[test]
    fn sized_fleet_has_exactly_n_unique_servers() {
        let f = Fleet::sized(8).unwrap();
        assert_eq!(f.len(), 8);
        let mut names: Vec<&str> = f.servers().iter().map(|s| s.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 8);
        assert_eq!(Fleet::sized(3).unwrap().len(), 3);
        assert_eq!(Fleet::sized(0).unwrap_err(), ServeError::EmptyFleet);
        // Validation holds for the truncated construction too.
        assert!(Fleet::try_new(f.servers().to_vec()).is_ok());
    }

    #[test]
    fn empty_fleet_is_rejected() {
        assert_eq!(Fleet::new(vec![]).unwrap_err(), ServeError::EmptyFleet);
        assert_eq!(
            Fleet::table_iv_replicated(0).unwrap_err(),
            ServeError::EmptyFleet
        );
    }
}
