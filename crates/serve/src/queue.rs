//! Bounded per-priority admission queues with backpressure and shedding.
//!
//! Admission control is the first line of defense of an overloaded serving
//! system: unbounded queues turn overload into unbounded latency for
//! *everyone*. Each service class gets its own bounded FIFO; when a class
//! queue is full the queue exerts backpressure by refusing the job —
//! except that an arriving higher-priority job may shed the *newest* job of
//! the lowest-priority backlogged class instead (load shedding), so
//! interactive traffic survives batch floods. Jobs whose deadline passes
//! while still queued are dropped at dispatch time (they could only waste a
//! server).
//!
//! Internally each class is an *indexed* FIFO rather than a plain
//! `VecDeque`: jobs live in a `BTreeMap` keyed by a monotonically assigned
//! sequence key (FIFO = ascending key, front-insertion = descending keys
//! below the start), with an earliest-deadline index per class and a global
//! id index. That keeps every hot-path operation — [`AdmissionQueue::take`]
//! by id, [`AdmissionQueue::candidates`], and the
//! [`AdmissionQueue::drop_expired`] sweep — logarithmic in the backlog,
//! which is what lets the XL discrete-event engine dispatch against
//! thousand-deep queues without per-event O(queue) scans. The observable
//! ordering contract is unchanged from the `VecDeque` version.

use std::collections::{BTreeMap, BTreeSet};

use serde::{Deserialize, Serialize};

use crate::workload::{JobSpec, Priority};

/// First sequence key handed out; front-insertions count down from here.
const SEQ_MID: u64 = u64::MAX / 2;

/// One service class: an indexed FIFO with an earliest-deadline view.
#[derive(Debug, Clone)]
struct ClassQueue {
    /// Sequence key → job. FIFO order is ascending key order.
    jobs: BTreeMap<u64, PendingJob>,
    /// `(deadline_us, id, seqkey)` — EDF order with a total tie-break.
    by_deadline: BTreeSet<(u64, u64, u64)>,
    /// Next key for a front insertion (pre-decremented).
    front: u64,
    /// Next key for a back insertion (post-incremented).
    back: u64,
}

impl ClassQueue {
    fn new() -> Self {
        ClassQueue {
            jobs: BTreeMap::new(),
            by_deadline: BTreeSet::new(),
            front: SEQ_MID,
            back: SEQ_MID,
        }
    }

    fn len(&self) -> usize {
        self.jobs.len()
    }

    fn insert_back(&mut self, job: PendingJob) -> u64 {
        let k = self.back;
        self.back += 1;
        self.by_deadline
            .insert((job.spec.deadline_us, job.spec.id, k));
        self.jobs.insert(k, job);
        k
    }

    fn insert_front(&mut self, job: PendingJob) -> u64 {
        self.front -= 1;
        let k = self.front;
        self.by_deadline
            .insert((job.spec.deadline_us, job.spec.id, k));
        self.jobs.insert(k, job);
        k
    }

    fn remove_key(&mut self, k: u64) -> Option<PendingJob> {
        let job = self.jobs.remove(&k)?;
        self.by_deadline
            .remove(&(job.spec.deadline_us, job.spec.id, k));
        Some(job)
    }

    /// Removes the newest back-of-line job (the displacement victim).
    fn pop_back(&mut self) -> Option<PendingJob> {
        let (&k, _) = self.jobs.last_key_value()?;
        self.remove_key(k)
    }

    /// Removes the displacement victim under a rung table: the queued unit
    /// on the *highest-quality* rung (lowest rung index, `hi` = 0) goes
    /// first, newest within a rung — shedding a `hi` rendition of one job
    /// beats shedding a whole competing job. Falls back to [`pop_back`]
    /// when no table is set (whole-clip runs).
    ///
    /// [`pop_back`]: ClassQueue::pop_back
    fn pop_victim(&mut self, rungs: &[u8]) -> Option<PendingJob> {
        if rungs.is_empty() {
            return self.pop_back();
        }
        let k = self
            .jobs
            .iter()
            .map(|(&k, j)| {
                let r = rungs.get(j.spec.id as usize).copied().unwrap_or(0);
                (r, std::cmp::Reverse(k))
            })
            .min()
            .map(|(_, std::cmp::Reverse(k))| k)?;
        self.remove_key(k)
    }

    fn min_deadline(&self) -> Option<u64> {
        self.by_deadline.first().map(|&(d, _, _)| d)
    }
}

/// Why a job was shed rather than served.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ShedReason {
    /// Its class queue (and anything lower-priority it could displace) was
    /// full at arrival.
    QueueFull,
    /// A higher-priority arrival displaced it.
    Displaced,
    /// Its deadline passed while it was still queued.
    Expired,
    /// It timed out on a server more times than the retry budget allows.
    RetriesExhausted,
}

impl ShedReason {
    /// Short name used in event logs and reports.
    pub fn name(self) -> &'static str {
        match self {
            ShedReason::QueueFull => "queue_full",
            ShedReason::Displaced => "displaced",
            ShedReason::Expired => "expired",
            ShedReason::RetriesExhausted => "retries_exhausted",
        }
    }
}

/// Queue sizing.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueueConfig {
    /// Per-class capacity, [`Priority::ALL`] order.
    pub per_class_cap: [usize; 3],
}

impl Default for QueueConfig {
    fn default() -> Self {
        QueueConfig {
            per_class_cap: [16, 32, 64],
        }
    }
}

/// A job waiting in (or flowing through) the service: the immutable spec
/// plus its service history so far.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PendingJob {
    /// The trace entry.
    pub spec: JobSpec,
    /// When the service admitted it (µs).
    pub admitted_us: u64,
    /// Dispatch attempts so far (0 = never dispatched).
    pub attempts: u32,
}

/// Outcome of offering a job to the queue.
#[derive(Debug, PartialEq)]
pub enum Admission {
    /// Job queued.
    Admitted,
    /// Job queued after displacing a lower-priority job (returned).
    AdmittedDisplacing(PendingJob),
    /// Job refused: everything it could use or displace is full.
    Refused(PendingJob),
}

/// Bounded, priority-segregated admission queue.
#[derive(Debug, Clone)]
pub struct AdmissionQueue {
    classes: [ClassQueue; 3],
    /// Job id → (class index, sequence key). Queued ids are unique: a job
    /// is either queued or in flight, never both.
    index: BTreeMap<u64, (usize, u64)>,
    cfg: QueueConfig,
    /// Ladder rung per job id (0 = `hi`) on segmented runs; empty on
    /// whole-clip runs. Switches displacement from job-granular newest-
    /// first to unit-granular rung-ordered (see [`ClassQueue::pop_victim`]).
    rungs: Vec<u8>,
}

impl AdmissionQueue {
    /// Creates an empty queue with the given sizing.
    pub fn new(cfg: QueueConfig) -> Self {
        AdmissionQueue {
            classes: [ClassQueue::new(), ClassQueue::new(), ClassQueue::new()],
            index: BTreeMap::new(),
            cfg,
            rungs: Vec::new(),
        }
    }

    /// Installs the per-unit rung table (indexed by job id, 0 = `hi`) that
    /// makes displacement unit-granular and rung-ordered. An empty table
    /// restores the legacy job-granular newest-first victim choice.
    pub fn set_rung_table(&mut self, rungs: Vec<u8>) {
        self.rungs = rungs;
    }

    /// Total queued jobs.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Queued jobs in one class.
    pub fn depth(&self, p: Priority) -> usize {
        self.classes[p.index()].len()
    }

    /// Earliest deadline of any queued job. `None` when empty. Lets the
    /// dispatcher skip the expiry sweep entirely while nothing can have
    /// expired.
    pub fn min_deadline(&self) -> Option<u64> {
        self.classes
            .iter()
            .filter_map(ClassQueue::min_deadline)
            .min()
    }

    /// Displaces from the lowest-priority backlogged class strictly below
    /// `k`, if any: the newest job (whole-clip runs), or the newest unit
    /// on the highest-quality rung when a rung table is installed — so the
    /// `hi` rendition is shed before anything that would cost a whole job.
    fn displace_below(&mut self, k: usize) -> Option<PendingJob> {
        for lower in (k + 1..Priority::ALL.len()).rev() {
            if let Some(victim) = self.classes[lower].pop_victim(&self.rungs) {
                self.index.remove(&victim.spec.id);
                return Some(victim);
            }
        }
        None
    }

    /// Offers a job. The job lands at the back of its class queue; if that
    /// queue is full, the *newest* job of the lowest-priority class with a
    /// strictly lower priority is displaced to make room. Equal-or-higher
    /// priority jobs are never displaced, and a full Batch queue refuses
    /// batch arrivals outright (pure backpressure).
    pub fn offer(&mut self, job: PendingJob) -> Admission {
        let k = job.spec.priority.index();
        let id = job.spec.id;
        if self.classes[k].len() < self.cfg.per_class_cap[k] {
            let key = self.classes[k].insert_back(job);
            self.index.insert(id, (k, key));
            return Admission::Admitted;
        }
        // Class full: try to displace from the lowest-priority backlogged
        // class below this job's priority.
        if let Some(victim) = self.displace_below(k) {
            let key = self.classes[k].insert_back(job);
            self.index.insert(id, (k, key));
            return Admission::AdmittedDisplacing(victim);
        }
        Admission::Refused(job)
    }

    /// Offers a job at the *front* of its class queue. Used when recovery
    /// requeues an in-flight job off a failed server: the job already
    /// waited its turn once, so it should not go to the back of the line.
    /// Capacity and displacement rules are identical to [`Self::offer`].
    pub fn offer_front(&mut self, job: PendingJob) -> Admission {
        let k = job.spec.priority.index();
        let id = job.spec.id;
        if self.classes[k].len() < self.cfg.per_class_cap[k] {
            let key = self.classes[k].insert_front(job);
            self.index.insert(id, (k, key));
            return Admission::Admitted;
        }
        if let Some(victim) = self.displace_below(k) {
            let key = self.classes[k].insert_front(job);
            self.index.insert(id, (k, key));
            return Admission::AdmittedDisplacing(victim);
        }
        Admission::Refused(job)
    }

    /// Removes and returns everything queued, class order. Used to settle
    /// accounting when the whole fleet has failed and nothing can ever be
    /// served again.
    pub fn drain_all(&mut self) -> Vec<PendingJob> {
        let mut out = Vec::with_capacity(self.len());
        for q in &mut self.classes {
            // FIFO order = ascending sequence key.
            while let Some((&k, _)) = q.jobs.first_key_value() {
                let job = q.remove_key(k).expect("key just observed");
                self.index.remove(&job.spec.id);
                out.push(job);
            }
        }
        out
    }

    /// Removes and returns every queued job whose deadline has passed,
    /// FIFO order within each class (matching the historical scan order).
    pub fn drop_expired(&mut self, now_us: u64) -> Vec<PendingJob> {
        let mut dropped = Vec::new();
        for q in &mut self.classes {
            if q.min_deadline().is_none_or(|d| d > now_us) {
                continue;
            }
            let mut keys: Vec<u64> = q
                .by_deadline
                .iter()
                .take_while(|&&(d, _, _)| d <= now_us)
                .map(|&(_, _, k)| k)
                .collect();
            keys.sort_unstable();
            for k in keys {
                let job = q.remove_key(k).expect("indexed key");
                self.index.remove(&job.spec.id);
                dropped.push(job);
            }
        }
        dropped
    }

    /// The first `limit` dispatch candidates: strict priority order, and
    /// earliest-deadline-first within a class (FIFO ties broken by id, so
    /// the order is total and deterministic). Reads the per-class deadline
    /// index directly — no sort, O(limit · log backlog).
    pub fn candidates(&self, limit: usize) -> Vec<&PendingJob> {
        let mut out: Vec<&PendingJob> = Vec::new();
        for q in &self.classes {
            for &(_, _, k) in &q.by_deadline {
                if out.len() == limit {
                    return out;
                }
                out.push(&q.jobs[&k]);
            }
        }
        out
    }

    /// Removes a specific job by id (after the policy chose it).
    pub fn take(&mut self, id: u64) -> Option<PendingJob> {
        let (class, key) = self.index.remove(&id)?;
        self.classes[class].remove_key(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vtx_codec::Preset;
    use vtx_sched::TranscodeTask;

    fn job(id: u64, priority: Priority, deadline_us: u64) -> PendingJob {
        PendingJob {
            spec: JobSpec {
                id,
                arrival_us: 0,
                task: TranscodeTask::new("bike", 23, 3, Preset::Medium),
                priority,
                deadline_us,
                timeout_us: 1_000_000,
            },
            admitted_us: 0,
            attempts: 0,
        }
    }

    fn tiny() -> AdmissionQueue {
        AdmissionQueue::new(QueueConfig {
            per_class_cap: [1, 1, 1],
        })
    }

    #[test]
    fn admits_until_full_then_refuses() {
        let mut q = tiny();
        assert_eq!(q.offer(job(0, Priority::Batch, 100)), Admission::Admitted);
        match q.offer(job(1, Priority::Batch, 100)) {
            Admission::Refused(j) => assert_eq!(j.spec.id, 1),
            other => panic!("expected refusal, got {other:?}"),
        }
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn higher_priority_displaces_newest_lowest() {
        let mut q = tiny();
        q.offer(job(0, Priority::Interactive, 100));
        q.offer(job(1, Priority::Batch, 100));
        // Interactive queue full; batch job 1 is the victim.
        match q.offer(job(2, Priority::Interactive, 100)) {
            Admission::AdmittedDisplacing(v) => assert_eq!(v.spec.id, 1),
            other => panic!("expected displacement, got {other:?}"),
        }
        assert_eq!(q.depth(Priority::Interactive), 2);
        assert_eq!(q.depth(Priority::Batch), 0);
    }

    #[test]
    fn rung_table_makes_displacement_rung_ordered() {
        let mut q = AdmissionQueue::new(QueueConfig {
            per_class_cap: [1, 1, 4],
        });
        // Unit rungs by job id: 0→mid, 1→hi, 2→lo, 3→hi.
        q.set_rung_table(vec![1, 0, 2, 0]);
        for id in 0..4 {
            assert_eq!(q.offer(job(id, Priority::Batch, 100)), Admission::Admitted);
        }
        q.offer(job(10, Priority::Interactive, 100));
        let displace =
            |q: &mut AdmissionQueue, id: u64| match q.offer(job(id, Priority::Interactive, 100)) {
                Admission::AdmittedDisplacing(v) => v.spec.id,
                other => panic!("expected displacement, got {other:?}"),
            };
        // hi-rung units go first (newest hi first), then mid, then lo —
        // NOT the plain newest-first order (which would start with 3, 2).
        assert_eq!(displace(&mut q, 11), 3, "newest hi unit first");
        assert_eq!(displace(&mut q, 12), 1, "older hi unit next");
        assert_eq!(displace(&mut q, 13), 0, "mid before lo");
        assert_eq!(displace(&mut q, 14), 2, "lo last");
    }

    #[test]
    fn equal_priority_is_never_displaced() {
        let mut q = tiny();
        q.offer(job(0, Priority::Standard, 100));
        match q.offer(job(1, Priority::Standard, 100)) {
            Admission::Refused(j) => assert_eq!(j.spec.id, 1),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn drop_expired_removes_only_past_deadline() {
        let mut q = AdmissionQueue::new(QueueConfig::default());
        q.offer(job(0, Priority::Standard, 50));
        q.offer(job(1, Priority::Standard, 150));
        let dropped = q.drop_expired(100);
        assert_eq!(dropped.len(), 1);
        assert_eq!(dropped[0].spec.id, 0);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn candidates_are_priority_then_edf_ordered() {
        let mut q = AdmissionQueue::new(QueueConfig::default());
        q.offer(job(0, Priority::Batch, 10));
        q.offer(job(1, Priority::Interactive, 500));
        q.offer(job(2, Priority::Standard, 50));
        q.offer(job(3, Priority::Standard, 20));
        let ids: Vec<u64> = q.candidates(10).iter().map(|j| j.spec.id).collect();
        assert_eq!(ids, vec![1, 3, 2, 0]);
        let ids: Vec<u64> = q.candidates(2).iter().map(|j| j.spec.id).collect();
        assert_eq!(ids, vec![1, 3]);
    }

    #[test]
    fn offer_front_jumps_the_class_line() {
        let mut q = AdmissionQueue::new(QueueConfig::default());
        q.offer(job(0, Priority::Standard, 100));
        q.offer_front(job(1, Priority::Standard, 100));
        // Same deadline: candidates tie-break by id, so check raw order via
        // displacement instead — the *newest* of the class is popped last.
        let ids: Vec<u64> = q.drain_all().iter().map(|j| j.spec.id).collect();
        assert_eq!(ids, vec![1, 0], "front-offered job sits at the head");
    }

    #[test]
    fn offer_front_respects_capacity_and_displacement() {
        let mut q = tiny();
        q.offer(job(0, Priority::Interactive, 100));
        q.offer(job(1, Priority::Batch, 100));
        match q.offer_front(job(2, Priority::Interactive, 100)) {
            Admission::AdmittedDisplacing(v) => assert_eq!(v.spec.id, 1),
            other => panic!("expected displacement, got {other:?}"),
        }
        // Batch is the lowest class: once its slot refills, a further
        // batch offer_front has nothing to displace and is refused.
        assert_eq!(
            q.offer_front(job(3, Priority::Batch, 100)),
            Admission::Admitted
        );
        match q.offer_front(job(4, Priority::Batch, 100)) {
            Admission::Refused(j) => assert_eq!(j.spec.id, 4),
            other => panic!("expected refusal, got {other:?}"),
        }
    }

    #[test]
    fn drain_all_empties_every_class() {
        let mut q = AdmissionQueue::new(QueueConfig::default());
        q.offer(job(0, Priority::Batch, 100));
        q.offer(job(1, Priority::Interactive, 100));
        q.offer(job(2, Priority::Standard, 100));
        let drained = q.drain_all();
        assert_eq!(drained.len(), 3);
        assert!(q.is_empty());
        // Class order: interactive first.
        assert_eq!(drained[0].spec.id, 1);
    }

    #[test]
    fn take_removes_by_id() {
        let mut q = AdmissionQueue::new(QueueConfig::default());
        q.offer(job(7, Priority::Batch, 100));
        assert!(q.take(8).is_none());
        assert_eq!(q.take(7).unwrap().spec.id, 7);
        assert!(q.is_empty());
    }
}
