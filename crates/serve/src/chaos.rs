//! Chaos wiring for the serving layer: one config that both engines obey.
//!
//! [`ChaosConfig`] bundles the failure script ([`FaultPlan`]), the failure
//! detector tuning, the hedging trigger and the graceful-degradation ladder
//! into a field of [`crate::service::ServeConfig`]. The default is fully
//! disabled — an un-faulted run behaves (and renders) exactly as before —
//! and because the config is plain data, a faulted simulation remains a
//! pure function of `(workload, fleet, policy, config, seed)`.

use serde::{Deserialize, Serialize};

pub use vtx_chaos::{
    DegradeConfig, DetectorConfig, FailureDetector, FaultCounts, FaultKind, FaultPlan, Health,
};

/// Fault-injection and recovery configuration for a serving run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChaosConfig {
    /// The failure script (default: no faults).
    pub plan: FaultPlan,
    /// Heartbeat failure-detector tuning.
    pub detector: DetectorConfig,
    /// Hedged re-dispatch trigger for the interactive class: once an
    /// in-flight interactive job has burned this fraction of its deadline
    /// budget, a duplicate is dispatched to the best idle server and the
    /// first completion wins. `>= 1.0` disables hedging.
    pub hedge_after: f64,
    /// Graceful-degradation ladder (disabled by default).
    pub degrade: DegradeConfig,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            plan: FaultPlan::default(),
            detector: DetectorConfig::default(),
            hedge_after: 1.0,
            degrade: DegradeConfig::default(),
        }
    }
}

/// The instant a hedge for a job becomes due, or `None` when hedging is
/// disabled (`hedge_after >= 1.0`, or not a meaningful fraction).
///
/// The fraction is quantized to milli-units and applied in integer
/// arithmetic (`u128` intermediate), so the result is exact for any budget
/// up to `u64::MAX`. The old `(budget as f64 * hedge_after) as u64` path
/// lost precision above 2^53 µs and rounded `u64::MAX`-sized budgets *up*
/// through the f64 representation of the budget itself.
pub fn hedge_due_us(arrival_us: u64, deadline_us: u64, hedge_after: f64) -> Option<u64> {
    let milli = (hedge_after * 1000.0).round();
    // NaN fails both comparisons and disables hedging.
    if !(0.0..1000.0).contains(&milli) {
        return None;
    }
    let milli = milli as u128;
    let budget = deadline_us.saturating_sub(arrival_us) as u128;
    let slice = (budget * milli / 1000) as u64;
    Some(arrival_us.saturating_add(slice))
}

impl ChaosConfig {
    /// Whether any chaos machinery is active.
    pub fn enabled(&self) -> bool {
        !self.plan.is_empty() || self.hedge_after < 1.0 || self.degrade.enabled
    }

    /// The acceptance scenario of the fault-tolerance study: kill 2 of the
    /// fleet's servers at 30% of `horizon_us` and make one more server a
    /// 3× fail-slow straggler for the whole run. Victims are drawn from
    /// the seed so different seeds stress different servers; the plan is a
    /// pure function of `(seed, servers, horizon_us)`.
    ///
    /// # Panics
    ///
    /// Panics if `servers < 3` (the scenario needs 2 crash victims and a
    /// disjoint straggler).
    pub fn kill_two_straggle_one(seed: u64, servers: usize, horizon_us: u64) -> Self {
        assert!(servers >= 3, "scenario needs at least 3 servers");
        let mut rng = vtx_chaos::rng::SplitMix64::new(vtx_chaos::rng::derive(seed, 0xFA17));
        let a = rng.next_range(servers as u64) as usize;
        let mut b = rng.next_range(servers as u64) as usize;
        while b == a {
            b = (b + 1) % servers;
        }
        let mut s = rng.next_range(servers as u64) as usize;
        while s == a || s == b {
            s = (s + 1) % servers;
        }
        let crash_at = (horizon_us as f64 * 0.3) as u64;
        let plan = FaultPlan::none(servers)
            .with_crash(a, crash_at)
            .expect("index in range")
            .with_crash(b, crash_at)
            .expect("index in range")
            .with_slowdown(s, 0, u64::MAX / 2, 3.0)
            .expect("index in range");
        ChaosConfig {
            plan,
            ..ChaosConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_fully_disabled() {
        let c = ChaosConfig::default();
        assert!(!c.enabled());
        assert!(c.plan.is_empty());
    }

    #[test]
    fn any_knob_enables() {
        let c = ChaosConfig {
            hedge_after: 0.5,
            ..ChaosConfig::default()
        };
        assert!(c.enabled());
        let c = ChaosConfig {
            degrade: DegradeConfig {
                enabled: true,
                ..DegradeConfig::default()
            },
            ..ChaosConfig::default()
        };
        assert!(c.enabled());
        let c = ChaosConfig {
            plan: FaultPlan::none(3).with_crash(0, 5).unwrap(),
            ..ChaosConfig::default()
        };
        assert!(c.enabled());
    }

    #[test]
    fn hedge_due_is_exact_at_the_extremes() {
        // Full-range budget: exact floor division, no f64 rounding. The old
        // float path returned 2^63 here (one above the true floor).
        assert_eq!(hedge_due_us(0, u64::MAX, 0.5), Some(u64::MAX / 2));
        // hedge_after = 0.0 arms at arrival (caller's `due > now` gate
        // keeps it from firing retroactively).
        assert_eq!(hedge_due_us(100, 1_000, 0.0), Some(100));
        // >= 1.0 disables, as do NaN and negatives.
        assert_eq!(hedge_due_us(100, 1_000, 1.0), None);
        assert_eq!(hedge_due_us(100, 1_000, 1.5), None);
        assert_eq!(hedge_due_us(100, 1_000, f64::NAN), None);
        assert_eq!(hedge_due_us(100, 1_000, -0.5), None);
        // Saturating add near the top of the clock.
        assert_eq!(
            hedge_due_us(u64::MAX - 10, u64::MAX, 0.9),
            Some(u64::MAX - 1)
        );
        // Ordinary case: 30% of a 1 s budget.
        assert_eq!(hedge_due_us(2_000_000, 3_000_000, 0.3), Some(2_300_000));
    }

    #[test]
    fn acceptance_scenario_kills_two_and_straggles_one() {
        let c = ChaosConfig::kill_two_straggle_one(42, 8, 1_000_000);
        let counts = c.plan.counts();
        assert_eq!(counts.crashes, 2);
        assert_eq!(counts.slowdowns, 1);
        // Crash victims and the straggler are disjoint servers.
        let crashed: Vec<usize> = (0..8).filter(|&s| c.plan.crash_us(s).is_some()).collect();
        assert_eq!(crashed.len(), 2);
        for s in 0..8 {
            let sf = c.plan.server(s);
            if !sf.slowdowns.is_empty() {
                assert!(sf.crash_us.is_none(), "straggler must not also crash");
                assert!((sf.slowdowns[0].factor - 3.0).abs() < 1e-12);
            }
        }
        for &s in &crashed {
            assert_eq!(c.plan.crash_us(s), Some(300_000));
        }
        // Seed-deterministic.
        assert_eq!(c, ChaosConfig::kill_two_straggle_one(42, 8, 1_000_000));
        assert_ne!(
            c.plan,
            ChaosConfig::kill_two_straggle_one(7, 8, 1_000_000).plan
        );
    }
}
