//! Serving reports: exact tail-latency statistics and a byte-deterministic
//! text rendering.
//!
//! Fig 9 of the paper compares schedulers on *makespan*; a serving system is
//! judged on the distribution of per-job sojourn time (arrival → completion)
//! and on what it sheds. Quantiles here are exact over the collected
//! samples (rank = ⌈q·n⌉), not histogram-bucketed, so two runs with the same
//! seed render identical bytes.

use serde::{Deserialize, Serialize};

use crate::workload::Priority;

/// Exact order statistics of a latency sample set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencyStats {
    /// Number of samples.
    pub count: u64,
    /// Mean (µs, rounded).
    pub mean_us: u64,
    /// Minimum (µs).
    pub min_us: u64,
    /// Exact p50 (µs).
    pub p50_us: u64,
    /// Exact p90 (µs).
    pub p90_us: u64,
    /// Exact p99 (µs).
    pub p99_us: u64,
    /// Maximum (µs).
    pub max_us: u64,
}

impl LatencyStats {
    /// Computes stats from unsorted samples.
    ///
    /// # Empty input
    ///
    /// An empty slice yields the all-zero stats block (`count == 0`,
    /// every quantile 0) rather than a panic or sentinel — the same
    /// contract as `vtx_telemetry::metrics::Histogram::quantile` and
    /// `vtx_obs::QuantileSketch::quantile_permille`. Renderers and the
    /// bench trajectory rely on this: a class that served no jobs prints
    /// a zero row and stays byte-deterministic.
    pub fn from_samples(samples: &[u64]) -> Self {
        if samples.is_empty() {
            return LatencyStats {
                count: 0,
                mean_us: 0,
                min_us: 0,
                p50_us: 0,
                p90_us: 0,
                p99_us: 0,
                max_us: 0,
            };
        }
        let mut s = samples.to_vec();
        s.sort_unstable();
        let n = s.len();
        let sum: u128 = s.iter().map(|&v| u128::from(v)).sum();
        let q = |q: f64| -> u64 {
            // Nearest-rank: smallest value with cumulative share >= q.
            let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
            s[rank - 1]
        };
        LatencyStats {
            count: n as u64,
            mean_us: (sum / n as u128) as u64,
            min_us: s[0],
            p50_us: q(0.50),
            p90_us: q(0.90),
            p99_us: q(0.99),
            max_us: s[n - 1],
        }
    }
}

/// Per-server accounting.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServerStats {
    /// Server name.
    pub name: String,
    /// Jobs completed on this server.
    pub jobs: u64,
    /// Busy time (µs).
    pub busy_us: u64,
    /// Busy fraction of the run's makespan (0..=1).
    pub utilization: f64,
}

/// What the chaos layer injected and what recovery did about it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultAccounting {
    /// Fail-stop crashes scheduled by the plan.
    pub crashes: u64,
    /// Fail-slow slowdown windows scheduled by the plan.
    pub slowdowns: u64,
    /// Transient stalls scheduled by the plan.
    pub stalls: u64,
    /// In-flight jobs requeued off servers declared down.
    pub requeued: u64,
    /// Hedged duplicate dispatches launched.
    pub hedges_launched: u64,
    /// Hedges that finished first (the duplicate won).
    pub hedges_won: u64,
    /// Hedge copies whose work was discarded (the other copy won or both
    /// attempts timed out).
    pub hedges_wasted: u64,
    /// Dispatches whose preset the degradation ladder stepped down.
    pub degraded_jobs: u64,
    /// Highest ladder level reached during the run.
    pub peak_degrade_level: u8,
}

/// Segment-granular accounting for a run whose dispatch units are
/// per-(segment, rung) pieces of catalog jobs (see [`crate::segment`]).
/// `None` on whole-clip runs, so legacy reports render byte-identically.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SegmentStats {
    /// Catalog jobs the workload described.
    pub parents: u64,
    /// Parents whose manifest is assemblable: every (segment, rung) unit
    /// of the job completed.
    pub parents_complete: u64,
    /// Parents serving a *degraded* manifest: at least one rung finished
    /// every segment, but not all rungs did (see
    /// [`crate::segment::SegmentPlan::manifests_partial`]).
    #[serde(default)]
    pub parents_degraded: u64,
    /// Dispatch units offered (Σ segments × rungs over parents).
    pub units: u64,
    /// Units that completed.
    pub units_complete: u64,
    /// Per-rung `(name, units, completed)`, ladder order.
    pub per_rung: Vec<(String, u64, u64)>,
    /// Per-segment-index `(units, completed)`; index = position in clip.
    pub per_segment: Vec<(u64, u64)>,
}

/// Everything a serving run produces.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServingReport {
    /// Dispatch policy name.
    pub policy: String,
    /// Workload seed.
    pub seed: u64,
    /// Jobs offered by the load generator.
    pub offered: u64,
    /// Jobs completed (possibly after retry, possibly past deadline).
    pub completed: u64,
    /// Completions that finished after their deadline.
    pub slo_violations: u64,
    /// Jobs shed, by [`crate::queue::ShedReason`] order
    /// (queue_full, displaced, expired, retries_exhausted).
    pub shed: [u64; 4],
    /// Dispatch attempts beyond the first, summed over jobs.
    pub retries: u64,
    /// Last event timestamp (µs).
    pub makespan_us: u64,
    /// Completed jobs per second of makespan.
    pub throughput_jps: f64,
    /// Fraction of server-time the fleet was actually alive: 1.0 with no
    /// crashes; a server that dies at 30% of the run contributes 0.3.
    pub availability: f64,
    /// *Useful* completions (completed minus SLO violations) per second of
    /// makespan — throughput that counts only work the SLO got value from.
    pub goodput_jps: f64,
    /// Mean time-to-recovery: over every requeued in-flight job, the time
    /// from its (doomed) dispatch to its requeue off the dead server.
    /// Dominated by detection latency; 0 when nothing was ever lost.
    pub mttr_us: u64,
    /// Fault-injection and recovery accounting (all zero when no chaos).
    pub faults: FaultAccounting,
    /// Sojourn time (arrival → completion) over all completed jobs.
    pub sojourn: LatencyStats,
    /// Sojourn time per service class, [`Priority::ALL`] order.
    pub sojourn_by_class: [LatencyStats; 3],
    /// Per-server accounting, fleet order.
    pub servers: Vec<ServerStats>,
    /// Segment-granular accounting; `None` on whole-clip runs (the driver
    /// fills this in from the segment plan after the run).
    #[serde(default)]
    pub segments: Option<SegmentStats>,
    /// Segment-cache accounting; `None` when no cache was configured, so
    /// legacy reports render byte-identically.
    #[serde(default)]
    pub cache: Option<vtx_cache::CacheStats>,
    /// Shed counts by ladder rung index (0 = `hi`); empty when the run had
    /// no per-unit rung table ([`crate::service::ServeConfig::unit_rungs`]).
    #[serde(default)]
    pub shed_by_rung: Vec<u64>,
}

impl ServingReport {
    /// Total shed count.
    pub fn shed_total(&self) -> u64 {
        self.shed.iter().sum()
    }

    /// Shed fraction of offered load.
    pub fn shed_rate(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            self.shed_total() as f64 / self.offered as f64
        }
    }

    /// SLO-violation fraction of completed jobs.
    pub fn violation_rate(&self) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            self.slo_violations as f64 / self.completed as f64
        }
    }

    /// Renders the report as deterministic plain text (fixed field order,
    /// fixed float formatting — byte-identical across identical runs).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "serving report: policy={} seed={}\n",
            self.policy, self.seed
        ));
        out.push_str(&format!(
            "  offered={} completed={} violations={} retries={}\n",
            self.offered, self.completed, self.slo_violations, self.retries
        ));
        out.push_str(&format!(
            "  shed: total={} queue_full={} displaced={} expired={} retries_exhausted={}\n",
            self.shed_total(),
            self.shed[0],
            self.shed[1],
            self.shed[2],
            self.shed[3]
        ));
        out.push_str(&format!(
            "  makespan_us={} throughput_jps={:.4} shed_rate={:.4} violation_rate={:.4}\n",
            self.makespan_us,
            self.throughput_jps,
            self.shed_rate(),
            self.violation_rate()
        ));
        out.push_str(&format!(
            "  availability={:.4} goodput_jps={:.4} mttr_us={}\n",
            self.availability, self.goodput_jps, self.mttr_us
        ));
        let f = &self.faults;
        out.push_str(&format!(
            "  faults: crashes={} slowdowns={} stalls={} requeued={} hedges={}/{}/{} degraded={} peak_level={}\n",
            f.crashes,
            f.slowdowns,
            f.stalls,
            f.requeued,
            f.hedges_launched,
            f.hedges_won,
            f.hedges_wasted,
            f.degraded_jobs,
            f.peak_degrade_level
        ));
        if let Some(c) = &self.cache {
            out.push_str(&format!(
                "  cache: hits={} misses={} hit_milli={} evictions={} inserted={} rejected={} occupancy={}/{} entries={}\n",
                c.hits,
                c.misses,
                c.hit_milli(),
                c.evictions,
                c.inserted,
                c.rejected,
                c.occupancy_bytes,
                c.capacity_bytes,
                c.entries
            ));
        }
        if !self.shed_by_rung.is_empty() {
            out.push_str("  shed_by_rung:");
            for (i, n) in self.shed_by_rung.iter().enumerate() {
                out.push_str(&format!(" r{i}={n}"));
            }
            out.push('\n');
        }
        if let Some(seg) = &self.segments {
            let degraded = if seg.parents_degraded > 0 {
                format!(" degraded={}", seg.parents_degraded)
            } else {
                String::new()
            };
            out.push_str(&format!(
                "  segments: parents={}/{} units={}/{}{}\n",
                seg.parents_complete, seg.parents, seg.units_complete, seg.units, degraded
            ));
            for (name, units, done) in &seg.per_rung {
                out.push_str(&format!(
                    "  rung {:<12} units={:<5} completed={}\n",
                    name, units, done
                ));
            }
            for (i, (units, done)) in seg.per_segment.iter().enumerate() {
                out.push_str(&format!(
                    "  seg  {:<12} units={:<5} completed={}\n",
                    i, units, done
                ));
            }
        }
        render_latency(&mut out, "sojourn(all)", &self.sojourn);
        for (p, stats) in Priority::ALL.iter().zip(self.sojourn_by_class.iter()) {
            render_latency(&mut out, p.name(), stats);
        }
        for s in &self.servers {
            out.push_str(&format!(
                "  server {:<12} jobs={:<4} busy_us={:<12} util={:.4}\n",
                s.name, s.jobs, s.busy_us, s.utilization
            ));
        }
        out
    }

    /// Renders the report without the per-server block: at XL fleet sizes
    /// (10k servers) the per-server lines dwarf everything else, and a
    /// fleet-wide utilization summary says more. Identical to [`render`]
    /// above that line, still fully deterministic.
    ///
    /// [`render`]: ServingReport::render
    pub fn render_compact(&self) -> String {
        let mut out = self.render();
        if let Some(pos) = out.find("  server ") {
            out.truncate(pos);
        }
        let (jobs, busy_us) = self
            .servers
            .iter()
            .fold((0u64, 0u64), |(j, b), s| (j + s.jobs, b + s.busy_us));
        let mean_util = if self.servers.is_empty() {
            0.0
        } else {
            self.servers.iter().map(|s| s.utilization).sum::<f64>() / self.servers.len() as f64
        };
        out.push_str(&format!(
            "  fleet: servers={} jobs={} busy_us={} mean_util={:.4}\n",
            self.servers.len(),
            jobs,
            busy_us,
            mean_util
        ));
        out
    }
}

fn render_latency(out: &mut String, label: &str, s: &LatencyStats) {
    out.push_str(&format!(
        "  {:<14} n={:<5} mean={:<10} p50={:<10} p90={:<10} p99={:<10} max={}\n",
        label, s.count, s.mean_us, s.p50_us, s.p90_us, s.p99_us, s.max_us
    ));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats_are_all_zero() {
        let s = LatencyStats::from_samples(&[]);
        assert_eq!(
            s,
            LatencyStats {
                count: 0,
                mean_us: 0,
                min_us: 0,
                p50_us: 0,
                p90_us: 0,
                p99_us: 0,
                max_us: 0,
            },
            "empty input must yield the all-zero block, field by field"
        );
    }

    #[test]
    fn empty_stats_render_without_panicking() {
        // A class that served nothing must still produce a stable line.
        let mut out = String::new();
        render_latency(&mut out, "empty", &LatencyStats::from_samples(&[]));
        assert!(out.contains("n=0"));
        assert!(out.contains("p99=0"));
        let mut again = String::new();
        render_latency(&mut again, "empty", &LatencyStats::from_samples(&[]));
        assert_eq!(out, again);
    }

    #[test]
    fn single_sample_dominates() {
        let s = LatencyStats::from_samples(&[77]);
        assert_eq!(
            (s.min_us, s.p50_us, s.p90_us, s.p99_us, s.max_us),
            (77, 77, 77, 77, 77)
        );
    }

    #[test]
    fn quantiles_use_nearest_rank() {
        let samples: Vec<u64> = (1..=100).collect();
        let s = LatencyStats::from_samples(&samples);
        assert_eq!(s.p50_us, 50);
        assert_eq!(s.p90_us, 90);
        assert_eq!(s.p99_us, 99);
        assert_eq!(s.min_us, 1);
        assert_eq!(s.max_us, 100);
        assert_eq!(s.mean_us, 50); // 50.5 truncated
    }

    #[test]
    fn order_does_not_matter() {
        let a = LatencyStats::from_samples(&[5, 1, 9, 3]);
        let b = LatencyStats::from_samples(&[9, 3, 5, 1]);
        assert_eq!(a, b);
    }

    fn dummy_report() -> ServingReport {
        ServingReport {
            policy: "smart".into(),
            seed: 42,
            offered: 10,
            completed: 8,
            slo_violations: 1,
            shed: [1, 0, 1, 0],
            retries: 2,
            makespan_us: 2_000_000,
            throughput_jps: 4.0,
            availability: 0.875,
            goodput_jps: 3.5,
            mttr_us: 500_000,
            faults: FaultAccounting {
                crashes: 1,
                requeued: 2,
                ..FaultAccounting::default()
            },
            sojourn: LatencyStats::from_samples(&[100, 200, 300]),
            sojourn_by_class: [
                LatencyStats::from_samples(&[100]),
                LatencyStats::from_samples(&[200]),
                LatencyStats::from_samples(&[300]),
            ],
            servers: vec![ServerStats {
                name: "baseline-0".into(),
                jobs: 8,
                busy_us: 1_500_000,
                utilization: 0.75,
            }],
            segments: None,
            cache: None,
            shed_by_rung: Vec::new(),
        }
    }

    #[test]
    fn cache_and_rung_lines_render_only_when_present() {
        let base = dummy_report().render();
        assert!(!base.contains("cache:"));
        assert!(!base.contains("shed_by_rung"));
        let mut r = dummy_report();
        r.cache = Some(vtx_cache::CacheStats {
            hits: 3,
            misses: 1,
            ..Default::default()
        });
        r.shed_by_rung = vec![2, 0, 1];
        let text = r.render();
        assert!(text.contains("cache: hits=3 misses=1 hit_milli=750"));
        assert!(text.contains("shed_by_rung: r0=2 r1=0 r2=1"));
    }

    #[test]
    fn rates_handle_zero_denominators() {
        let mut r = dummy_report();
        r.offered = 0;
        r.completed = 0;
        assert_eq!(r.shed_rate(), 0.0);
        assert_eq!(r.violation_rate(), 0.0);
    }

    #[test]
    fn render_is_deterministic_and_complete() {
        let r = dummy_report();
        assert_eq!(r.render(), r.render());
        let text = r.render();
        assert!(text.contains("policy=smart"));
        assert!(text.contains("queue_full=1"));
        assert!(text.contains("interactive"));
        assert!(text.contains("server baseline-0"));
        assert!(text.contains("shed_rate=0.2000"));
        assert!(text.contains("availability=0.8750"));
        assert!(text.contains("goodput_jps=3.5000"));
        assert!(text.contains("mttr_us=500000"));
        assert!(text.contains("faults: crashes=1"));
        assert!(text.contains("requeued=2"));
    }
}
