//! The shared service core: admission, dispatch, and accounting.
//!
//! Both drivers — the discrete-event fleet engine ([`crate::sim`]) and the
//! real threaded executor ([`crate::exec`]) — own a [`ServiceCore`] and call
//! the same four entry points (`offer`, `dispatch`, `complete`, `timeout`).
//! The core holds the queue, the policy, the event log and all counters;
//! the drivers only decide *when* those entry points fire and what a
//! completed job costs. That split is what makes the simulated and real
//! paths comparable: a policy bug or queueing bug shows up identically in
//! both.

use serde::{Deserialize, Serialize};

use vtx_cache::{CacheKey, CacheSpec, SegmentCache};
use vtx_chaos::degrade::{downgrade, DegradeLadder};
use vtx_chaos::{Cause, FaultKind, Health};
use vtx_obs::{AlertTransition, ObsConfig, ObsPlane};
use vtx_telemetry::chaos as chaos_metrics;
use vtx_telemetry::metrics;

use crate::cells::IdleIndex;
use crate::chaos::ChaosConfig;
use crate::cost::CostModel;
use crate::fleet::{Fleet, ServerSpec};
use crate::policy::{DispatchCtx, DispatchPolicy};
use crate::queue::{Admission, AdmissionQueue, PendingJob, QueueConfig, ShedReason};
use crate::report::{FaultAccounting, LatencyStats, ServerStats, ServingReport};
use crate::workload::{JobSpec, Priority};

/// Service-layer tuning knobs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeConfig {
    /// Admission-queue sizing.
    pub queue: QueueConfig,
    /// Dispatch attempts allowed after a timeout (0 = fail on first).
    pub max_retries: u32,
    /// How many queued candidates the policy sees per dispatch round.
    pub candidate_window: usize,
    /// Whether to keep the full event log (reports always work).
    pub collect_event_log: bool,
    /// Fault injection and recovery (default: fully disabled — an
    /// un-faulted run behaves and renders exactly as before).
    pub chaos: ChaosConfig,
    /// Observability plane: per-job tracing, windowed quantiles and SLO
    /// burn-rate alerting (enabled by default; alerting only changes the
    /// event stream when an SLO actually burns).
    pub obs: ObsConfig,
    /// Cell count for XL two-level dispatch (0 = auto-size at
    /// [`crate::cells::DEFAULT_CELL_SIZE`] servers per cell). Only read by
    /// the simulator's XL fast path; small fleets ignore it.
    #[serde(default)]
    pub cells: usize,
    /// Per-unit `(frames, total_frames)` when jobs are per-(segment, rung)
    /// dispatch units (see [`crate::segment`]), indexed by dense job id.
    /// Scales true service time by the unit's share of the clip. Empty =
    /// whole-clip jobs; service times are untouched.
    #[serde(default)]
    pub unit_frames: Vec<(u32, u32)>,
    /// Popularity-aware segment cache (`None` = caching disabled; the
    /// legacy path is byte-identical). When set, both drivers consult the
    /// cache at dispatch time: a hit skips the transcode entirely and
    /// bills only the cache's lookup cost.
    #[serde(default)]
    pub cache: Option<CacheSpec>,
    /// Per-unit ladder rung indexed by dense job id (0 = highest rung).
    /// Feeds rung-ordered displacement ([`AdmissionQueue::set_rung_table`])
    /// and per-rung shed accounting. Empty = whole-clip jobs.
    #[serde(default)]
    pub unit_rungs: Vec<u8>,
    /// Per-unit segment index within the parent clip, indexed by dense job
    /// id. Empty = whole-clip jobs (cache keys use segment 0).
    #[serde(default)]
    pub unit_segs: Vec<u32>,
    /// Per-unit muxed artifact size in bytes, indexed by dense job id.
    /// Sizes cache insertions; empty falls back to a bitrate-model
    /// estimate from the job's knobs.
    #[serde(default)]
    pub unit_bytes: Vec<u64>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            queue: QueueConfig::default(),
            max_retries: 1,
            candidate_window: 8,
            collect_event_log: true,
            chaos: ChaosConfig::default(),
            obs: ObsConfig::default(),
            cells: 0,
            unit_frames: Vec::new(),
            cache: None,
            unit_rungs: Vec::new(),
            unit_segs: Vec::new(),
            unit_bytes: Vec::new(),
        }
    }
}

/// Service-class names in [`Priority::index`] order, used by the
/// observability plane's renderers.
pub const CLASS_NAMES: [&str; 3] = ["interactive", "standard", "batch"];

/// One service-layer event, timestamped in microseconds.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum EventRecord {
    /// A job arrived from the load generator.
    Arrive {
        /// Timestamp (µs).
        t: u64,
        /// Job id.
        id: u64,
    },
    /// The queue admitted a job.
    Admit {
        /// Timestamp (µs).
        t: u64,
        /// Job id.
        id: u64,
        /// Service class.
        class: Priority,
    },
    /// A job was shed.
    Shed {
        /// Timestamp (µs).
        t: u64,
        /// Job id.
        id: u64,
        /// Why.
        reason: ShedReason,
    },
    /// The policy placed a job on a server.
    Dispatch {
        /// Timestamp (µs).
        t: u64,
        /// Job id.
        id: u64,
        /// Server index in the fleet.
        server: usize,
        /// 1-based dispatch attempt.
        attempt: u32,
    },
    /// A job finished on a server.
    Complete {
        /// Timestamp (µs).
        t: u64,
        /// Job id.
        id: u64,
        /// Server index in the fleet.
        server: usize,
        /// Arrival → completion time (µs).
        sojourn_us: u64,
        /// Whether it finished past its deadline.
        violation: bool,
    },
    /// A dispatch attempt hit the job's timeout.
    Timeout {
        /// Timestamp (µs).
        t: u64,
        /// Job id.
        id: u64,
        /// Server index in the fleet.
        server: usize,
        /// 1-based attempt that timed out.
        attempt: u32,
    },
    /// The fault plan injected a fault on a server.
    Fault {
        /// Timestamp (µs).
        t: u64,
        /// Server index in the fleet.
        server: usize,
        /// What kind of fault.
        kind: FaultKind,
    },
    /// The failure detector started suspecting a server.
    Suspect {
        /// Timestamp (µs).
        t: u64,
        /// Server index in the fleet.
        server: usize,
        /// Why the transition happened.
        cause: Cause,
    },
    /// The failure detector declared a server down.
    Down {
        /// Timestamp (µs).
        t: u64,
        /// Server index in the fleet.
        server: usize,
        /// Why the transition happened.
        cause: Cause,
    },
    /// An in-flight job was recovered off a server declared down.
    Requeue {
        /// Timestamp (µs).
        t: u64,
        /// Job id.
        id: u64,
        /// The dead server it was pulled from.
        server: usize,
        /// The (doomed) attempt it was on.
        attempt: u32,
    },
    /// A hedged duplicate dispatch was launched.
    Hedge {
        /// Timestamp (µs).
        t: u64,
        /// Job id.
        id: u64,
        /// Server the duplicate was placed on.
        server: usize,
    },
    /// The graceful-degradation ladder changed level.
    Degrade {
        /// Timestamp (µs).
        t: u64,
        /// New ladder level (0 = full quality).
        level: u8,
        /// Why the step was taken.
        cause: Cause,
    },
    /// A dispatch was satisfied from the segment cache (no transcode ran;
    /// only emitted when a [`CacheSpec`] is configured, so legacy logs are
    /// byte-identical).
    CacheHit {
        /// Timestamp (µs).
        t: u64,
        /// Job id.
        id: u64,
        /// Server that fronted the lookup.
        server: usize,
    },
    /// An SLO burn-rate alert changed state (see `vtx_obs::slo`).
    Alert {
        /// Timestamp (µs).
        t: u64,
        /// Service class the alert concerns.
        class: Priority,
        /// `true` = started firing, `false` = cleared.
        firing: bool,
        /// Fast-window burn rate, milli-multiples of the error budget.
        fast_burn_milli: u64,
        /// Slow-window burn rate, milli-multiples of the error budget.
        slow_burn_milli: u64,
    },
}

impl EventRecord {
    /// Event timestamp (µs).
    pub fn time_us(&self) -> u64 {
        match *self {
            EventRecord::Arrive { t, .. }
            | EventRecord::Admit { t, .. }
            | EventRecord::Shed { t, .. }
            | EventRecord::Dispatch { t, .. }
            | EventRecord::Complete { t, .. }
            | EventRecord::Timeout { t, .. }
            | EventRecord::Fault { t, .. }
            | EventRecord::Suspect { t, .. }
            | EventRecord::Down { t, .. }
            | EventRecord::Requeue { t, .. }
            | EventRecord::Hedge { t, .. }
            | EventRecord::Degrade { t, .. }
            | EventRecord::CacheHit { t, .. }
            | EventRecord::Alert { t, .. } => t,
        }
    }

    /// One deterministic log line (no trailing newline).
    pub fn render(&self) -> String {
        match self {
            EventRecord::Arrive { t, id } => format!("{t:>12} arrive   job={id}"),
            EventRecord::Admit { t, id, class } => {
                format!("{t:>12} admit    job={id} class={}", class.name())
            }
            EventRecord::Shed { t, id, reason } => {
                format!("{t:>12} shed     job={id} reason={}", reason.name())
            }
            EventRecord::Dispatch {
                t,
                id,
                server,
                attempt,
            } => format!("{t:>12} dispatch job={id} server={server} attempt={attempt}"),
            EventRecord::Complete {
                t,
                id,
                server,
                sojourn_us,
                violation,
            } => format!(
                "{t:>12} complete job={id} server={server} sojourn_us={sojourn_us} violation={violation}"
            ),
            EventRecord::Timeout {
                t,
                id,
                server,
                attempt,
            } => format!("{t:>12} timeout  job={id} server={server} attempt={attempt}"),
            EventRecord::Fault { t, server, kind } => {
                format!("{t:>12} fault    server={server} kind={}", kind.name())
            }
            EventRecord::Suspect { t, server, cause } => {
                format!("{t:>12} suspect  server={server} cause={}", cause.name())
            }
            EventRecord::Down { t, server, cause } => {
                format!("{t:>12} down     server={server} cause={}", cause.name())
            }
            EventRecord::Requeue {
                t,
                id,
                server,
                attempt,
            } => format!("{t:>12} requeue  job={id} server={server} attempt={attempt}"),
            EventRecord::Hedge { t, id, server } => {
                format!("{t:>12} hedge    job={id} server={server}")
            }
            EventRecord::Degrade { t, level, cause } => {
                format!("{t:>12} degrade  level={level} cause={}", cause.name())
            }
            EventRecord::CacheHit { t, id, server } => {
                format!("{t:>12} cachehit job={id} server={server}")
            }
            EventRecord::Alert {
                t,
                class,
                firing,
                fast_burn_milli,
                slow_burn_milli,
            } => {
                let state = if *firing { "FIRING" } else { "ok" };
                format!(
                    "{t:>12} alert    class={} state={state} fast_burn_milli={fast_burn_milli} slow_burn_milli={slow_burn_milli}",
                    class.name()
                )
            }
        }
    }
}

/// The state machine shared by both drivers.
#[derive(Debug)]
pub struct ServiceCore {
    cfg: ServeConfig,
    fleet: Fleet,
    model: CostModel,
    policy: Box<dyn DispatchPolicy>,
    queue: AdmissionQueue,
    log: Vec<EventRecord>,
    offered: u64,
    completed: u64,
    violations: u64,
    retries: u64,
    shed: [u64; 4],
    sojourns: Vec<u64>,
    sojourns_by_class: [Vec<u64>; 3],
    server_busy_us: Vec<u64>,
    server_jobs: Vec<u64>,
    /// `(job id, server index)` in dispatch order — the serving analog of a
    /// Fig 9 assignment vector, asserted on by the determinism tests.
    assignments: Vec<(u64, usize)>,
    /// Detector belief per server, fleet order (all `Up` without chaos).
    health: Vec<Health>,
    /// Monotone counter bumped on every Suspect / Down / Degrade
    /// transition. Policies key their cost caches on it: a stable epoch
    /// guarantees nothing a prediction depends on has changed.
    health_epoch: u64,
    /// Cached `Σ speed` over detected-up servers; recomputed only on
    /// health transitions (the sum is otherwise invariant, and at 10k
    /// servers re-deriving it per dispatch round dominates the round).
    up_capacity: f64,
    ladder: DegradeLadder,
    peak_degrade: u8,
    degraded_jobs: u64,
    requeued: u64,
    hedges_launched: u64,
    hedges_won: u64,
    hedges_wasted: u64,
    /// Per requeued job: dispatch-to-requeue span (µs); mean = MTTR.
    lost_spans: Vec<u64>,
    /// Observability plane fed by every entry point (see `vtx-obs`).
    obs: ObsPlane,
    /// Popularity-aware segment cache (`None` = disabled).
    cache: Option<SegmentCache>,
    /// Shed counts by ladder rung (index = rung, 0 = highest). Empty when
    /// no rung table is configured, so legacy reports are unchanged.
    shed_by_rung: Vec<u64>,
}

impl ServiceCore {
    /// Builds a core over a fleet, model and policy.
    pub fn new(
        cfg: ServeConfig,
        fleet: Fleet,
        model: CostModel,
        policy: Box<dyn DispatchPolicy>,
    ) -> Self {
        let n = fleet.len();
        // All servers start Up, so the initial capacity is the whole fleet.
        // The sum must be taken in fleet order every time it is recomputed
        // so the f64 value is bit-stable across paths.
        let up_capacity: f64 = fleet.servers().iter().map(|s| s.speed).sum();
        let mut queue = AdmissionQueue::new(cfg.queue.clone());
        if !cfg.unit_rungs.is_empty() {
            queue.set_rung_table(cfg.unit_rungs.clone());
        }
        let ladder = DegradeLadder::new(cfg.chaos.degrade);
        let obs = ObsPlane::new(cfg.obs.clone(), Priority::ALL.len());
        let cache = cfg.cache.clone().map(SegmentCache::new);
        let shed_by_rung = match cfg.unit_rungs.iter().max() {
            Some(&top) => vec![0; usize::from(top) + 1],
            None => Vec::new(),
        };
        ServiceCore {
            cfg,
            fleet,
            model,
            policy,
            queue,
            log: Vec::new(),
            offered: 0,
            completed: 0,
            violations: 0,
            retries: 0,
            shed: [0; 4],
            sojourns: Vec::new(),
            sojourns_by_class: [Vec::new(), Vec::new(), Vec::new()],
            server_busy_us: vec![0; n],
            server_jobs: vec![0; n],
            assignments: Vec::new(),
            health: vec![Health::Up; n],
            health_epoch: 0,
            up_capacity,
            ladder,
            peak_degrade: 0,
            degraded_jobs: 0,
            requeued: 0,
            hedges_launched: 0,
            hedges_won: 0,
            hedges_wasted: 0,
            lost_spans: Vec::new(),
            obs,
            cache,
            shed_by_rung,
        }
    }

    /// The observability plane (read-only; entry points feed it).
    pub fn obs(&self) -> &ObsPlane {
        &self.obs
    }

    /// Folds a burn-rate transition into the event log as an `Alert`.
    fn record_alert(&mut self, tr: AlertTransition) {
        metrics::counter("serve/alert_transitions").add(1);
        self.record(EventRecord::Alert {
            t: tr.t_us,
            class: Priority::ALL[tr.class.min(Priority::ALL.len() - 1)],
            firing: tr.firing,
            fast_burn_milli: tr.fast_burn_milli,
            slow_burn_milli: tr.slow_burn_milli,
        });
    }

    /// The fleet this core serves.
    pub fn fleet(&self) -> &Fleet {
        &self.fleet
    }

    /// The cost model (drivers bill truth from it).
    pub fn model(&self) -> &CostModel {
        &self.model
    }

    /// True service time for a job, scaled to the unit's share of its
    /// parent clip when segment-granular dispatch is active. A unit
    /// covering `frames` of a `total`-frame clip costs that fraction of
    /// the whole-clip time (never rounded below 1 µs); with no segment
    /// plan this is exactly [`CostModel::true_us`].
    pub fn true_service_us(&self, spec: &JobSpec, server_idx: usize, server: &ServerSpec) -> u64 {
        let t = self.model.true_us(spec, server_idx, server);
        match self.cfg.unit_frames.get(spec.id as usize) {
            Some(&(frames, total)) if total > 0 => {
                let scaled = u128::from(t) * u128::from(frames) / u128::from(total);
                (scaled as u64).max(1)
            }
            _ => t,
        }
    }

    /// Whether a segment cache is configured.
    pub fn cache_enabled(&self) -> bool {
        self.cache.is_some()
    }

    /// Cache key for a dispatch unit: the knobs that determine the encoded
    /// bytes, plus the unit's rung and segment from the config tables
    /// (whole-clip jobs key as rung 0, segment 0).
    fn cache_key(&self, spec: &JobSpec) -> CacheKey {
        let id = spec.id as usize;
        CacheKey {
            video: spec.task.video.clone(),
            preset: spec.task.preset.name().to_owned(),
            crf: spec.task.crf,
            refs: u32::from(spec.task.refs),
            rung: self.cfg.unit_rungs.get(id).copied().map_or(0, u32::from),
            seg: self.cfg.unit_segs.get(id).copied().unwrap_or(0),
        }
    }

    /// Consults the segment cache for a just-dispatched job. On a hit the
    /// transcode is skipped entirely: the driver bills only the returned
    /// lookup cost as service time. Returns `None` on a miss or with the
    /// cache disabled (misses are counted; disabled is free).
    pub fn cache_lookup(&mut self, job: &PendingJob, server: usize, now_us: u64) -> Option<u64> {
        self.cache.as_ref()?;
        let key = self.cache_key(&job.spec);
        let cache = self.cache.as_mut().expect("checked above");
        if cache.lookup(&key) {
            let lookup_us = cache.lookup_us();
            metrics::counter("serve/cache_hits").add(1);
            self.record(EventRecord::CacheHit {
                t: now_us,
                id: job.spec.id,
                server,
            });
            Some(lookup_us)
        } else {
            metrics::counter("serve/cache_misses").add(1);
            None
        }
    }

    /// Populates the cache after a job completed off the transcode path
    /// (never after a cache hit). `bytes_override` carries real encoder
    /// output when the driver has it; otherwise the unit-bytes table or a
    /// knob-based estimate sizes the entry. The entry's recompute cost is
    /// the port-refined prediction scaled to the unit's share of the clip,
    /// which is what the GDSF policy protects.
    pub fn cache_insert(
        &mut self,
        job: &PendingJob,
        server_idx: usize,
        bytes_override: Option<u64>,
    ) {
        if self.cache.is_none() {
            return;
        }
        let key = self.cache_key(&job.spec);
        let id = job.spec.id as usize;
        let bytes = bytes_override
            .or_else(|| self.cfg.unit_bytes.get(id).copied())
            .unwrap_or_else(|| 1_048_576 / (u64::from(job.spec.task.crf) + 4));
        let server = &self.fleet.servers()[server_idx];
        let full_cost = self.model.port_predicted_us(&job.spec, server);
        let cost_us = match self.cfg.unit_frames.get(id) {
            Some(&(frames, total)) if total > 0 => {
                let scaled = u128::from(full_cost) * u128::from(frames) / u128::from(total);
                (scaled as u64).max(1)
            }
            _ => full_cost,
        };
        let cache = self.cache.as_mut().expect("checked above");
        cache.insert(key, bytes, cost_us);
        let stats = cache.stats();
        metrics::gauge("serve/cache_occupancy_bytes").set(stats.occupancy_bytes as f64);
        metrics::gauge("serve/cache_entries").set(stats.entries as f64);
    }

    /// The policy's report name.
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }

    /// Jobs currently queued.
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// The chaos configuration (drivers read the plan and detector from it).
    pub fn chaos(&self) -> &ChaosConfig {
        &self.cfg.chaos
    }

    /// Detector belief per server, fleet order.
    pub fn health(&self) -> &[Health] {
        &self.health
    }

    fn publish_health(&self) {
        let up = self.health.iter().filter(|&&h| h == Health::Up).count();
        chaos_metrics::publish_detector(up);
    }

    /// Books a health transition: bumps the cache epoch and re-derives the
    /// detected-up capacity in fleet order (bit-stable f64 sum).
    fn on_health_transition(&mut self) {
        self.health_epoch += 1;
        self.up_capacity = self
            .health
            .iter()
            .zip(self.fleet.servers())
            .filter(|(&h, _)| h == Health::Up)
            .map(|(_, s)| s.speed)
            .sum();
    }

    /// Marks a server suspected (no-op unless it is currently `Up`).
    pub fn mark_suspected(&mut self, server: usize, now_us: u64) {
        if self.health[server] == Health::Up {
            self.health[server] = Health::Suspected;
            self.on_health_transition();
            self.record(EventRecord::Suspect {
                t: now_us,
                server,
                cause: Cause::HeartbeatMiss,
            });
            self.publish_health();
        }
    }

    /// Marks a server down (no-op if already down).
    pub fn mark_down(&mut self, server: usize, now_us: u64) {
        if self.health[server] != Health::Down {
            self.health[server] = Health::Down;
            self.on_health_transition();
            self.record(EventRecord::Down {
                t: now_us,
                server,
                cause: Cause::HeartbeatMiss,
            });
            self.publish_health();
        }
    }

    /// Books one injected fault (the driver calls this when a planned fault
    /// actually fires).
    pub fn record_fault(&mut self, server: usize, kind: FaultKind, now_us: u64) {
        chaos_metrics::faults_injected().add(1);
        if kind == FaultKind::Crash {
            chaos_metrics::crashes().add(1);
        }
        self.record(EventRecord::Fault {
            t: now_us,
            server,
            kind,
        });
    }

    /// Recovers an in-flight job off a server declared down: the attempt is
    /// charged against the retry budget (the work is lost) but the dead
    /// server is *not* billed busy time for it. The job rejoins the front
    /// of its class queue if budget and deadline allow.
    pub fn fail(&mut self, job: PendingJob, server: usize, started_us: u64, now_us: u64) {
        self.requeued += 1;
        self.lost_spans.push(now_us.saturating_sub(started_us));
        chaos_metrics::requeues().add(1);
        self.obs.on_requeue(now_us, job.spec.id, server);
        self.record(EventRecord::Requeue {
            t: now_us,
            id: job.spec.id,
            server,
            attempt: job.attempts,
        });
        if job.attempts > self.cfg.max_retries {
            self.shed_job(&job, ShedReason::RetriesExhausted, now_us);
            return;
        }
        if job.spec.deadline_us <= now_us {
            self.shed_job(&job, ShedReason::Expired, now_us);
            return;
        }
        match self.queue.offer_front(job) {
            Admission::Admitted => {}
            Admission::AdmittedDisplacing(victim) => {
                self.shed_job(&victim, ShedReason::Displaced, now_us);
            }
            Admission::Refused(job) => {
                self.shed_job(&job, ShedReason::QueueFull, now_us);
            }
        }
    }

    /// Books a hedged duplicate dispatch (the driver schedules the copy).
    pub fn hedge_dispatch(&mut self, job: &PendingJob, server: usize, now_us: u64) {
        self.hedges_launched += 1;
        chaos_metrics::hedges().add(1);
        self.obs.on_hedge(now_us, job.spec.id, server);
        self.record(EventRecord::Hedge {
            t: now_us,
            id: job.spec.id,
            server,
        });
        self.assignments.push((job.spec.id, server));
    }

    /// Books a hedge copy of job `id` whose work was discarded (the other
    /// copy won, or both attempts timed out). The server still did the
    /// work, so it is billed busy time.
    pub fn hedge_discard(&mut self, id: u64, server: usize, started_us: u64, now_us: u64) {
        self.server_busy_us[server] += now_us.saturating_sub(started_us);
        self.hedges_wasted += 1;
        self.obs.on_hedge_discard(now_us, id, server);
    }

    /// Books a completion that was won by the hedge copy, not the original.
    pub fn note_hedge_won(&mut self) {
        self.hedges_won += 1;
    }

    /// Sheds everything still queued. Called by drivers when the whole
    /// fleet is down and nothing can ever be served again, so every
    /// admitted job still reaches a terminal state.
    pub fn shed_stranded(&mut self, now_us: u64) {
        for job in self.queue.drain_all() {
            self.shed_job(&job, ShedReason::Expired, now_us);
        }
    }

    fn record(&mut self, ev: EventRecord) {
        if self.cfg.collect_event_log {
            self.log.push(ev);
        }
    }

    fn shed_job(&mut self, job: &PendingJob, reason: ShedReason, now_us: u64) {
        self.shed[reason as usize] += 1;
        metrics::counter("serve/shed").add(1);
        if !self.shed_by_rung.is_empty() {
            let rung = self
                .cfg
                .unit_rungs
                .get(job.spec.id as usize)
                .copied()
                .unwrap_or(0);
            let slot = usize::from(rung).min(self.shed_by_rung.len() - 1);
            self.shed_by_rung[slot] += 1;
        }
        let alert = self.obs.on_shed(
            now_us,
            job.spec.id,
            job.spec.priority.index(),
            reason.name(),
        );
        self.record(EventRecord::Shed {
            t: now_us,
            id: job.spec.id,
            reason,
        });
        if let Some(tr) = alert {
            self.record_alert(tr);
        }
    }

    /// Offers an arriving job to admission control.
    pub fn offer(&mut self, spec: JobSpec, now_us: u64) {
        self.offered += 1;
        metrics::counter("serve/offered").add(1);
        let id = spec.id;
        let class = spec.priority;
        self.obs.on_arrive(now_us, id);
        self.record(EventRecord::Arrive { t: now_us, id });
        let job = PendingJob {
            spec,
            admitted_us: now_us,
            attempts: 0,
        };
        match self.queue.offer(job) {
            Admission::Admitted => {
                self.obs.on_admit(now_us, id, class.index());
                self.record(EventRecord::Admit {
                    t: now_us,
                    id,
                    class,
                });
            }
            Admission::AdmittedDisplacing(victim) => {
                self.obs.on_admit(now_us, id, class.index());
                self.record(EventRecord::Admit {
                    t: now_us,
                    id,
                    class,
                });
                self.shed_job(&victim, ShedReason::Displaced, now_us);
            }
            Admission::Refused(job) => {
                self.shed_job(&job, ShedReason::QueueFull, now_us);
            }
        }
    }

    /// Runs one dispatch round: expire stale jobs, show the policy the
    /// front of the queue and the idle servers, and commit its choices.
    /// Returns `(job, server index)` pairs for the driver to start.
    pub fn dispatch(&mut self, idle: &[usize], now_us: u64) -> Vec<(PendingJob, usize)> {
        let level = self.pre_dispatch(now_us);
        // Never place work on a server the detector has declared down.
        let idle: Vec<usize> = idle
            .iter()
            .copied()
            .filter(|&s| self.health[s] != Health::Down)
            .collect();
        if idle.is_empty() || self.queue.is_empty() {
            return Vec::new();
        }
        let picks: Vec<(u64, usize)> = {
            let candidates = self.queue.candidates(self.cfg.candidate_window);
            let ctx = DispatchCtx {
                fleet: &self.fleet,
                model: &self.model,
                now_us,
                health: &self.health,
                health_epoch: self.health_epoch,
            };
            self.policy
                .assign(&candidates, &idle, &ctx)
                .into_iter()
                .map(|(job_pos, idle_pos)| (candidates[job_pos].spec.id, idle[idle_pos]))
                .collect()
        };
        self.start_picks(picks, level, now_us)
    }

    /// The indexed dispatch round used by the XL engine: identical
    /// semantics to [`ServiceCore::dispatch`] but the policy sees the
    /// fleet-wide [`IdleIndex`] (which never contains `Down` servers)
    /// instead of a materialized idle slice, and returns server indices
    /// directly.
    pub fn dispatch_indexed(&mut self, idle: &IdleIndex, now_us: u64) -> Vec<(PendingJob, usize)> {
        let level = self.pre_dispatch(now_us);
        if idle.total() == 0 || self.queue.is_empty() {
            return Vec::new();
        }
        let picks: Vec<(u64, usize)> = {
            let candidates = self.queue.candidates(self.cfg.candidate_window);
            let ctx = DispatchCtx {
                fleet: &self.fleet,
                model: &self.model,
                now_us,
                health: &self.health,
                health_epoch: self.health_epoch,
            };
            self.policy
                .assign_indexed(&candidates, idle, &ctx)
                .into_iter()
                .map(|(job_pos, server)| (candidates[job_pos].spec.id, server))
                .collect()
        };
        self.start_picks(picks, level, now_us)
    }

    /// Shared dispatch preamble: expire stale jobs and feed the
    /// degradation ladder. Returns the (possibly stepped) degrade level.
    fn pre_dispatch(&mut self, now_us: u64) -> u8 {
        for victim in self.queue.drop_expired(now_us) {
            self.shed_job(&victim, ShedReason::Expired, now_us);
        }
        // Feed the degradation ladder: backlog vs detected-up capacity.
        // A disabled ladder (the default) never leaves level 0, so the
        // legacy path is untouched.
        let prev_level = self.ladder.level();
        let level = self.ladder.observe(self.queue.len(), self.up_capacity);
        if level != prev_level {
            // A preset downgrade changes what a dispatch costs, so cached
            // predictions must not outlive the step.
            self.health_epoch += 1;
            // Attribute the step: if an SLO burn-rate alert is firing the
            // ladder is reacting to burn, otherwise to raw backlog.
            let cause = if self.obs.alert_firing() {
                Cause::SloBurn
            } else {
                Cause::BacklogPressure
            };
            self.record(EventRecord::Degrade {
                t: now_us,
                level,
                cause,
            });
            chaos_metrics::degrade_level_gauge().set(f64::from(level));
            self.peak_degrade = self.peak_degrade.max(level);
        }
        level
    }

    /// Commits the policy's `(job id, server)` picks: pulls each job out
    /// of the queue, applies the degrade ladder's preset downgrade, and
    /// books the dispatch.
    fn start_picks(
        &mut self,
        picks: Vec<(u64, usize)>,
        level: u8,
        now_us: u64,
    ) -> Vec<(PendingJob, usize)> {
        let mut started = Vec::with_capacity(picks.len());
        for (id, server) in picks {
            // A policy returning stale or duplicate ids is a bug; skip
            // rather than poison the run.
            let Some(mut job) = self.queue.take(id) else {
                continue;
            };
            job.attempts += 1;
            if job.attempts > 1 {
                self.retries += 1;
            }
            if level > 0 {
                let from = job.spec.task.preset;
                let to = downgrade(from, level);
                if to != from {
                    job.spec.task = job.spec.task.clone().with_preset(to);
                    self.degraded_jobs += 1;
                }
            }
            self.obs.on_dispatch(now_us, id, server, job.attempts);
            self.record(EventRecord::Dispatch {
                t: now_us,
                id,
                server,
                attempt: job.attempts,
            });
            self.assignments.push((id, server));
            started.push((job, server));
        }
        started
    }

    /// Books a finished job: `started_us` is when the dispatch began.
    pub fn complete(&mut self, job: &PendingJob, server: usize, started_us: u64, now_us: u64) {
        self.server_busy_us[server] += now_us.saturating_sub(started_us);
        self.server_jobs[server] += 1;
        self.completed += 1;
        let sojourn = now_us.saturating_sub(job.spec.arrival_us);
        let violation = now_us > job.spec.deadline_us;
        if violation {
            self.violations += 1;
            metrics::counter("serve/slo_violations").add(1);
        }
        metrics::counter("serve/completed").add(1);
        metrics::histogram("serve/sojourn_us").record(sojourn);
        self.sojourns.push(sojourn);
        self.sojourns_by_class[job.spec.priority.index()].push(sojourn);
        let alert = self.obs.on_complete(
            now_us,
            job.spec.id,
            server,
            job.spec.priority.index(),
            sojourn,
            violation,
        );
        self.record(EventRecord::Complete {
            t: now_us,
            id: job.spec.id,
            server,
            sojourn_us: sojourn,
            violation,
        });
        if let Some(tr) = alert {
            self.record_alert(tr);
        }
    }

    /// Books a timed-out dispatch attempt. The job goes back through
    /// admission if it has retry budget left; otherwise it is shed.
    pub fn timeout(&mut self, job: PendingJob, server: usize, started_us: u64, now_us: u64) {
        self.server_busy_us[server] += now_us.saturating_sub(started_us);
        metrics::counter("serve/timeouts").add(1);
        self.obs.on_timeout(now_us, job.spec.id, server);
        self.record(EventRecord::Timeout {
            t: now_us,
            id: job.spec.id,
            server,
            attempt: job.attempts,
        });
        if job.attempts > self.cfg.max_retries {
            self.shed_job(&job, ShedReason::RetriesExhausted, now_us);
            return;
        }
        if job.spec.deadline_us <= now_us {
            self.shed_job(&job, ShedReason::Expired, now_us);
            return;
        }
        match self.queue.offer(job) {
            Admission::Admitted => {}
            Admission::AdmittedDisplacing(victim) => {
                self.shed_job(&victim, ShedReason::Displaced, now_us);
            }
            Admission::Refused(job) => {
                self.shed_job(&job, ShedReason::QueueFull, now_us);
            }
        }
    }

    /// The `(job id, server)` sequence committed so far, dispatch order.
    pub fn assignments(&self) -> &[(u64, usize)] {
        &self.assignments
    }

    /// The event log (empty when `collect_event_log` is off).
    pub fn event_log(&self) -> &[EventRecord] {
        &self.log
    }

    /// Finalizes the run into a report; `makespan_us` is the timestamp of
    /// the last event the driver processed.
    pub fn into_report(self, seed: u64, makespan_us: u64) -> (ServingReport, Vec<EventRecord>) {
        let (report, log, _obs) = self.finish(seed, makespan_us);
        (report, log)
    }

    /// Like [`ServiceCore::into_report`] but also returns the finalized
    /// observability plane (stranded job spans closed), so drivers can
    /// export traces, live quantiles and the alert stream.
    pub fn finish(
        mut self,
        seed: u64,
        makespan_us: u64,
    ) -> (ServingReport, Vec<EventRecord>, ObsPlane) {
        self.obs.on_finish(makespan_us);
        let makespan_secs = makespan_us as f64 / 1e6;
        let throughput = if makespan_us == 0 {
            0.0
        } else {
            self.completed as f64 / makespan_secs
        };
        let servers = self
            .fleet
            .servers()
            .iter()
            .enumerate()
            .map(|(i, s)| ServerStats {
                name: s.name.clone(),
                jobs: self.server_jobs[i],
                busy_us: self.server_busy_us[i],
                utilization: if makespan_us == 0 {
                    0.0
                } else {
                    self.server_busy_us[i] as f64 / makespan_us as f64
                },
            })
            .collect();
        // Availability: fraction of server-time the fleet was actually
        // alive. A server that crashes at 30% of the run contributes 0.3;
        // with no crashes (or a zero-length run) availability is 1.0.
        let n = self.fleet.len();
        let availability = if makespan_us == 0 || n == 0 {
            1.0
        } else {
            let up: f64 = (0..n)
                .map(|s| {
                    let up_us = self
                        .cfg
                        .chaos
                        .plan
                        .crash_us(s)
                        .map_or(makespan_us, |c| c.min(makespan_us));
                    up_us as f64
                })
                .sum();
            up / (n as f64 * makespan_us as f64)
        };
        let goodput = if makespan_us == 0 {
            0.0
        } else {
            self.completed.saturating_sub(self.violations) as f64 / makespan_secs
        };
        let mttr_us = if self.lost_spans.is_empty() {
            0
        } else {
            let sum: u128 = self.lost_spans.iter().map(|&v| u128::from(v)).sum();
            (sum / self.lost_spans.len() as u128) as u64
        };
        let plan_counts = self.cfg.chaos.plan.counts();
        let faults = FaultAccounting {
            crashes: plan_counts.crashes,
            slowdowns: plan_counts.slowdowns,
            stalls: plan_counts.stalls,
            requeued: self.requeued,
            hedges_launched: self.hedges_launched,
            hedges_won: self.hedges_won,
            hedges_wasted: self.hedges_wasted,
            degraded_jobs: self.degraded_jobs,
            peak_degrade_level: self.peak_degrade,
        };
        let report = ServingReport {
            policy: self.policy.name().to_owned(),
            seed,
            offered: self.offered,
            completed: self.completed,
            slo_violations: self.violations,
            shed: self.shed,
            retries: self.retries,
            makespan_us,
            throughput_jps: throughput,
            availability,
            goodput_jps: goodput,
            mttr_us,
            faults,
            sojourn: LatencyStats::from_samples(&self.sojourns),
            sojourn_by_class: [
                LatencyStats::from_samples(&self.sojourns_by_class[0]),
                LatencyStats::from_samples(&self.sojourns_by_class[1]),
                LatencyStats::from_samples(&self.sojourns_by_class[2]),
            ],
            servers,
            segments: None,
            cache: self.cache.as_ref().map(|c| c.stats()),
            shed_by_rung: self.shed_by_rung,
        };
        (report, self.log, self.obs)
    }
}

/// Renders an event log as deterministic text, one line per event.
pub fn render_event_log(log: &[EventRecord]) -> String {
    let mut out = String::with_capacity(log.len() * 48);
    for ev in log {
        out.push_str(&ev.render());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::RoundRobinPolicy;
    use crate::workload::WorkloadSpec;

    fn core_with(cfg: ServeConfig) -> ServiceCore {
        ServiceCore::new(
            cfg,
            Fleet::table_iv(),
            CostModel::new(7),
            Box::new(RoundRobinPolicy::new()),
        )
    }

    fn spec_jobs(n: usize) -> Vec<JobSpec> {
        let mut w = WorkloadSpec::smoke(7);
        w.jobs = n;
        w.generate().unwrap()
    }

    #[test]
    fn offer_dispatch_complete_roundtrip() {
        let mut core = core_with(ServeConfig::default());
        let jobs = spec_jobs(3);
        for j in &jobs {
            core.offer(j.clone(), j.arrival_us);
        }
        assert_eq!(core.queued(), 3);
        let started = core.dispatch(&[0, 1, 2, 3, 4], 1_000_000);
        assert_eq!(started.len(), 3);
        assert_eq!(core.queued(), 0);
        for (job, server) in &started {
            core.complete(job, *server, 1_000_000, 1_500_000);
        }
        let (report, log) = core.into_report(7, 1_500_000);
        assert_eq!(report.offered, 3);
        assert_eq!(report.completed, 3);
        assert_eq!(report.sojourn.count, 3);
        assert!(log
            .iter()
            .any(|e| matches!(e, EventRecord::Complete { .. })));
        // 3 arrivals + 3 admits + 3 dispatches + 3 completes.
        assert_eq!(log.len(), 12);
    }

    #[test]
    fn timeout_requeues_then_exhausts() {
        let mut core = core_with(ServeConfig {
            max_retries: 1,
            ..ServeConfig::default()
        });
        let jobs = spec_jobs(1);
        core.offer(jobs[0].clone(), 0);
        let started = core.dispatch(&[0], 10);
        let (job, server) = started.into_iter().next().unwrap();
        assert_eq!(job.attempts, 1);
        core.timeout(job, server, 10, 20);
        assert_eq!(core.queued(), 1, "first timeout re-queues");
        let started = core.dispatch(&[1], 30);
        let (job, server) = started.into_iter().next().unwrap();
        assert_eq!(job.attempts, 2);
        core.timeout(job, server, 30, 40);
        assert_eq!(core.queued(), 0, "retry budget spent");
        let (report, _) = core.into_report(7, 40);
        assert_eq!(report.shed[ShedReason::RetriesExhausted as usize], 1);
        assert_eq!(report.retries, 1);
        assert_eq!(report.completed, 0);
    }

    #[test]
    fn late_completion_counts_as_violation() {
        let mut core = core_with(ServeConfig::default());
        let mut jobs = spec_jobs(1);
        jobs[0].deadline_us = 5;
        core.offer(jobs[0].clone(), 0);
        let started = core.dispatch(&[0], 1);
        let (job, server) = started.into_iter().next().unwrap();
        core.complete(&job, server, 1, 100);
        let (report, _) = core.into_report(7, 100);
        assert_eq!(report.slo_violations, 1);
        assert!(report.violation_rate() > 0.99);
    }

    #[test]
    fn expired_jobs_are_shed_at_dispatch() {
        let mut core = core_with(ServeConfig::default());
        let mut jobs = spec_jobs(2);
        jobs[0].deadline_us = 5;
        jobs[1].deadline_us = u64::MAX;
        for j in &jobs {
            core.offer(j.clone(), 0);
        }
        let started = core.dispatch(&[0], 10);
        assert_eq!(started.len(), 1);
        assert_eq!(started[0].0.spec.id, jobs[1].id);
        let (report, _) = core.into_report(7, 10);
        assert_eq!(report.shed[ShedReason::Expired as usize], 1);
    }

    #[test]
    fn event_log_can_be_disabled() {
        let mut core = core_with(ServeConfig {
            collect_event_log: false,
            ..ServeConfig::default()
        });
        let jobs = spec_jobs(2);
        for j in &jobs {
            core.offer(j.clone(), j.arrival_us);
        }
        assert!(core.event_log().is_empty());
        let (report, log) = core.into_report(7, 100);
        assert!(log.is_empty());
        assert_eq!(report.offered, 2);
    }

    #[test]
    fn render_event_log_is_line_per_event() {
        let mut core = core_with(ServeConfig::default());
        let jobs = spec_jobs(1);
        core.offer(jobs[0].clone(), 0);
        let text = render_event_log(core.event_log());
        assert_eq!(text.lines().count(), 2); // arrive + admit
        assert!(text.contains("arrive"));
        assert!(text.contains("admit"));
    }
}
