//! Error type for the serving layer.

use std::error::Error;
use std::fmt;

use vtx_container::ContainerError;
use vtx_core::CoreError;
use vtx_sched::SchedError;

/// Errors surfaced by the serving layer.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// A fleet with no servers was supplied.
    EmptyFleet,
    /// A workload with no jobs was supplied.
    EmptyWorkload,
    /// Two servers in a fleet share a name.
    DuplicateServer {
        /// The repeated name.
        name: String,
    },
    /// A server's speed grade was zero, negative or non-finite.
    InvalidSpeed {
        /// The offending server.
        name: String,
        /// The offending speed.
        speed: f64,
    },
    /// A job references a video outside the vbench catalog.
    UnknownVideo {
        /// The name that failed to resolve.
        name: String,
    },
    /// An arrival-trace line failed to parse.
    Trace {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// The dispatch solver rejected its input (a bug in fleet/queue sizing).
    Sched(SchedError),
    /// A real-executor transcode failed.
    Core(CoreError),
    /// Packaging a segment or manifest failed.
    Container(ContainerError),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::EmptyFleet => write!(f, "fleet must contain at least one server"),
            ServeError::EmptyWorkload => write!(f, "workload must contain at least one job"),
            ServeError::DuplicateServer { name } => {
                write!(f, "fleet has two servers named '{name}'")
            }
            ServeError::InvalidSpeed { name, speed } => {
                write!(
                    f,
                    "server '{name}' has invalid speed {speed} (must be finite and > 0)"
                )
            }
            ServeError::UnknownVideo { name } => {
                write!(f, "video '{name}' is not in the vbench catalog")
            }
            ServeError::Trace { line, message } => {
                write!(f, "arrival trace line {line}: {message}")
            }
            ServeError::Sched(e) => write!(f, "dispatch solver error: {e}"),
            ServeError::Core(e) => write!(f, "transcode error: {e}"),
            ServeError::Container(e) => write!(f, "packaging error: {e}"),
        }
    }
}

impl Error for ServeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ServeError::Sched(e) => Some(e),
            ServeError::Core(e) => Some(e),
            ServeError::Container(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SchedError> for ServeError {
    fn from(e: SchedError) -> Self {
        ServeError::Sched(e)
    }
}

impl From<CoreError> for ServeError {
    fn from(e: CoreError) -> Self {
        ServeError::Core(e)
    }
}

impl From<ContainerError> for ServeError {
    fn from(e: ContainerError) -> Self {
        ServeError::Container(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_sources() {
        assert!(ServeError::EmptyFleet.to_string().contains("fleet"));
        let e: ServeError = SchedError::NoTasks.into();
        assert!(e.source().is_some());
        let e = ServeError::Trace {
            line: 3,
            message: "bad preset".into(),
        };
        assert!(e.to_string().contains("line 3"));
    }
}
