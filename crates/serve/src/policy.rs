//! Online dispatch policies: the Figure 9 trio, re-posed for serving.
//!
//! The paper's schedulers assign a *static batch* one-to-one; an online
//! dispatcher repeatedly faces a smaller problem — the currently queued
//! candidates versus the currently idle servers — every time an arrival or
//! completion changes the state. All policies implement one trait so the
//! discrete-event engine and the real threaded executor drive them through
//! the same code path.
//!
//! Two dispatch surfaces exist on the trait:
//!
//! * [`DispatchPolicy::assign`] — the historical small-fleet path over a
//!   materialized idle slice (exact Hungarian solve for the model-driven
//!   policies). The committed fig9 artifacts pin its output byte-for-byte.
//! * [`DispatchPolicy::assign_indexed`] — the XL path over an incremental
//!   [`IdleIndex`]: the model-driven policies route each candidate to one
//!   of two consistent-hashed cells (power-of-two-choices on idle
//!   capacity) and run a warm-started ε-scaling auction *within* the
//!   chosen cell; the baselines sample the Fenwick tree directly. Nothing
//!   here is O(fleet).
//!
//! The model-driven policies also memoize predictions: the cost model is a
//! pure function of (task parameters, server class), so each (task, class)
//! pair is priced once per detector epoch and invalidated wholesale on any
//! Suspect/Down/Degrade transition (the epoch bump in
//! [`DispatchCtx::health_epoch`]).

use std::collections::BTreeMap;
use std::fmt;

use vtx_chaos::Health;
use vtx_codec::Preset;

use crate::cells::IdleIndex;
use crate::cost::CostModel;
use crate::fleet::Fleet;
use crate::queue::PendingJob;
use crate::rng::SplitMix64;
use vtx_sched::{auction, hungarian};

/// Cost multiplier the model-driven policies apply to servers the failure
/// detector currently suspects: high enough that a suspected server is only
/// chosen when nothing healthy is idle, low enough that the assignment
/// matrix stays well-conditioned.
pub const SUSPECT_PENALTY: f64 = 64.0;

/// Everything a policy may look at when assigning.
#[derive(Debug)]
pub struct DispatchCtx<'a> {
    /// The fleet (server specs, speeds, uarch kinds).
    pub fleet: &'a Fleet,
    /// The throughput model (predictions only — truth is engine-private).
    pub model: &'a CostModel,
    /// Current time in microseconds.
    pub now_us: u64,
    /// Failure-detector view per server, fleet order. `Down` servers never
    /// appear in the idle set; `Suspected` ones do, and it is up to each
    /// policy whether to care — the blind baselines (random, round-robin)
    /// keep throwing work at suspects, which is exactly the behavior the
    /// faulted study measures them on.
    pub health: &'a [Health],
    /// Monotone counter bumped by the service on every Suspect/Down/Degrade
    /// transition. Policies may cache anything derived from `health` or the
    /// degrade ladder for as long as this value holds still.
    pub health_epoch: u64,
}

impl DispatchCtx<'_> {
    /// `base` cost inflated by [`SUSPECT_PENALTY`] when `server` is
    /// suspected (out-of-range indices count as up, for bare test contexts).
    pub fn penalized(&self, base: f64, server: usize) -> f64 {
        match self.health.get(server) {
            Some(Health::Suspected) => base * SUSPECT_PENALTY,
            _ => base,
        }
    }
}

/// An online dispatch policy.
pub trait DispatchPolicy: fmt::Debug + Send {
    /// Policy name used in reports.
    fn name(&self) -> &'static str;

    /// Chooses assignments among `jobs` (queue candidates, priority/EDF
    /// order) and `idle` (idle server indices, ascending). Returns
    /// `(job_pos, idle_pos)` pairs into those slices; each position may be
    /// used at most once. Unmatched jobs stay queued.
    fn assign(
        &mut self,
        jobs: &[&PendingJob],
        idle: &[usize],
        ctx: &DispatchCtx<'_>,
    ) -> Vec<(usize, usize)>;

    /// XL variant of [`Self::assign`] over the incremental idle index.
    /// Returns `(job_pos, server_index)` pairs — **server indices, not
    /// idle positions** — each job and server at most once, servers drawn
    /// from the index's idle set. The default materializes the idle set
    /// and delegates; the built-in policies override it with sublinear
    /// implementations.
    fn assign_indexed(
        &mut self,
        jobs: &[&PendingJob],
        idle: &IdleIndex,
        ctx: &DispatchCtx<'_>,
    ) -> Vec<(usize, usize)> {
        let idle_vec = idle.to_vec();
        self.assign(jobs, &idle_vec, ctx)
            .into_iter()
            .map(|(job_pos, idle_pos)| (job_pos, idle_vec[idle_pos]))
            .collect()
    }
}

/// Uniform-random placement (the paper's random scheduler, online).
#[derive(Debug)]
pub struct RandomPolicy {
    rng: SplitMix64,
}

impl RandomPolicy {
    /// Creates the policy with its own seeded stream.
    pub fn new(seed: u64) -> Self {
        RandomPolicy {
            rng: SplitMix64::new(seed),
        }
    }
}

impl DispatchPolicy for RandomPolicy {
    fn name(&self) -> &'static str {
        "random"
    }

    fn assign(
        &mut self,
        jobs: &[&PendingJob],
        idle: &[usize],
        _ctx: &DispatchCtx<'_>,
    ) -> Vec<(usize, usize)> {
        let n = jobs.len().min(idle.len());
        // Partial Fisher–Yates over the idle positions.
        let mut slots: Vec<usize> = (0..idle.len()).collect();
        let mut out = Vec::with_capacity(n);
        for (job_pos, _) in jobs.iter().enumerate().take(n) {
            let pick = job_pos + self.rng.next_range((slots.len() - job_pos) as u64) as usize;
            slots.swap(job_pos, pick);
            out.push((job_pos, slots[job_pos]));
        }
        out
    }

    fn assign_indexed(
        &mut self,
        jobs: &[&PendingJob],
        idle: &IdleIndex,
        _ctx: &DispatchCtx<'_>,
    ) -> Vec<(usize, usize)> {
        let n = jobs.len().min(idle.total());
        // Sample n distinct idle ranks without materializing the idle set:
        // draw a rank among the not-yet-picked, then shift it past the
        // already-picked ranks (ascending) to index the full idle order.
        let mut picked_ranks: Vec<usize> = Vec::with_capacity(n);
        let mut out = Vec::with_capacity(n);
        for job_pos in 0..n {
            let mut r = self.rng.next_range((idle.total() - job_pos) as u64) as usize;
            for &p in picked_ranks.iter() {
                if p <= r {
                    r += 1;
                }
            }
            let pos = picked_ranks.partition_point(|&p| p < r);
            picked_ranks.insert(pos, r);
            let server = idle.nth_idle(r).expect("rank < idle.total()");
            out.push((job_pos, server));
        }
        out
    }
}

/// Round-robin over the fleet (the classic characterization-blind
/// baseline): a cursor walks server indices; each job takes the next idle
/// server at or after the cursor.
#[derive(Debug, Default)]
pub struct RoundRobinPolicy {
    cursor: usize,
}

impl RoundRobinPolicy {
    /// Creates the policy with the cursor at server 0.
    pub fn new() -> Self {
        Self::default()
    }
}

impl DispatchPolicy for RoundRobinPolicy {
    fn name(&self) -> &'static str {
        "round_robin"
    }

    fn assign(
        &mut self,
        jobs: &[&PendingJob],
        idle: &[usize],
        ctx: &DispatchCtx<'_>,
    ) -> Vec<(usize, usize)> {
        let fleet_len = ctx.fleet.len();
        let n = jobs.len().min(idle.len());
        let mut used = vec![false; idle.len()];
        let mut out = Vec::with_capacity(n);
        for job_pos in 0..n {
            // First unused idle server at or after the cursor (cyclic).
            let pick = (0..idle.len())
                .map(|off| {
                    let target = (self.cursor + off) % fleet_len;
                    idle.iter().position(|&s| s == target).filter(|&p| !used[p])
                })
                .find_map(|p| p)
                .or_else(|| used.iter().position(|&u| !u));
            let Some(idle_pos) = pick else { break };
            used[idle_pos] = true;
            self.cursor = (idle[idle_pos] + 1) % fleet_len;
            out.push((job_pos, idle_pos));
        }
        out
    }

    fn assign_indexed(
        &mut self,
        jobs: &[&PendingJob],
        idle: &IdleIndex,
        _ctx: &DispatchCtx<'_>,
    ) -> Vec<(usize, usize)> {
        let fleet_len = idle.plan().n_servers();
        let n = jobs.len().min(idle.total());
        let mut picked: Vec<usize> = Vec::with_capacity(n);
        let mut out = Vec::with_capacity(n);
        for job_pos in 0..n {
            // First idle server at or after the cursor (cyclic) that is not
            // already taken this round; at most `picked + 2` probes.
            let mut start = self.cursor % fleet_len;
            let mut server = None;
            for _ in 0..=picked.len() + 1 {
                let cand = idle
                    .next_idle_at_or_after(start)
                    .or_else(|| idle.next_idle_at_or_after(0));
                match cand {
                    Some(s) if picked.binary_search(&s).is_err() => {
                        server = Some(s);
                        break;
                    }
                    Some(s) => start = (s + 1) % fleet_len,
                    None => break,
                }
            }
            let Some(s) = server else { break };
            let pos = picked.partition_point(|&p| p < s);
            picked.insert(pos, s);
            self.cursor = (s + 1) % fleet_len;
            out.push((job_pos, s));
        }
        out
    }
}

/// Which prediction face a model-driven policy ranks by.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PredictionKind {
    /// [`CostModel::predicted_us`] — the affinity-model face (`smart`).
    Affinity,
    /// [`CostModel::port_predicted_us`] — the port-refined face (`port`).
    Port,
}

/// Integer suspect penalty applied to milli-costs on the auction path —
/// the same ×64 as [`SUSPECT_PENALTY`], kept integral so bids stay exact.
const SUSPECT_PENALTY_INT: u64 = SUSPECT_PENALTY as u64;

/// Shared machinery of the model-driven policies (`smart` / `port`): the
/// prediction memo, the per-server auction prices, and both dispatch
/// surfaces.
/// Prediction memo keys: (crf, refs, preset rank, server class) within a
/// video's entry.
type KnobKey = (u8, u8, u8, u16);

#[derive(Debug)]
struct ModelCore {
    kind: PredictionKind,
    /// Prediction memo: video → (crf, refs, preset rank, server class) →
    /// base (un-penalized) predicted µs. The server class collapses servers
    /// with identical (uarch, speed) — the only inputs the model reads.
    cache: BTreeMap<String, BTreeMap<KnobKey, u64>>,
    /// Detector epoch the memo was filled under; any mismatch clears it.
    cache_epoch: u64,
    /// Whether the memo is consulted at all (equivalence tests disable it).
    cache_enabled: bool,
    /// Server index → class id, rebuilt when the fleet size changes.
    class_of: Vec<u16>,
    /// Warm-start auction prices per server index (XL path only).
    prices: BTreeMap<usize, i64>,
}

impl ModelCore {
    fn new(kind: PredictionKind) -> Self {
        ModelCore {
            kind,
            cache: BTreeMap::new(),
            cache_epoch: 0,
            cache_enabled: true,
            class_of: Vec::new(),
            prices: BTreeMap::new(),
        }
    }

    /// Raw (un-cached, un-penalized) prediction for this kind.
    fn predict_raw(&self, ctx: &DispatchCtx<'_>, job: &PendingJob, s: usize) -> u64 {
        let server = ctx.fleet.server(s);
        match self.kind {
            PredictionKind::Affinity => ctx.model.predicted_us(&job.spec, server),
            PredictionKind::Port => ctx.model.port_predicted_us(&job.spec, server),
        }
    }

    fn ensure_classes(&mut self, fleet: &Fleet) {
        if self.class_of.len() == fleet.len() {
            return;
        }
        let mut ids: BTreeMap<(&str, u64), u16> = BTreeMap::new();
        self.class_of = fleet
            .servers()
            .iter()
            .map(|sv| {
                let key = (sv.uarch.name.as_str(), sv.speed.to_bits());
                let next = ids.len() as u16;
                *ids.entry(key).or_insert(next)
            })
            .collect();
        self.cache.clear();
    }

    /// Base (un-penalized) predicted µs, through the memo when enabled.
    fn predicted_base(&mut self, ctx: &DispatchCtx<'_>, job: &PendingJob, s: usize) -> u64 {
        if !self.cache_enabled {
            return self.predict_raw(ctx, job, s);
        }
        if self.cache_epoch != ctx.health_epoch {
            self.cache.clear();
            self.cache_epoch = ctx.health_epoch;
        }
        self.ensure_classes(ctx.fleet);
        let t = &job.spec.task;
        let rank = Preset::ALL.iter().position(|&p| p == t.preset).unwrap_or(5) as u8;
        let key = (t.crf, t.refs, rank, self.class_of[s]);
        if let Some(&hit) = self.cache.get(t.video.as_str()).and_then(|m| m.get(&key)) {
            return hit;
        }
        let val = self.predict_raw(ctx, job, s);
        self.cache
            .entry(t.video.clone())
            .or_default()
            .insert(key, val);
        val
    }

    /// Suspect-penalized integer milli-µs cost for the auction path.
    fn milli_cost(&mut self, ctx: &DispatchCtx<'_>, job: &PendingJob, s: usize) -> u64 {
        let base = self.predicted_base(ctx, job, s).saturating_mul(1000);
        match ctx.health.get(s) {
            Some(Health::Suspected) => base.saturating_mul(SUSPECT_PENALTY_INT),
            _ => base,
        }
    }

    /// The historical exact path: Hungarian over the full (jobs × idle)
    /// f64 matrix. Costs are byte-identical to the pre-memo implementation
    /// (the memo returns the very same `u64` the model would).
    fn assign_exact(
        &mut self,
        jobs: &[&PendingJob],
        idle: &[usize],
        ctx: &DispatchCtx<'_>,
    ) -> Vec<(usize, usize)> {
        if jobs.is_empty() || idle.is_empty() {
            return Vec::new();
        }
        let cost: Vec<Vec<f64>> = jobs
            .iter()
            .map(|j| {
                idle.iter()
                    .map(|&s| ctx.penalized(self.predicted_base(ctx, j, s) as f64, s))
                    .collect()
            })
            .collect();
        match hungarian::solve_padded(&cost) {
            Ok(assignment) => assignment
                .into_iter()
                .enumerate()
                .filter_map(|(job_pos, slot)| slot.map(|idle_pos| (job_pos, idle_pos)))
                .collect(),
            // The matrix is rectangular by construction; a solver error
            // would be a bug — fall back to in-order greedy rather than
            // crash the serving loop.
            Err(_) => jobs
                .iter()
                .enumerate()
                .take(idle.len())
                .map(|(i, _)| (i, i))
                .collect(),
        }
    }

    /// The XL two-level path: consistent-hash + power-of-two-choices cell
    /// routing, then a warm-started ε-scaling auction within each cell.
    /// Returns `(job_pos, server_index)` pairs.
    fn assign_cells(
        &mut self,
        jobs: &[&PendingJob],
        idle: &IdleIndex,
        ctx: &DispatchCtx<'_>,
    ) -> Vec<(usize, usize)> {
        if jobs.is_empty() || idle.total() == 0 {
            return Vec::new();
        }
        // Level 1: route each candidate to the roomier of its two hashed
        // cells, debiting capacity as jobs land so a burst spreads out.
        let mut routed: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        let mut taken: BTreeMap<usize, usize> = BTreeMap::new();
        for (job_pos, j) in jobs.iter().enumerate() {
            let (a, b) = idle.plan().candidates(j.spec.id);
            let room_a = idle
                .idle_in_cell(a)
                .saturating_sub(*taken.get(&a).unwrap_or(&0));
            let room_b = idle
                .idle_in_cell(b)
                .saturating_sub(*taken.get(&b).unwrap_or(&0));
            let cell = if room_a == 0 && room_b == 0 {
                continue; // both candidate cells saturated — job waits
            } else if room_b > room_a {
                b
            } else {
                a
            };
            *taken.entry(cell).or_insert(0) += 1;
            routed.entry(cell).or_default().push(job_pos);
        }
        // Level 2: auction within each cell, prices warm across rounds.
        let mut out = Vec::new();
        for (cell, job_ps) in routed {
            let servers = idle.cell_idle(cell);
            if servers.is_empty() {
                continue;
            }
            let cost: Vec<Vec<u64>> = job_ps
                .iter()
                .map(|&jp| {
                    servers
                        .iter()
                        .map(|&s| self.milli_cost(ctx, jobs[jp], s))
                        .collect()
                })
                .collect();
            let mut prices: Vec<i64> = servers
                .iter()
                .map(|&s| self.prices.get(&s).copied().unwrap_or(0))
                .collect();
            let Ok(assignment) = auction::solve_padded_warm(&cost, &mut prices) else {
                continue; // unreachable: matrix is rectangular by construction
            };
            for (&s, &p) in servers.iter().zip(&prices) {
                self.prices.insert(s, p);
            }
            for (row, slot) in assignment.iter().enumerate() {
                if let Some(col) = slot {
                    out.push((job_ps[row], servers[*col]));
                }
            }
        }
        out
    }
}

/// The characterization-driven policy: minimum predicted total service time
/// over the (candidates × idle servers) matrix — the smart scheduler of
/// Figure 9 run continuously over whatever is currently queued and idle.
/// Small fleets get the exact Hungarian solve; XL fleets get two-level
/// cell-auction dispatch. When queued jobs outnumber idle servers the
/// rectangular solve picks which jobs run *now* (the rest wait), still
/// minimizing predicted cost.
#[derive(Debug)]
pub struct SmartPolicy {
    core: ModelCore,
}

impl Default for SmartPolicy {
    fn default() -> Self {
        Self::new()
    }
}

impl SmartPolicy {
    /// Creates the policy.
    pub fn new() -> Self {
        SmartPolicy {
            core: ModelCore::new(PredictionKind::Affinity),
        }
    }

    /// Creates the policy with the prediction memo disabled — every cost is
    /// recomputed from the model. Exists so tests can pin that the memo
    /// never changes an assignment.
    pub fn uncached() -> Self {
        let mut core = ModelCore::new(PredictionKind::Affinity);
        core.cache_enabled = false;
        SmartPolicy { core }
    }
}

impl DispatchPolicy for SmartPolicy {
    fn name(&self) -> &'static str {
        "smart"
    }

    fn assign(
        &mut self,
        jobs: &[&PendingJob],
        idle: &[usize],
        ctx: &DispatchCtx<'_>,
    ) -> Vec<(usize, usize)> {
        self.core.assign_exact(jobs, idle, ctx)
    }

    fn assign_indexed(
        &mut self,
        jobs: &[&PendingJob],
        idle: &IdleIndex,
        ctx: &DispatchCtx<'_>,
    ) -> Vec<(usize, usize)> {
        self.core.assign_cells(jobs, idle, ctx)
    }
}

/// The port-informed policy: like [`SmartPolicy`] but ranking by the
/// port-refined prediction ([`CostModel::port_predicted_us`]). The engine
/// bills the port-refined cost, so this policy minimizes the true objective
/// while `smart` minimizes a port-blind approximation of it — the
/// difference shows up on fleets whose `be_op2` column offers port relief
/// that the flat affinity model cannot see.
#[derive(Debug)]
pub struct PortPolicy {
    core: ModelCore,
}

impl Default for PortPolicy {
    fn default() -> Self {
        Self::new()
    }
}

impl PortPolicy {
    /// Creates the policy.
    pub fn new() -> Self {
        PortPolicy {
            core: ModelCore::new(PredictionKind::Port),
        }
    }

    /// Memo-disabled variant, mirroring [`SmartPolicy::uncached`].
    pub fn uncached() -> Self {
        let mut core = ModelCore::new(PredictionKind::Port);
        core.cache_enabled = false;
        PortPolicy { core }
    }
}

impl DispatchPolicy for PortPolicy {
    fn name(&self) -> &'static str {
        "port"
    }

    fn assign(
        &mut self,
        jobs: &[&PendingJob],
        idle: &[usize],
        ctx: &DispatchCtx<'_>,
    ) -> Vec<(usize, usize)> {
        self.core.assign_exact(jobs, idle, ctx)
    }

    fn assign_indexed(
        &mut self,
        jobs: &[&PendingJob],
        idle: &IdleIndex,
        ctx: &DispatchCtx<'_>,
    ) -> Vec<(usize, usize)> {
        self.core.assign_cells(jobs, idle, ctx)
    }
}

/// Builds a policy by name (`random`, `round_robin`/`rr`, `smart`, `port`).
pub fn policy_by_name(name: &str, seed: u64) -> Option<Box<dyn DispatchPolicy>> {
    match name {
        "random" => Some(Box::new(RandomPolicy::new(seed))),
        "round_robin" | "rr" => Some(Box::new(RoundRobinPolicy::new())),
        "smart" => Some(Box::new(SmartPolicy::new())),
        "port" => Some(Box::new(PortPolicy::new())),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::PendingJob;
    use crate::workload::{JobSpec, Priority};
    use vtx_codec::Preset;
    use vtx_sched::TranscodeTask;

    fn pending(id: u64, video: &str, preset: Preset) -> PendingJob {
        PendingJob {
            spec: JobSpec {
                id,
                arrival_us: 0,
                task: TranscodeTask::new(video, 23, 3, preset),
                priority: Priority::Standard,
                deadline_us: u64::MAX,
                timeout_us: u64::MAX,
            },
            admitted_us: 0,
            attempts: 0,
        }
    }

    fn ctx<'a>(fleet: &'a Fleet, model: &'a CostModel) -> DispatchCtx<'a> {
        DispatchCtx {
            fleet,
            model,
            now_us: 0,
            health: &[],
            health_epoch: 0,
        }
    }

    #[test]
    fn assignments_are_injective_for_all_policies() {
        let fleet = Fleet::table_iv();
        let model = CostModel::new(42);
        let jobs: Vec<PendingJob> = (0..8).map(|i| pending(i, "bike", Preset::Medium)).collect();
        let refs: Vec<&PendingJob> = jobs.iter().collect();
        let idle = vec![0, 2, 4];
        for mut p in [
            Box::new(RandomPolicy::new(1)) as Box<dyn DispatchPolicy>,
            Box::new(RoundRobinPolicy::new()),
            Box::new(SmartPolicy::new()),
            Box::new(PortPolicy::new()),
        ] {
            let a = p.assign(&refs, &idle, &ctx(&fleet, &model));
            assert_eq!(a.len(), 3, "{} should fill all idle servers", p.name());
            let mut seen_jobs = vec![false; refs.len()];
            let mut seen_slots = vec![false; idle.len()];
            for (j, s) in a {
                assert!(!seen_jobs[j] && !seen_slots[s], "{}", p.name());
                seen_jobs[j] = true;
                seen_slots[s] = true;
            }
        }
    }

    #[test]
    fn round_robin_cycles_the_fleet() {
        let fleet = Fleet::table_iv();
        let model = CostModel::new(42);
        let mut p = RoundRobinPolicy::new();
        let jobs: Vec<PendingJob> = (0..2).map(|i| pending(i, "bike", Preset::Fast)).collect();
        let refs: Vec<&PendingJob> = jobs.iter().collect();
        let all = vec![0, 1, 2, 3, 4];
        let a1 = p.assign(&refs[..1], &all, &ctx(&fleet, &model));
        assert_eq!(a1, vec![(0, 0)]);
        // Cursor advanced: next single job goes to server 1.
        let a2 = p.assign(&refs[..1], &all, &ctx(&fleet, &model));
        assert_eq!(a2, vec![(0, 1)]);
    }

    #[test]
    fn smart_prefers_the_affine_server() {
        let fleet = Fleet::table_iv();
        let model = CostModel::new(42);
        // One job, all servers idle: smart must pick the predicted-fastest.
        let j = pending(0, "hall", Preset::Medium);
        let refs = vec![&j];
        let idle = vec![0, 1, 2, 3, 4];
        let mut p = SmartPolicy::new();
        let a = p.assign(&refs, &idle, &ctx(&fleet, &model));
        assert_eq!(a.len(), 1);
        let picked = idle[a[0].1];
        let best = idle
            .iter()
            .copied()
            .min_by_key(|&s| model.predicted_us(&j.spec, fleet.server(s)))
            .unwrap();
        assert_eq!(picked, best);
    }

    #[test]
    fn smart_handles_more_jobs_than_servers() {
        let fleet = Fleet::table_iv();
        let model = CostModel::new(42);
        let jobs: Vec<PendingJob> = (0..7)
            .map(|i| pending(i, "girl", Preset::Veryfast))
            .collect();
        let refs: Vec<&PendingJob> = jobs.iter().collect();
        let idle = vec![1, 3];
        let mut p = SmartPolicy::new();
        let a = p.assign(&refs, &idle, &ctx(&fleet, &model));
        assert_eq!(a.len(), 2, "exactly the idle servers get work");
    }

    #[test]
    fn random_is_seed_deterministic() {
        let fleet = Fleet::table_iv();
        let model = CostModel::new(42);
        let jobs: Vec<PendingJob> = (0..5).map(|i| pending(i, "cat", Preset::Fast)).collect();
        let refs: Vec<&PendingJob> = jobs.iter().collect();
        let idle = vec![0, 1, 2, 3, 4];
        let mut p1 = RandomPolicy::new(9);
        let mut p2 = RandomPolicy::new(9);
        assert_eq!(
            p1.assign(&refs, &idle, &ctx(&fleet, &model)),
            p2.assign(&refs, &idle, &ctx(&fleet, &model))
        );
    }

    #[test]
    fn policy_by_name_resolves() {
        assert_eq!(policy_by_name("random", 1).unwrap().name(), "random");
        assert_eq!(policy_by_name("rr", 1).unwrap().name(), "round_robin");
        assert_eq!(policy_by_name("smart", 1).unwrap().name(), "smart");
        assert_eq!(policy_by_name("port", 1).unwrap().name(), "port");
        assert!(policy_by_name("oracle", 1).is_none());
    }

    #[test]
    fn smart_steers_away_from_suspected_servers() {
        let fleet = Fleet::table_iv();
        let model = CostModel::new(42);
        let j = pending(0, "hall", Preset::Medium);
        let refs = vec![&j];
        let idle = vec![0, 1, 2, 3, 4];
        let mut p = SmartPolicy::new();
        let best = idle
            .iter()
            .copied()
            .min_by_key(|&s| model.predicted_us(&j.spec, fleet.server(s)))
            .unwrap();
        // Suspect the predicted-best server: smart must pick another one.
        let mut health = vec![Health::Up; 5];
        health[best] = Health::Suspected;
        let ctx = DispatchCtx {
            fleet: &fleet,
            model: &model,
            now_us: 0,
            health: &health,
            health_epoch: 0,
        };
        let a = p.assign(&refs, &idle, &ctx);
        assert_eq!(a.len(), 1);
        assert_ne!(idle[a[0].1], best, "suspected server is avoided");
        // With everything suspected the penalty cancels out: still assigns.
        let all = vec![Health::Suspected; 5];
        let ctx = DispatchCtx {
            fleet: &fleet,
            model: &model,
            now_us: 0,
            health: &all,
            health_epoch: 0,
        };
        assert_eq!(p.assign(&refs, &idle, &ctx).len(), 1);
    }

    #[test]
    fn penalized_defaults_to_up_for_short_health_slices() {
        let fleet = Fleet::table_iv();
        let model = CostModel::new(1);
        let c = ctx(&fleet, &model);
        assert_eq!(c.penalized(10.0, 3), 10.0);
        let health = [Health::Up, Health::Suspected];
        let c = DispatchCtx {
            fleet: &fleet,
            model: &model,
            now_us: 0,
            health: &health,
            health_epoch: 0,
        };
        assert_eq!(c.penalized(10.0, 1), 10.0 * SUSPECT_PENALTY);
        assert_eq!(c.penalized(10.0, 0), 10.0);
    }

    #[test]
    fn port_policy_picks_the_billed_fastest_server() {
        let fleet = Fleet::table_iv();
        let model = CostModel::new(42);
        // Slow preset → SATD/trellis-heavy mix → be_op2's extra port pays.
        let j = pending(0, "bike", Preset::Veryslow);
        let refs = vec![&j];
        let idle = vec![0, 1, 2, 3, 4];
        let mut p = PortPolicy::new();
        let a = p.assign(&refs, &idle, &ctx(&fleet, &model));
        assert_eq!(a.len(), 1);
        let picked = idle[a[0].1];
        let best = idle
            .iter()
            .copied()
            .min_by_key(|&s| model.port_predicted_us(&j.spec, fleet.server(s)))
            .unwrap();
        assert_eq!(picked, best);
    }
}
