//! Online dispatch policies: the Figure 9 trio, re-posed for serving.
//!
//! The paper's schedulers assign a *static batch* one-to-one; an online
//! dispatcher repeatedly faces a smaller problem — the currently queued
//! candidates versus the currently idle servers — every time an arrival or
//! completion changes the state. All three policies implement one trait so
//! the discrete-event engine and the real threaded executor drive them
//! through the same code path.

use std::fmt;

use vtx_chaos::Health;

use crate::cost::CostModel;
use crate::fleet::Fleet;
use crate::queue::PendingJob;
use crate::rng::SplitMix64;
use vtx_sched::hungarian;

/// Cost multiplier the model-driven policies apply to servers the failure
/// detector currently suspects: high enough that a suspected server is only
/// chosen when nothing healthy is idle, low enough that the assignment
/// matrix stays well-conditioned.
pub const SUSPECT_PENALTY: f64 = 64.0;

/// Everything a policy may look at when assigning.
#[derive(Debug)]
pub struct DispatchCtx<'a> {
    /// The fleet (server specs, speeds, uarch kinds).
    pub fleet: &'a Fleet,
    /// The throughput model (predictions only — truth is engine-private).
    pub model: &'a CostModel,
    /// Current time in microseconds.
    pub now_us: u64,
    /// Failure-detector view per server, fleet order. `Down` servers never
    /// appear in the idle set; `Suspected` ones do, and it is up to each
    /// policy whether to care — the blind baselines (random, round-robin)
    /// keep throwing work at suspects, which is exactly the behavior the
    /// faulted study measures them on.
    pub health: &'a [Health],
}

impl DispatchCtx<'_> {
    /// `base` cost inflated by [`SUSPECT_PENALTY`] when `server` is
    /// suspected (out-of-range indices count as up, for bare test contexts).
    pub fn penalized(&self, base: f64, server: usize) -> f64 {
        match self.health.get(server) {
            Some(Health::Suspected) => base * SUSPECT_PENALTY,
            _ => base,
        }
    }
}

/// An online dispatch policy.
pub trait DispatchPolicy: fmt::Debug + Send {
    /// Policy name used in reports.
    fn name(&self) -> &'static str;

    /// Chooses assignments among `jobs` (queue candidates, priority/EDF
    /// order) and `idle` (idle server indices, ascending). Returns
    /// `(job_pos, idle_pos)` pairs into those slices; each position may be
    /// used at most once. Unmatched jobs stay queued.
    fn assign(
        &mut self,
        jobs: &[&PendingJob],
        idle: &[usize],
        ctx: &DispatchCtx<'_>,
    ) -> Vec<(usize, usize)>;
}

/// Uniform-random placement (the paper's random scheduler, online).
#[derive(Debug)]
pub struct RandomPolicy {
    rng: SplitMix64,
}

impl RandomPolicy {
    /// Creates the policy with its own seeded stream.
    pub fn new(seed: u64) -> Self {
        RandomPolicy {
            rng: SplitMix64::new(seed),
        }
    }
}

impl DispatchPolicy for RandomPolicy {
    fn name(&self) -> &'static str {
        "random"
    }

    fn assign(
        &mut self,
        jobs: &[&PendingJob],
        idle: &[usize],
        _ctx: &DispatchCtx<'_>,
    ) -> Vec<(usize, usize)> {
        let n = jobs.len().min(idle.len());
        // Partial Fisher–Yates over the idle positions.
        let mut slots: Vec<usize> = (0..idle.len()).collect();
        let mut out = Vec::with_capacity(n);
        for (job_pos, _) in jobs.iter().enumerate().take(n) {
            let pick = job_pos + self.rng.next_range((slots.len() - job_pos) as u64) as usize;
            slots.swap(job_pos, pick);
            out.push((job_pos, slots[job_pos]));
        }
        out
    }
}

/// Round-robin over the fleet (the classic characterization-blind
/// baseline): a cursor walks server indices; each job takes the next idle
/// server at or after the cursor.
#[derive(Debug, Default)]
pub struct RoundRobinPolicy {
    cursor: usize,
}

impl RoundRobinPolicy {
    /// Creates the policy with the cursor at server 0.
    pub fn new() -> Self {
        Self::default()
    }
}

impl DispatchPolicy for RoundRobinPolicy {
    fn name(&self) -> &'static str {
        "round_robin"
    }

    fn assign(
        &mut self,
        jobs: &[&PendingJob],
        idle: &[usize],
        ctx: &DispatchCtx<'_>,
    ) -> Vec<(usize, usize)> {
        let fleet_len = ctx.fleet.len();
        let n = jobs.len().min(idle.len());
        let mut used = vec![false; idle.len()];
        let mut out = Vec::with_capacity(n);
        for job_pos in 0..n {
            // First unused idle server at or after the cursor (cyclic).
            let pick = (0..idle.len())
                .map(|off| {
                    let target = (self.cursor + off) % fleet_len;
                    idle.iter().position(|&s| s == target).filter(|&p| !used[p])
                })
                .find_map(|p| p)
                .or_else(|| used.iter().position(|&u| !u));
            let Some(idle_pos) = pick else { break };
            used[idle_pos] = true;
            self.cursor = (idle[idle_pos] + 1) % fleet_len;
            out.push((job_pos, idle_pos));
        }
        out
    }
}

/// The characterization-driven policy: minimum predicted total service time
/// over the (candidates × idle servers) matrix via the Hungarian solver —
/// the smart scheduler of Figure 9 run continuously over whatever is
/// currently queued and idle. When queued jobs outnumber idle servers the
/// rectangular solve picks which jobs run *now* (the rest wait), still
/// minimizing predicted cost.
#[derive(Debug, Default)]
pub struct SmartPolicy;

impl SmartPolicy {
    /// Creates the policy.
    pub fn new() -> Self {
        SmartPolicy
    }
}

impl DispatchPolicy for SmartPolicy {
    fn name(&self) -> &'static str {
        "smart"
    }

    fn assign(
        &mut self,
        jobs: &[&PendingJob],
        idle: &[usize],
        ctx: &DispatchCtx<'_>,
    ) -> Vec<(usize, usize)> {
        if jobs.is_empty() || idle.is_empty() {
            return Vec::new();
        }
        let cost: Vec<Vec<f64>> = jobs
            .iter()
            .map(|j| {
                idle.iter()
                    .map(|&s| {
                        ctx.penalized(
                            ctx.model.predicted_us(&j.spec, ctx.fleet.server(s)) as f64,
                            s,
                        )
                    })
                    .collect()
            })
            .collect();
        match hungarian::solve_padded(&cost) {
            Ok(assignment) => assignment
                .into_iter()
                .enumerate()
                .filter_map(|(job_pos, slot)| slot.map(|idle_pos| (job_pos, idle_pos)))
                .collect(),
            // The matrix is rectangular by construction; a solver error
            // would be a bug — fall back to in-order greedy rather than
            // crash the serving loop.
            Err(_) => jobs
                .iter()
                .enumerate()
                .take(idle.len())
                .map(|(i, _)| (i, i))
                .collect(),
        }
    }
}

/// The port-informed policy: like [`SmartPolicy`] but ranking by the
/// port-refined prediction ([`CostModel::port_predicted_us`]). The engine
/// bills the port-refined cost, so this policy minimizes the true objective
/// while `smart` minimizes a port-blind approximation of it — the
/// difference shows up on fleets whose `be_op2` column offers port relief
/// that the flat affinity model cannot see.
#[derive(Debug, Default)]
pub struct PortPolicy;

impl PortPolicy {
    /// Creates the policy.
    pub fn new() -> Self {
        PortPolicy
    }
}

impl DispatchPolicy for PortPolicy {
    fn name(&self) -> &'static str {
        "port"
    }

    fn assign(
        &mut self,
        jobs: &[&PendingJob],
        idle: &[usize],
        ctx: &DispatchCtx<'_>,
    ) -> Vec<(usize, usize)> {
        if jobs.is_empty() || idle.is_empty() {
            return Vec::new();
        }
        let cost: Vec<Vec<f64>> = jobs
            .iter()
            .map(|j| {
                idle.iter()
                    .map(|&s| {
                        ctx.penalized(
                            ctx.model.port_predicted_us(&j.spec, ctx.fleet.server(s)) as f64,
                            s,
                        )
                    })
                    .collect()
            })
            .collect();
        match hungarian::solve_padded(&cost) {
            Ok(assignment) => assignment
                .into_iter()
                .enumerate()
                .filter_map(|(job_pos, slot)| slot.map(|idle_pos| (job_pos, idle_pos)))
                .collect(),
            // Same defensive fallback as SmartPolicy: never crash the
            // serving loop on a solver bug.
            Err(_) => jobs
                .iter()
                .enumerate()
                .take(idle.len())
                .map(|(i, _)| (i, i))
                .collect(),
        }
    }
}

/// Builds a policy by name (`random`, `round_robin`/`rr`, `smart`, `port`).
pub fn policy_by_name(name: &str, seed: u64) -> Option<Box<dyn DispatchPolicy>> {
    match name {
        "random" => Some(Box::new(RandomPolicy::new(seed))),
        "round_robin" | "rr" => Some(Box::new(RoundRobinPolicy::new())),
        "smart" => Some(Box::new(SmartPolicy::new())),
        "port" => Some(Box::new(PortPolicy::new())),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::PendingJob;
    use crate::workload::{JobSpec, Priority};
    use vtx_codec::Preset;
    use vtx_sched::TranscodeTask;

    fn pending(id: u64, video: &str, preset: Preset) -> PendingJob {
        PendingJob {
            spec: JobSpec {
                id,
                arrival_us: 0,
                task: TranscodeTask::new(video, 23, 3, preset),
                priority: Priority::Standard,
                deadline_us: u64::MAX,
                timeout_us: u64::MAX,
            },
            admitted_us: 0,
            attempts: 0,
        }
    }

    fn ctx<'a>(fleet: &'a Fleet, model: &'a CostModel) -> DispatchCtx<'a> {
        DispatchCtx {
            fleet,
            model,
            now_us: 0,
            health: &[],
        }
    }

    #[test]
    fn assignments_are_injective_for_all_policies() {
        let fleet = Fleet::table_iv();
        let model = CostModel::new(42);
        let jobs: Vec<PendingJob> = (0..8).map(|i| pending(i, "bike", Preset::Medium)).collect();
        let refs: Vec<&PendingJob> = jobs.iter().collect();
        let idle = vec![0, 2, 4];
        for mut p in [
            Box::new(RandomPolicy::new(1)) as Box<dyn DispatchPolicy>,
            Box::new(RoundRobinPolicy::new()),
            Box::new(SmartPolicy::new()),
            Box::new(PortPolicy::new()),
        ] {
            let a = p.assign(&refs, &idle, &ctx(&fleet, &model));
            assert_eq!(a.len(), 3, "{} should fill all idle servers", p.name());
            let mut seen_jobs = vec![false; refs.len()];
            let mut seen_slots = vec![false; idle.len()];
            for (j, s) in a {
                assert!(!seen_jobs[j] && !seen_slots[s], "{}", p.name());
                seen_jobs[j] = true;
                seen_slots[s] = true;
            }
        }
    }

    #[test]
    fn round_robin_cycles_the_fleet() {
        let fleet = Fleet::table_iv();
        let model = CostModel::new(42);
        let mut p = RoundRobinPolicy::new();
        let jobs: Vec<PendingJob> = (0..2).map(|i| pending(i, "bike", Preset::Fast)).collect();
        let refs: Vec<&PendingJob> = jobs.iter().collect();
        let all = vec![0, 1, 2, 3, 4];
        let a1 = p.assign(&refs[..1], &all, &ctx(&fleet, &model));
        assert_eq!(a1, vec![(0, 0)]);
        // Cursor advanced: next single job goes to server 1.
        let a2 = p.assign(&refs[..1], &all, &ctx(&fleet, &model));
        assert_eq!(a2, vec![(0, 1)]);
    }

    #[test]
    fn smart_prefers_the_affine_server() {
        let fleet = Fleet::table_iv();
        let model = CostModel::new(42);
        // One job, all servers idle: smart must pick the predicted-fastest.
        let j = pending(0, "hall", Preset::Medium);
        let refs = vec![&j];
        let idle = vec![0, 1, 2, 3, 4];
        let mut p = SmartPolicy::new();
        let a = p.assign(&refs, &idle, &ctx(&fleet, &model));
        assert_eq!(a.len(), 1);
        let picked = idle[a[0].1];
        let best = idle
            .iter()
            .copied()
            .min_by_key(|&s| model.predicted_us(&j.spec, fleet.server(s)))
            .unwrap();
        assert_eq!(picked, best);
    }

    #[test]
    fn smart_handles_more_jobs_than_servers() {
        let fleet = Fleet::table_iv();
        let model = CostModel::new(42);
        let jobs: Vec<PendingJob> = (0..7)
            .map(|i| pending(i, "girl", Preset::Veryfast))
            .collect();
        let refs: Vec<&PendingJob> = jobs.iter().collect();
        let idle = vec![1, 3];
        let mut p = SmartPolicy::new();
        let a = p.assign(&refs, &idle, &ctx(&fleet, &model));
        assert_eq!(a.len(), 2, "exactly the idle servers get work");
    }

    #[test]
    fn random_is_seed_deterministic() {
        let fleet = Fleet::table_iv();
        let model = CostModel::new(42);
        let jobs: Vec<PendingJob> = (0..5).map(|i| pending(i, "cat", Preset::Fast)).collect();
        let refs: Vec<&PendingJob> = jobs.iter().collect();
        let idle = vec![0, 1, 2, 3, 4];
        let mut p1 = RandomPolicy::new(9);
        let mut p2 = RandomPolicy::new(9);
        assert_eq!(
            p1.assign(&refs, &idle, &ctx(&fleet, &model)),
            p2.assign(&refs, &idle, &ctx(&fleet, &model))
        );
    }

    #[test]
    fn policy_by_name_resolves() {
        assert_eq!(policy_by_name("random", 1).unwrap().name(), "random");
        assert_eq!(policy_by_name("rr", 1).unwrap().name(), "round_robin");
        assert_eq!(policy_by_name("smart", 1).unwrap().name(), "smart");
        assert_eq!(policy_by_name("port", 1).unwrap().name(), "port");
        assert!(policy_by_name("oracle", 1).is_none());
    }

    #[test]
    fn smart_steers_away_from_suspected_servers() {
        let fleet = Fleet::table_iv();
        let model = CostModel::new(42);
        let j = pending(0, "hall", Preset::Medium);
        let refs = vec![&j];
        let idle = vec![0, 1, 2, 3, 4];
        let mut p = SmartPolicy::new();
        let best = idle
            .iter()
            .copied()
            .min_by_key(|&s| model.predicted_us(&j.spec, fleet.server(s)))
            .unwrap();
        // Suspect the predicted-best server: smart must pick another one.
        let mut health = vec![Health::Up; 5];
        health[best] = Health::Suspected;
        let ctx = DispatchCtx {
            fleet: &fleet,
            model: &model,
            now_us: 0,
            health: &health,
        };
        let a = p.assign(&refs, &idle, &ctx);
        assert_eq!(a.len(), 1);
        assert_ne!(idle[a[0].1], best, "suspected server is avoided");
        // With everything suspected the penalty cancels out: still assigns.
        let all = vec![Health::Suspected; 5];
        let ctx = DispatchCtx {
            fleet: &fleet,
            model: &model,
            now_us: 0,
            health: &all,
        };
        assert_eq!(p.assign(&refs, &idle, &ctx).len(), 1);
    }

    #[test]
    fn penalized_defaults_to_up_for_short_health_slices() {
        let fleet = Fleet::table_iv();
        let model = CostModel::new(1);
        let c = ctx(&fleet, &model);
        assert_eq!(c.penalized(10.0, 3), 10.0);
        let health = [Health::Up, Health::Suspected];
        let c = DispatchCtx {
            fleet: &fleet,
            model: &model,
            now_us: 0,
            health: &health,
        };
        assert_eq!(c.penalized(10.0, 1), 10.0 * SUSPECT_PENALTY);
        assert_eq!(c.penalized(10.0, 0), 10.0);
    }

    #[test]
    fn port_policy_picks_the_billed_fastest_server() {
        let fleet = Fleet::table_iv();
        let model = CostModel::new(42);
        // Slow preset → SATD/trellis-heavy mix → be_op2's extra port pays.
        let j = pending(0, "bike", Preset::Veryslow);
        let refs = vec![&j];
        let idle = vec![0, 1, 2, 3, 4];
        let mut p = PortPolicy::new();
        let a = p.assign(&refs, &idle, &ctx(&fleet, &model));
        assert_eq!(a.len(), 1);
        let picked = idle[a[0].1];
        let best = idle
            .iter()
            .copied()
            .min_by_key(|&s| model.port_predicted_us(&j.spec, fleet.server(s)))
            .unwrap();
        assert_eq!(picked, best);
    }
}
