//! Open-loop load generation: reproducible arrival traces over the vbench
//! catalog and the x264 presets.
//!
//! The generator is *open-loop* (arrivals do not react to service), which is
//! how production transcoding traffic behaves — uploads keep coming whether
//! or not the fleet is keeping up — and the regime in which tail latency and
//! shedding are actually stressed. A [`WorkloadSpec`] plus a seed fully
//! determines the trace: Poisson arrivals via inverse-CDF exponential
//! inter-arrival times, job parameters drawn from explicit choice lists,
//! priorities from an explicit mix. The rendered trace format is one line
//! per job (see [`render_trace`]) and round-trips through [`parse_trace`].

use serde::{Deserialize, Serialize};

use vtx_cache::ZipfSampler;
use vtx_codec::Preset;
use vtx_sched::TranscodeTask;

use crate::error::ServeError;
use crate::rng::SplitMix64;

/// Service classes, highest priority first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Priority {
    /// Live/interactive transcodes: tight deadline, never queued for long.
    Interactive,
    /// Standard VOD ingest.
    Standard,
    /// Bulk re-encodes, library migrations: loose deadline, shed first.
    Batch,
}

impl Priority {
    /// All classes, dispatch order (highest first).
    pub const ALL: [Priority; 3] = [Priority::Interactive, Priority::Standard, Priority::Batch];

    /// Stable index into per-class arrays.
    pub fn index(self) -> usize {
        match self {
            Priority::Interactive => 0,
            Priority::Standard => 1,
            Priority::Batch => 2,
        }
    }

    /// Short name used in traces and reports.
    pub fn name(self) -> &'static str {
        match self {
            Priority::Interactive => "interactive",
            Priority::Standard => "standard",
            Priority::Batch => "batch",
        }
    }

    /// Parses a class name.
    pub fn from_name(s: &str) -> Option<Self> {
        Self::ALL.iter().copied().find(|p| p.name() == s)
    }
}

/// One job of an arrival trace: a transcoding task plus its service-level
/// envelope. Times are absolute simulated microseconds from trace start.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobSpec {
    /// Unique, dense id (position in the trace).
    pub id: u64,
    /// Arrival time in microseconds from trace start.
    pub arrival_us: u64,
    /// What to transcode.
    pub task: TranscodeTask,
    /// Service class.
    pub priority: Priority,
    /// Absolute completion deadline; finishing later is an SLO violation,
    /// still being *queued* past it gets the job shed.
    pub deadline_us: u64,
    /// Per-attempt service cap: an attempt running longer is killed and the
    /// job retried (up to the configured retry budget).
    pub timeout_us: u64,
}

/// Popularity model for repeat-heavy catalogs: a Zipf skew over the video
/// list (rank order = list order, so the first video is the hottest) plus
/// a live-vs-VOD service-class split. Live requests map to
/// [`Priority::Interactive`]; VOD requests split between `Standard` and
/// `Batch` by the spec's remaining `mix` weights. Each class pins its knob
/// vector (live takes the first preset/CRF/refs choices, VOD the last) so
/// repeated requests for a hot video share cache keys, the way a
/// production catalog re-requests the same rendition settings.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PopularitySpec {
    /// Zipf skew exponent `s` over the video list (0 = uniform).
    pub zipf_s: f64,
    /// Fraction of jobs in the live (interactive) class, in `[0, 1]`.
    pub live_frac: f64,
}

/// Everything that determines an arrival trace. Two equal specs generate
/// byte-identical traces.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Master seed: arrivals, parameter draws and service noise all derive
    /// from it.
    pub seed: u64,
    /// Mean arrival rate in jobs per second (open loop).
    pub arrival_rate_hz: f64,
    /// Number of jobs to generate.
    pub jobs: usize,
    /// Candidate videos (vbench short names).
    pub videos: Vec<String>,
    /// Candidate presets.
    pub presets: Vec<Preset>,
    /// Candidate CRF values.
    pub crf_choices: Vec<u8>,
    /// Candidate reference-frame counts.
    pub refs_choices: Vec<u8>,
    /// Priority mix (weights for interactive/standard/batch).
    pub mix: [f64; 3],
    /// Per-class deadline budget (microseconds after arrival).
    pub slo_budget_us: [u64; 3],
    /// Per-class per-attempt timeout in microseconds.
    pub timeout_us: [u64; 3],
    /// Optional popularity model. `None` (the default) keeps the legacy
    /// uniform draws byte-for-byte; `Some` switches video selection to
    /// Zipf and the class draw to the live/VOD split.
    #[serde(default)]
    pub popularity: Option<PopularitySpec>,
}

impl WorkloadSpec {
    /// The bundled benchmark scenario: a mixed diurnal-peak trace sized so a
    /// five-server Table IV fleet runs at ~80% utilization — busy enough
    /// that queueing (and therefore placement quality) dominates the tail.
    pub fn bundled(seed: u64) -> Self {
        WorkloadSpec {
            seed,
            arrival_rate_hz: 2.4,
            jobs: 400,
            videos: vec![
                "desktop".into(),
                "presentation".into(),
                "bike".into(),
                "game2".into(),
                "holi".into(),
                "cat".into(),
                "girl".into(),
                "hall".into(),
            ],
            presets: vec![
                Preset::Ultrafast,
                Preset::Veryfast,
                Preset::Faster,
                Preset::Medium,
                Preset::Slow,
            ],
            crf_choices: vec![18, 23, 28, 35],
            refs_choices: vec![1, 3, 6],
            mix: [0.2, 0.55, 0.25],
            slo_budget_us: [2_500_000, 6_000_000, 20_000_000],
            timeout_us: [4_000_000, 10_000_000, 30_000_000],
            popularity: None,
        }
    }

    /// A small scenario for smoke tests and CI (same shape, 60 jobs).
    pub fn smoke(seed: u64) -> Self {
        WorkloadSpec {
            jobs: 60,
            ..Self::bundled(seed)
        }
    }

    /// The fig9-XL scenario: one million jobs against a ten-thousand-server
    /// fleet ([`crate::fleet::Fleet::sized`]`(10_000)`). The arrival rate
    /// keeps the same per-server offered load as [`Self::bundled`] does at
    /// five servers, so placement quality — not raw saturation — still
    /// decides the tail. Intended for the XL engine path (calendar queue,
    /// idle index, two-level cell-auction dispatch); with the event log and
    /// observability plane off it completes in minutes.
    pub fn xl(seed: u64) -> Self {
        WorkloadSpec {
            jobs: 1_000_000,
            arrival_rate_hz: 3_000.0,
            ..Self::bundled(seed)
        }
    }

    /// The CI-sized XL smoke: 20k jobs / intended for a 500-server fleet,
    /// same per-server load as [`Self::xl`]. Big enough to exercise every
    /// XL code path (cells, auction warm starts, Fenwick sampling), small
    /// enough for a two-run byte-determinism check in CI.
    pub fn xl_smoke(seed: u64) -> Self {
        WorkloadSpec {
            jobs: 20_000,
            arrival_rate_hz: 150.0,
            ..Self::bundled(seed)
        }
    }

    /// A tiny real-executor scenario: few jobs, fast presets only (these
    /// run *actual* transcodes, so the work per job must stay test-sized).
    pub fn real_smoke(seed: u64) -> Self {
        WorkloadSpec {
            seed,
            arrival_rate_hz: 4.0,
            jobs: 6,
            videos: vec!["desktop".into(), "cat".into()],
            presets: vec![Preset::Ultrafast, Preset::Veryfast],
            crf_choices: vec![23, 35],
            refs_choices: vec![1, 2],
            mix: [0.3, 0.5, 0.2],
            slo_budget_us: [2_500_000, 6_000_000, 20_000_000],
            timeout_us: [60_000_000, 60_000_000, 60_000_000],
            popularity: None,
        }
    }

    /// Switch this spec to popularity-driven generation: Zipf(`zipf_s`)
    /// video selection with a `live_frac` live/VOD class split.
    pub fn with_popularity(mut self, zipf_s: f64, live_frac: f64) -> Self {
        self.popularity = Some(PopularitySpec { zipf_s, live_frac });
        self
    }

    /// Generates the arrival trace this spec describes.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::EmptyWorkload`] when `jobs` is 0 or any choice
    /// list is empty.
    pub fn generate(&self) -> Result<Vec<JobSpec>, ServeError> {
        if self.jobs == 0
            || self.videos.is_empty()
            || self.presets.is_empty()
            || self.crf_choices.is_empty()
            || self.refs_choices.is_empty()
        {
            return Err(ServeError::EmptyWorkload);
        }
        let mut rng = SplitMix64::new(self.seed);
        let mean_gap_s = 1.0 / self.arrival_rate_hz.max(1e-9);
        let mut t_us = 0u64;
        let mut jobs = Vec::with_capacity(self.jobs);
        let zipf = self
            .popularity
            .as_ref()
            .map(|p| ZipfSampler::new(self.videos.len(), p.zipf_s));
        for id in 0..self.jobs as u64 {
            t_us += (rng.next_exp(mean_gap_s) * 1e6).round() as u64;
            let (video, preset, crf, refs, priority) = match (&self.popularity, &zipf) {
                (Some(pop), Some(zipf)) => {
                    // Popularity-driven: Zipf video rank, live/VOD class
                    // split, knobs pinned per class so repeats of a hot
                    // video share cache keys. Constant draws per job.
                    let video = &self.videos[zipf.sample(rng.next_f64())];
                    let u = rng.next_f64();
                    let priority = if u < pop.live_frac {
                        Priority::Interactive
                    } else {
                        // Rescale the leftover mass over the VOD mix.
                        let rest = (1.0 - pop.live_frac).max(1e-12);
                        let v = (u - pop.live_frac) / rest;
                        let std_w = self.mix[1] / (self.mix[1] + self.mix[2]).max(1e-12);
                        if v < std_w {
                            Priority::Standard
                        } else {
                            Priority::Batch
                        }
                    };
                    let live = priority == Priority::Interactive;
                    let pick = |len: usize| if live { 0 } else { len - 1 };
                    (
                        video,
                        self.presets[pick(self.presets.len())],
                        self.crf_choices[pick(self.crf_choices.len())],
                        self.refs_choices[pick(self.refs_choices.len())],
                        priority,
                    )
                }
                _ => {
                    // Legacy uniform draws — byte-identical to every trace
                    // generated before the popularity model existed.
                    let video = &self.videos[rng.next_range(self.videos.len() as u64) as usize];
                    let preset = self.presets[rng.next_range(self.presets.len() as u64) as usize];
                    let crf =
                        self.crf_choices[rng.next_range(self.crf_choices.len() as u64) as usize];
                    let refs =
                        self.refs_choices[rng.next_range(self.refs_choices.len() as u64) as usize];
                    let priority = Priority::ALL[rng.pick_weighted(&self.mix)];
                    (video, preset, crf, refs, priority)
                }
            };
            let k = priority.index();
            jobs.push(JobSpec {
                id,
                arrival_us: t_us,
                task: TranscodeTask::new(video, crf, refs, preset),
                priority,
                deadline_us: t_us + self.slo_budget_us[k],
                timeout_us: self.timeout_us[k],
            });
        }
        Ok(jobs)
    }
}

/// Renders an arrival trace in the documented one-line-per-job format:
///
/// ```text
/// # id arrival_us class video crf refs preset deadline_us timeout_us
/// 0 417322 standard bike 23 3 medium 6417322 10000000
/// ```
pub fn render_trace(jobs: &[JobSpec]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    out.push_str("# id arrival_us class video crf refs preset deadline_us timeout_us\n");
    for j in jobs {
        let _ = writeln!(
            out,
            "{} {} {} {} {} {} {} {} {}",
            j.id,
            j.arrival_us,
            j.priority.name(),
            j.task.video,
            j.task.crf,
            j.task.refs,
            j.task.preset.name(),
            j.deadline_us,
            j.timeout_us
        );
    }
    out
}

/// Parses the format written by [`render_trace`]. Lines starting with `#`
/// and blank lines are ignored.
///
/// # Errors
///
/// Returns [`ServeError::Trace`] with the offending line number.
pub fn parse_trace(text: &str) -> Result<Vec<JobSpec>, ServeError> {
    let mut jobs = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let err = |message: &str| ServeError::Trace {
            line: i + 1,
            message: message.to_owned(),
        };
        let f: Vec<&str> = line.split_whitespace().collect();
        if f.len() != 9 {
            return Err(err(&format!("expected 9 fields, got {}", f.len())));
        }
        let parse_u64 =
            |s: &str, what: &str| s.parse::<u64>().map_err(|_| err(&format!("bad {what}")));
        let parse_u8 =
            |s: &str, what: &str| s.parse::<u8>().map_err(|_| err(&format!("bad {what}")));
        let priority = Priority::from_name(f[2]).ok_or_else(|| err("unknown class"))?;
        let preset = Preset::from_name(f[6]).ok_or_else(|| err("unknown preset"))?;
        jobs.push(JobSpec {
            id: parse_u64(f[0], "id")?,
            arrival_us: parse_u64(f[1], "arrival_us")?,
            task: TranscodeTask::new(
                f[3],
                parse_u8(f[4], "crf")?,
                parse_u8(f[5], "refs")?,
                preset,
            ),
            priority,
            deadline_us: parse_u64(f[7], "deadline_us")?,
            timeout_us: parse_u64(f[8], "timeout_us")?,
        });
    }
    Ok(jobs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let spec = WorkloadSpec::bundled(42);
        let a = spec.generate().unwrap();
        let b = spec.generate().unwrap();
        assert_eq!(a, b);
        assert_eq!(a.len(), 400);
    }

    #[test]
    fn different_seeds_differ() {
        let a = WorkloadSpec::smoke(1).generate().unwrap();
        let b = WorkloadSpec::smoke(2).generate().unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn arrivals_are_monotonic_and_deadlines_follow_class() {
        let spec = WorkloadSpec::bundled(7);
        let jobs = spec.generate().unwrap();
        for w in jobs.windows(2) {
            assert!(w[0].arrival_us <= w[1].arrival_us);
        }
        for j in &jobs {
            let k = j.priority.index();
            assert_eq!(j.deadline_us, j.arrival_us + spec.slo_budget_us[k]);
            assert_eq!(j.timeout_us, spec.timeout_us[k]);
        }
    }

    #[test]
    fn mean_rate_roughly_matches_spec() {
        let spec = WorkloadSpec {
            jobs: 5000,
            ..WorkloadSpec::bundled(11)
        };
        let jobs = spec.generate().unwrap();
        let span_s = jobs.last().unwrap().arrival_us as f64 / 1e6;
        let rate = jobs.len() as f64 / span_s;
        assert!(
            (rate - spec.arrival_rate_hz).abs() / spec.arrival_rate_hz < 0.1,
            "rate {rate} vs {}",
            spec.arrival_rate_hz
        );
    }

    #[test]
    fn all_classes_appear_in_the_bundled_mix() {
        let jobs = WorkloadSpec::bundled(42).generate().unwrap();
        for p in Priority::ALL {
            assert!(jobs.iter().any(|j| j.priority == p), "{:?} missing", p);
        }
    }

    #[test]
    fn popularity_trace_is_deterministic_and_skewed() {
        let spec = WorkloadSpec {
            jobs: 2000,
            ..WorkloadSpec::bundled(42)
        }
        .with_popularity(1.0, 0.3);
        let a = spec.generate().unwrap();
        let b = spec.generate().unwrap();
        assert_eq!(a, b);
        let count = |video: &str| a.iter().filter(|j| j.task.video == video).count();
        let hot = count(&spec.videos[0]);
        let cold = count(spec.videos.last().unwrap());
        assert!(hot > 4 * cold, "zipf head {hot} vs tail {cold}");
        let live = a
            .iter()
            .filter(|j| j.priority == Priority::Interactive)
            .count() as f64
            / a.len() as f64;
        assert!((live - 0.3).abs() < 0.05, "live fraction {live}");
        // Knobs are pinned per class: live takes the first choices, VOD
        // the last, so hot-video repeats share cache keys.
        for j in &a {
            if j.priority == Priority::Interactive {
                assert_eq!(j.task.preset, spec.presets[0]);
                assert_eq!(j.task.crf, spec.crf_choices[0]);
            } else {
                assert_eq!(j.task.preset, *spec.presets.last().unwrap());
                assert_eq!(j.task.crf, *spec.crf_choices.last().unwrap());
            }
        }
    }

    #[test]
    fn trace_roundtrips() {
        let jobs = WorkloadSpec::smoke(42).generate().unwrap();
        let text = render_trace(&jobs);
        let parsed = parse_trace(&text).unwrap();
        assert_eq!(jobs, parsed);
    }

    #[test]
    fn parse_rejects_bad_lines() {
        assert!(matches!(
            parse_trace("0 1 standard bike 23 3"),
            Err(ServeError::Trace { line: 1, .. })
        ));
        assert!(matches!(
            parse_trace("# ok\n0 1 vip bike 23 3 medium 5 6"),
            Err(ServeError::Trace { line: 2, .. })
        ));
        assert!(parse_trace("# only comments\n\n").unwrap().is_empty());
    }

    #[test]
    fn empty_choice_lists_are_rejected() {
        let mut spec = WorkloadSpec::smoke(1);
        spec.videos.clear();
        assert_eq!(spec.generate(), Err(ServeError::EmptyWorkload));
        let spec = WorkloadSpec {
            jobs: 0,
            ..WorkloadSpec::smoke(1)
        };
        assert_eq!(spec.generate(), Err(ServeError::EmptyWorkload));
    }
}
