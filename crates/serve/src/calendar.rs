//! An indexed calendar queue for the XL discrete-event engine.
//!
//! A binary heap costs O(log pending) per operation and, more importantly
//! for determinism audits, hides the event order inside `Ord` impls. The
//! calendar queue (Brown 1988) hashes each event into a bucket by
//! `time / width mod n_buckets` and walks buckets in time order; with the
//! width matched to the mean event spacing, push and pop are amortized
//! O(1). Ordering here is explicit: events pop in ascending `(time, seq)`,
//! exactly the total order the historical heap produced, so swapping the
//! container cannot perturb a byte of output.
//!
//! Far-future outliers (a finish long after the arrival horizon) would make
//! the bucket walk spin over empty days, so a walk that crosses a whole
//! year without finding anything falls back to a direct global-minimum
//! scan and jumps the cursor there.

/// Amortized-O(1) time-ordered event queue.
#[derive(Debug)]
pub struct CalendarQueue<T> {
    buckets: Vec<Vec<(u64, u64, T)>>,
    /// Bucket width in µs of simulated time.
    width: u64,
    /// Absolute day index (`t / width`) the cursor is parked on.
    day: u64,
    len: usize,
}

impl<T> CalendarQueue<T> {
    /// Builds a queue sized for roughly `expected_events` spread over
    /// `horizon_us` of simulated time.
    pub fn new(horizon_us: u64, expected_events: usize) -> CalendarQueue<T> {
        let n = expected_events.clamp(16, 1 << 21).next_power_of_two();
        let width = (horizon_us / n as u64).max(1);
        CalendarQueue {
            buckets: (0..n).map(|_| Vec::new()).collect(),
            width,
            day: 0,
            len: 0,
        }
    }

    /// Pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn bucket_of(&self, t: u64) -> usize {
        ((t / self.width) % self.buckets.len() as u64) as usize
    }

    /// Schedules an event. `seq` must make `(t, seq)` unique; events pop in
    /// ascending `(t, seq)`.
    pub fn push(&mut self, t: u64, seq: u64, ev: T) {
        let b = self.bucket_of(t);
        self.buckets[b].push((t, seq, ev));
        self.len += 1;
        // Never park the cursor past a newly scheduled event.
        let day = t / self.width;
        if day < self.day {
            self.day = day;
        }
    }

    /// The smallest `(t, seq)` pending, without removing it.
    pub fn peek_key(&mut self) -> Option<(u64, u64)> {
        if self.len == 0 {
            return None;
        }
        let (b, i) = self.locate_min();
        let e = &self.buckets[b][i];
        Some((e.0, e.1))
    }

    /// Removes and returns the smallest `(t, seq)` event.
    pub fn pop(&mut self) -> Option<(u64, u64, T)> {
        if self.len == 0 {
            return None;
        }
        let (b, i) = self.locate_min();
        self.len -= 1;
        Some(self.buckets[b].swap_remove(i))
    }

    /// Finds the bucket and offset of the minimum event, advancing the day
    /// cursor. Amortized O(1); falls back to a global scan after walking a
    /// full empty year.
    fn locate_min(&mut self) -> (usize, usize) {
        debug_assert!(self.len > 0);
        let n = self.buckets.len() as u64;
        for _ in 0..n {
            let b = (self.day % n) as usize;
            let mut best: Option<(u64, u64, usize)> = None;
            for (i, e) in self.buckets[b].iter().enumerate() {
                if e.0 / self.width == self.day {
                    let key = (e.0, e.1, i);
                    if best.is_none_or(|cur| (key.0, key.1) < (cur.0, cur.1)) {
                        best = Some(key);
                    }
                }
            }
            if let Some((_, _, i)) = best {
                return (b, i);
            }
            self.day += 1;
        }
        // A whole year was empty: jump straight to the global minimum.
        let mut best: Option<(u64, u64, usize, usize)> = None;
        for (b, bucket) in self.buckets.iter().enumerate() {
            for (i, e) in bucket.iter().enumerate() {
                if best.is_none_or(|cur| (e.0, e.1) < (cur.0, cur.1)) {
                    best = Some((e.0, e.1, b, i));
                }
            }
        }
        let (t, _, b, i) = best.expect("len > 0");
        self.day = t / self.width;
        (b, i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_then_seq_order() {
        let mut q = CalendarQueue::new(1000, 16);
        q.push(50, 3, "c");
        q.push(10, 1, "a");
        q.push(50, 2, "b");
        q.push(999, 4, "d");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, _, v)| v)).collect();
        assert_eq!(order, vec!["a", "b", "c", "d"]);
        assert!(q.is_empty());
    }

    #[test]
    fn matches_a_heap_on_random_workload() {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        let mut state = 0xCA1E_4D42u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1);
            state >> 33
        };
        let mut cal = CalendarQueue::new(100_000, 64);
        let mut heap = BinaryHeap::new();
        let mut now = 0u64;
        for (seq, round) in (0..5_000u64).enumerate() {
            // Interleave pushes (at or after `now`) and pops.
            let t = now + next() % 1_000;
            cal.push(t, seq as u64, round);
            heap.push(Reverse((t, seq as u64, round)));
            if round % 3 == 0 {
                let got = cal.pop();
                let want = heap.pop().map(|Reverse(x)| x);
                assert_eq!(got, want, "round {round}");
                if let Some((t, _, _)) = got {
                    now = t;
                }
            }
        }
        while let Some(want) = heap.pop() {
            let Reverse((t, s, v)) = want;
            assert_eq!(cal.pop(), Some((t, s, v)));
        }
        assert!(cal.pop().is_none());
    }

    #[test]
    fn far_future_outlier_does_not_wedge_the_walk() {
        let mut q = CalendarQueue::new(1_000, 16);
        q.push(5, 0, 'x');
        q.push(10_000_000, 1, 'y'); // ~10k years past the horizon hint
        assert_eq!(q.pop(), Some((5, 0, 'x')));
        assert_eq!(q.pop(), Some((10_000_000, 1, 'y')));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn push_below_cursor_is_still_found_first() {
        let mut q = CalendarQueue::new(1_000, 16);
        q.push(900, 0, "late");
        assert_eq!(q.peek_key(), Some((900, 0)));
        // Cursor has advanced to day(900); a new earlier event must rewind it.
        q.push(100, 1, "early");
        assert_eq!(q.pop().map(|e| e.2), Some("early"));
        assert_eq!(q.pop().map(|e| e.2), Some("late"));
    }
}
