//! Throughput-model-driven service-time prediction.
//!
//! The smart dispatch policy must rank (job, server) pairs *without running
//! them* — the serving-layer analog of the paper's characterization-driven
//! scheduler, in the spirit of PALMED-style predicted-cost placement. The
//! model has two faces:
//!
//! * [`CostModel::predicted_us`] — what the policy is allowed to see: a
//!   closed-form throughput estimate from the catalog entry (resolution ×
//!   fps), the encoder parameters (preset/crf/refs trends from Figures 3/6)
//!   and the parameter-trend affinity model of
//!   [`vtx_sched::affinity::predict_benefit`] applied to the server's
//!   Table IV configuration and speed grade.
//! * [`CostModel::port_predicted_us`] — the prediction refined by the
//!   issue-port execution model (`vtx-port`): the job's preset-rank uop mix
//!   is solved against the server's port layout, and the relief a wider
//!   layout offers (the `be_op2` column's seventh port) divides the
//!   predicted time. Factors are precomputed per (config, preset rank) at
//!   construction, so the refinement costs one table lookup per query.
//! * [`CostModel::true_us`] — what the discrete-event engine bills: the
//!   *port-refined* prediction times deterministic lognormal-ish noise that
//!   is a pure function of `(seed, job, server)`. Truth never depends on
//!   the policy or on dispatch order, so policies compete on identical
//!   ground and any run is exactly reproducible — and a policy that ranks
//!   by the port-refined prediction optimizes the billed objective exactly,
//!   while port-blind policies optimize an approximation of it.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use vtx_codec::Preset;
use vtx_frame::vbench;
use vtx_port::{dispatch_bound, UopMix};
use vtx_sched::affinity::predict_benefit;
use vtx_sched::TranscodeTask;
use vtx_uarch::config::UarchConfig;

use crate::fleet::ServerSpec;
use crate::rng::{derive, SplitMix64};
use crate::workload::JobSpec;

/// Per-preset relative encode cost (fastest → slowest), calibrated to the
/// Figure 6 speed spread.
const PRESET_COST: [f64; 10] = [0.30, 0.38, 0.50, 0.65, 0.85, 1.0, 1.6, 2.6, 4.2, 8.0];

/// Pixels per second a reference (speed 1.0) server encodes at preset
/// `medium`, crf 23.
const PIXEL_RATE: f64 = 80.0e6;

/// Nominal clip duration in seconds (vbench clips are ~5 s excerpts).
const CLIP_SECONDS: f64 = 5.0;

/// Deterministic service-time model over a video catalog.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Noise seed (usually the workload seed).
    pub seed: u64,
    /// Multiplier on the affinity benefit share: how strongly a matching
    /// Table IV configuration speeds a task up.
    pub affinity_gain: f64,
    /// Lognormal sigma of the per-job size surprise (same on all servers).
    pub sigma_job: f64,
    /// Lognormal sigma of the per-(job, server) residual.
    pub sigma_pair: f64,
    /// Multiplier on the port-model relief: how strongly a wider port
    /// layout shortens a port-bound job. 1.0 = take the solver at its word.
    pub port_gain: f64,
    /// Catalog cache: video short name → (pixels per clip, entropy).
    catalog: BTreeMap<String, (f64, f64)>,
    /// Precomputed port relief per (config name → preset rank): the
    /// relative dispatch-bound gain of that config's port layout over the
    /// baseline layout for the rank's dominant-kernel uop mix (0 when the
    /// layouts are identical).
    port_relief: BTreeMap<String, [f64; 10]>,
}

impl CostModel {
    /// Builds the model over the full vbench catalog.
    pub fn new(seed: u64) -> Self {
        let catalog = vbench::catalog()
            .into_iter()
            .map(|v| {
                let px = f64::from(v.nominal_width)
                    * f64::from(v.nominal_height)
                    * f64::from(v.fps)
                    * CLIP_SECONDS;
                (v.short_name, (px, v.entropy))
            })
            .collect();
        let baseline = UarchConfig::baseline();
        let mut port_relief = BTreeMap::new();
        for cfg in UarchConfig::table_iv() {
            let mut reliefs = [0.0f64; 10];
            for (rank, r) in reliefs.iter_mut().enumerate() {
                let mix = UopMix::for_preset_rank(rank);
                if let (Ok(base), Ok(here)) =
                    (dispatch_bound(&baseline, &mix), dispatch_bound(&cfg, &mix))
                {
                    *r = ((here - base) / base.max(f64::MIN_POSITIVE)).max(0.0);
                }
            }
            port_relief.insert(cfg.name.clone(), reliefs);
        }
        CostModel {
            seed,
            affinity_gain: 2.5,
            sigma_job: 0.45,
            sigma_pair: 0.30,
            port_gain: 1.0,
            catalog,
            port_relief,
        }
    }

    /// Whether the model can price this video.
    pub fn knows(&self, video: &str) -> bool {
        self.catalog.contains_key(video)
    }

    fn lookup(&self, video: &str) -> (f64, f64) {
        // Unknown videos are rejected at admission; mid-catalog defaults
        // keep the model total if one slips through.
        self.catalog
            .get(video)
            .copied()
            .unwrap_or((1280.0 * 720.0 * 30.0 * CLIP_SECONDS, 3.0))
    }

    /// Baseline-server seconds for a task (speed 1.0, no affinity gain).
    fn base_seconds(&self, task: &TranscodeTask) -> f64 {
        let (px, _) = self.lookup(&task.video);
        let rank = Preset::ALL
            .iter()
            .position(|&p| p == task.preset)
            .unwrap_or(5);
        let preset_factor = PRESET_COST[rank];
        // Lower CRF = more bits = more work (Figure 2's speed edge).
        let crf_factor = 1.6 - 0.015 * f64::from(task.crf);
        let refs_factor = 1.0 + 0.06 * f64::from(task.refs.saturating_sub(1));
        (px * preset_factor * crf_factor.max(0.2) * refs_factor / PIXEL_RATE).max(1e-3)
    }

    /// The policy-visible prediction in microseconds (≥ 1).
    pub fn predicted_us(&self, job: &JobSpec, server: &ServerSpec) -> u64 {
        let (_, entropy) = self.lookup(&job.task.video);
        let gain = server
            .config_index()
            .map(|k| self.affinity_gain * predict_benefit(&job.task, entropy)[k])
            .unwrap_or(0.0);
        let secs = self.base_seconds(&job.task) / (server.speed * (1.0 + gain));
        ((secs * 1e6).round() as u64).max(1)
    }

    /// The port-model speedup factor (`<= 1.0`) for this (job, server)
    /// pair: how much the server's port layout shortens the job relative to
    /// the baseline layout, for the job's preset-rank uop mix. 1.0 for
    /// every layout identical to the baseline (only the core-widened
    /// `be_op2` differs) and for unknown configs.
    pub fn port_factor(&self, job: &JobSpec, server: &ServerSpec) -> f64 {
        let rank = Preset::ALL
            .iter()
            .position(|&p| p == job.task.preset)
            .unwrap_or(5);
        let relief = self
            .port_relief
            .get(&server.uarch.name)
            .map_or(0.0, |r| r[rank]);
        1.0 / (1.0 + self.port_gain * relief)
    }

    /// The port-refined prediction in microseconds (≥ 1):
    /// [`CostModel::predicted_us`] × [`CostModel::port_factor`].
    pub fn port_predicted_us(&self, job: &JobSpec, server: &ServerSpec) -> u64 {
        let refined = self.predicted_us(job, server) as f64 * self.port_factor(job, server);
        (refined.round() as u64).max(1)
    }

    /// The engine-billed truth in microseconds: port-refined prediction ×
    /// job surprise × pair residual. Pure in `(seed, job.id, server
    /// index)`.
    pub fn true_us(&self, job: &JobSpec, server_idx: usize, server: &ServerSpec) -> u64 {
        let predicted = self.port_predicted_us(job, server) as f64;
        let job_noise = lognormalish(
            derive(self.seed, job.id.wrapping_mul(2) + 1),
            self.sigma_job,
        );
        let pair_noise = lognormalish(
            derive(derive(self.seed, job.id), server_idx as u64 + 1),
            self.sigma_pair,
        );
        ((predicted * job_noise * pair_noise).round() as u64).max(1)
    }
}

/// A cheap lognormal-ish multiplier: exp(sigma · z) with z an
/// Irwin–Hall(3) approximation of a standard normal (variance-corrected).
fn lognormalish(seed: u64, sigma: f64) -> f64 {
    let mut r = SplitMix64::new(seed);
    // Sum of 3 uniforms has mean 1.5, std 0.5; rescale to unit std.
    let z = (r.next_f64() + r.next_f64() + r.next_f64() - 1.5) * 2.0;
    (sigma * z).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet::Fleet;
    use crate::workload::{Priority, WorkloadSpec};

    fn job(video: &str, crf: u8, refs: u8, preset: Preset) -> JobSpec {
        JobSpec {
            id: 1,
            arrival_us: 0,
            task: TranscodeTask::new(video, crf, refs, preset),
            priority: Priority::Standard,
            deadline_us: 10_000_000,
            timeout_us: 10_000_000,
        }
    }

    #[test]
    fn slower_presets_cost_more() {
        let m = CostModel::new(42);
        let f = Fleet::table_iv();
        let s = f.server(0);
        let fast = m.predicted_us(&job("bike", 23, 3, Preset::Ultrafast), s);
        let slow = m.predicted_us(&job("bike", 23, 3, Preset::Veryslow), s);
        assert!(slow > 5 * fast, "{slow} vs {fast}");
    }

    #[test]
    fn bigger_videos_cost_more() {
        let m = CostModel::new(42);
        let f = Fleet::table_iv();
        let s = f.server(1);
        let small = m.predicted_us(&job("cat", 23, 3, Preset::Medium), s); // 480p
        let large = m.predicted_us(&job("presentation", 23, 3, Preset::Medium), s); // 1080p
        assert!(large > 3 * small, "{large} vs {small}");
    }

    #[test]
    fn faster_servers_and_affinity_lower_the_prediction() {
        let m = CostModel::new(42);
        let mut a = Fleet::table_iv().server(0).clone(); // baseline
        let j = job("hall", 23, 3, Preset::Medium); // high-entropy clip
        a.speed = 1.0;
        let base = m.predicted_us(&j, &a);
        let mut fast = a.clone();
        fast.speed = 2.0;
        assert!(m.predicted_us(&j, &fast) < base);
        // A matching config (fe_op attacks the front-end share a
        // high-entropy clip loses slots to) beats an equal-speed baseline.
        let f = Fleet::table_iv();
        let fe = f
            .servers()
            .iter()
            .find(|s| s.uarch.name == "fe_op")
            .unwrap();
        let mut fe_ref = fe.clone();
        fe_ref.speed = 1.0;
        assert!(m.predicted_us(&j, &fe_ref) < base);
    }

    #[test]
    fn truth_is_a_pure_function_of_seed_job_server() {
        let m = CostModel::new(42);
        let f = Fleet::table_iv();
        let j = job("bike", 23, 3, Preset::Medium);
        let a = m.true_us(&j, 2, f.server(2));
        let b = m.true_us(&j, 2, f.server(2));
        assert_eq!(a, b);
        // Different server index → different residual.
        assert_ne!(a, m.true_us(&j, 3, f.server(2)));
        // Different seed → different noise.
        let m2 = CostModel::new(43);
        assert_ne!(a, m2.true_us(&j, 2, f.server(2)));
    }

    #[test]
    fn truth_tracks_prediction_on_average() {
        let m = CostModel::new(42);
        let f = Fleet::table_iv();
        let jobs = WorkloadSpec::bundled(42).generate().unwrap();
        let mut ratio_sum = 0.0;
        for j in &jobs {
            let p = m.predicted_us(j, f.server(1)) as f64;
            let t = m.true_us(j, 1, f.server(1)) as f64;
            ratio_sum += t / p;
        }
        let mean_ratio = ratio_sum / jobs.len() as f64;
        // exp(sigma²/2) bias of the lognormal noise stays near 1.
        assert!((0.8..1.6).contains(&mean_ratio), "mean ratio {mean_ratio}");
    }

    #[test]
    fn port_factor_discounts_only_the_widened_core() {
        let m = CostModel::new(42);
        let f = Fleet::table_iv();
        let j = job("bike", 23, 3, Preset::Slower); // SATD/trellis-heavy rank
        for s in f.servers() {
            let factor = m.port_factor(&j, s);
            assert!(
                factor <= 1.0 + 1e-12 && factor > 0.5,
                "{}: {factor}",
                s.name
            );
            if s.uarch.name == "be_op2" {
                assert!(factor < 1.0, "be_op2's 7th port must discount");
                assert!(m.port_predicted_us(&j, s) < m.predicted_us(&j, s));
            } else {
                assert!((factor - 1.0).abs() < 1e-12, "{}: {factor}", s.name);
                assert_eq!(m.port_predicted_us(&j, s), m.predicted_us(&j, s));
            }
        }
    }

    #[test]
    fn truth_bills_the_port_refined_prediction() {
        let m = CostModel::new(42);
        let f = Fleet::table_iv();
        let j = job("bike", 23, 3, Preset::Veryslow);
        let be_op2 = f
            .servers()
            .iter()
            .position(|s| s.uarch.name == "be_op2")
            .unwrap();
        // Zeroing the port gain must raise the billed time on be_op2 (the
        // refinement is inside the truth, not just the prediction).
        let mut blind = m.clone();
        blind.port_gain = 0.0;
        let with_ports = m.true_us(&j, be_op2, f.server(be_op2));
        let without = blind.true_us(&j, be_op2, f.server(be_op2));
        assert!(with_ports < without, "{with_ports} vs {without}");
        // On a baseline-layout server the two models agree exactly.
        assert_eq!(
            m.true_us(&j, 1, f.server(1)),
            blind.true_us(&j, 1, f.server(1))
        );
    }

    #[test]
    fn knows_the_whole_catalog() {
        let m = CostModel::new(1);
        assert!(m.knows("bike"));
        assert!(m.knows("bbb"));
        assert!(!m.knows("nope"));
    }
}
