//! # vtx-serve — an online transcoding service layer
//!
//! The paper characterizes transcoding as an *offline batch* problem:
//! Figure 9's schedulers assign a fixed task list to a fixed fleet and are
//! judged on makespan. Production transcoding is a *service*: jobs arrive
//! continuously, carry per-class latency expectations, and an overloaded
//! system must decide what to shed. This crate rebuilds the paper's
//! characterization-driven scheduling insight in that setting:
//!
//! * [`workload`] — a seeded open-loop load generator over the vbench
//!   catalog: Poisson arrivals, three service classes (interactive /
//!   standard / batch) with per-class SLO budgets and timeouts, plus a
//!   plain-text arrival-trace format ([`workload::render_trace`] /
//!   [`workload::parse_trace`]) for reproducible experiments.
//! * [`queue`] — bounded per-class admission queues with backpressure,
//!   priority load-shedding and deadline expiry.
//! * [`policy`] — one [`policy::DispatchPolicy`] trait, three policies:
//!   `random` and `round_robin` baselines and `smart`, which prices
//!   (job × idle-server) pairs with the affinity model of `vtx-sched` and
//!   solves the rectangular assignment with the Hungarian solver.
//! * [`fleet`] — heterogeneous fleets of Table IV microarchitectures with
//!   mixed speed grades.
//! * [`cost`] — the two-faced service-time model: a policy-visible
//!   prediction and an engine-billed truth that is a pure function of
//!   `(seed, job, server)`, so policies compete on identical ground.
//! * [`service`] — the shared [`service::ServiceCore`] (admission, dispatch,
//!   accounting, event log) used by **both** drivers.
//! * [`sim`] — the deterministic discrete-event fleet engine: same seed in,
//!   byte-identical event log, assignment vector and report out. Fleets at
//!   XL scale (≥ [`cells::XL_FLEET_THRESHOLD`] servers) run on an indexed
//!   fast path: a [`calendar`] queue instead of a heap, an incremental
//!   [`cells::IdleIndex`] instead of per-event idle scans, and two-level
//!   dispatch (consistent-hash + power-of-two-choices across
//!   [`cells::CellPlan`] cells, ε-scaling auction within a cell).
//! * [`exec`] — the real executor: wall-clock time, per-server worker
//!   threads running actual profiled [`vtx_core::Transcoder`] jobs through
//!   the same service core.
//! * [`segment`] — segmented ABR serving: a catalog job decomposes into
//!   per-(segment, rung) dispatch units ([`segment::SegmentPlan`]) that
//!   flow through the same machinery; completed jobs package into CMAF
//!   segments and HLS manifests via `vtx-container`, byte-deterministic
//!   per seed in both drivers. Overload shedding is ladder-aware
//!   (unit-granular, highest-quality rung displaced first) and delivery
//!   is partial: [`segment::SegmentPlan::manifests_partial`] serves the
//!   finished rungs of an incomplete job under a degraded-flagged master.
//! * segment caching (`vtx-cache`) — [`service::ServeConfig::cache`] puts
//!   a byte-capacity-bounded deterministic segment cache keyed by
//!   (video, knobs, rung, segment) in front of dispatch, with pluggable
//!   LRU / LFU / GDSF eviction: a hit skips the transcode and bills only
//!   the lookup cost, a miss populates on completion, and both drivers
//!   consume it identically. Pair with
//!   [`workload::WorkloadSpec::with_popularity`] (seeded Zipf catalog
//!   skew + live/VOD split) to model repeat-heavy production traffic.
//! * [`report`] — exact p50/p90/p99 sojourn statistics, shed/violation
//!   rates, per-server utilization, deterministic text rendering.
//! * [`chaos`] — fault injection and recovery: a seeded [`chaos::FaultPlan`]
//!   (fail-stop crashes, fail-slow stragglers, transient stalls) consumed by
//!   both engines, a heartbeat failure detector, automatic requeue of
//!   in-flight jobs off dead servers, hedged re-dispatch for the interactive
//!   class, and a graceful-degradation ladder that steps the x264 preset
//!   toward `ultrafast` when detected capacity drops below offered load.
//!
//! Every run also feeds an observability plane (`vtx-obs`) through the
//! shared service core: per-job lifecycle traces (exportable as Chrome
//! trace-event tracks), windowed per-class quantile sketches, and a
//! multi-window SLO burn-rate monitor whose alert transitions appear in
//! the deterministic event stream and attribute degrade steps.
//!
//! # Quickstart
//!
//! ```
//! use vtx_serve::fleet::Fleet;
//! use vtx_serve::policy::policy_by_name;
//! use vtx_serve::service::ServeConfig;
//! use vtx_serve::sim::simulate;
//! use vtx_serve::workload::WorkloadSpec;
//!
//! let workload = WorkloadSpec::smoke(42);
//! let out = simulate(
//!     &workload,
//!     Fleet::table_iv(),
//!     policy_by_name("smart", 42).unwrap(),
//!     ServeConfig::default(),
//! )
//! .unwrap();
//! assert_eq!(out.report.offered, 60);
//! assert_eq!(out.report.completed + out.report.shed_total(), 60);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod calendar;
pub mod cells;
pub mod chaos;
pub mod cost;
pub mod error;
pub mod exec;
pub mod fleet;
pub mod policy;
pub mod queue;
pub mod report;
pub mod rng;
pub mod segment;
pub mod service;
pub mod sim;
pub mod workload;

pub use chaos::{ChaosConfig, FaultPlan};
pub use error::ServeError;
pub use fleet::{Fleet, ServerSpec};
pub use policy::{policy_by_name, DispatchPolicy};
pub use report::{FaultAccounting, SegmentStats, ServingReport};
pub use segment::{SegmentOptions, SegmentPlan};
pub use service::{ServeConfig, ServiceCore, CLASS_NAMES};
pub use sim::{simulate, SimOutcome};
pub use workload::{JobSpec, Priority, WorkloadSpec};
