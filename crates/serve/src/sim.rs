//! The deterministic discrete-event fleet engine.
//!
//! Arrivals come from a pre-generated trace; service times come from
//! [`CostModel::true_us`], which is a pure function of `(seed, job,
//! server)`. The event heap orders by `(time, sequence)` so ties break
//! identically run-to-run; given the same workload, fleet and policy, two
//! runs produce byte-identical event logs, assignment vectors and reports.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use vtx_telemetry::Span;

use crate::cost::CostModel;
use crate::error::ServeError;
use crate::fleet::Fleet;
use crate::policy::DispatchPolicy;
use crate::queue::PendingJob;
use crate::report::ServingReport;
use crate::service::{EventRecord, ServeConfig, ServiceCore};
use crate::workload::{JobSpec, WorkloadSpec};

/// What a simulated serving run produced.
#[derive(Debug)]
pub struct SimOutcome {
    /// Aggregate statistics.
    pub report: ServingReport,
    /// Full event log (when enabled in [`ServeConfig`]).
    pub event_log: Vec<EventRecord>,
    /// `(job id, server)` pairs in dispatch order.
    pub assignments: Vec<(u64, usize)>,
}

/// Heap payload. `Finish` carries everything needed to book the job so the
/// engine never looks anything up out of order.
#[derive(Debug)]
enum SimEvent {
    Arrive(JobSpec),
    Finish {
        job: PendingJob,
        server: usize,
        started_us: u64,
        timed_out: bool,
    },
}

/// Runs a workload through a fleet under a policy, fully simulated.
///
/// # Errors
///
/// Returns [`ServeError::EmptyWorkload`] for an empty trace and
/// [`ServeError::UnknownVideo`] when a job names a video the cost model
/// cannot price.
pub fn simulate(
    workload: &WorkloadSpec,
    fleet: Fleet,
    policy: Box<dyn DispatchPolicy>,
    cfg: ServeConfig,
) -> Result<SimOutcome, ServeError> {
    let jobs = workload.generate()?;
    simulate_trace(&jobs, workload.seed, fleet, policy, cfg)
}

/// Runs a pre-generated (or hand-written / parsed) trace.
///
/// # Errors
///
/// Same conditions as [`simulate`].
pub fn simulate_trace(
    jobs: &[JobSpec],
    seed: u64,
    fleet: Fleet,
    policy: Box<dyn DispatchPolicy>,
    cfg: ServeConfig,
) -> Result<SimOutcome, ServeError> {
    if jobs.is_empty() {
        return Err(ServeError::EmptyWorkload);
    }
    let model = CostModel::new(seed);
    for j in jobs {
        if !model.knows(&j.task.video) {
            return Err(ServeError::UnknownVideo {
                name: j.task.video.clone(),
            });
        }
    }
    let _span = Span::enter_with("serve/simulate", |a| {
        a.u64("jobs", jobs.len() as u64);
        a.u64("seed", seed);
    });

    let mut core = ServiceCore::new(cfg, fleet, model, policy);
    let n_servers = core.fleet().len();
    let mut busy = vec![false; n_servers];

    // min-heap on (time, seq); seq is a tie-breaker making pop order total.
    let mut heap: BinaryHeap<Reverse<(u64, u64, SimEventBox)>> = BinaryHeap::new();
    let mut seq: u64 = 0;
    for j in jobs {
        heap.push(Reverse((
            j.arrival_us,
            seq,
            SimEventBox(SimEvent::Arrive(j.clone())),
        )));
        seq += 1;
    }

    let mut now: u64 = 0;
    while let Some(Reverse((t, _, SimEventBox(ev)))) = heap.pop() {
        now = t;
        match ev {
            SimEvent::Arrive(spec) => {
                core.offer(spec, now);
            }
            SimEvent::Finish {
                job,
                server,
                started_us,
                timed_out,
            } => {
                busy[server] = false;
                if timed_out {
                    core.timeout(job, server, started_us, now);
                } else {
                    core.complete(&job, server, started_us, now);
                }
            }
        }
        // Every state change is a dispatch opportunity.
        let idle: Vec<usize> = (0..n_servers).filter(|&s| !busy[s]).collect();
        for (job, server) in core.dispatch(&idle, now) {
            busy[server] = true;
            let true_us = core
                .model()
                .true_us(&job.spec, server, core.fleet().server(server));
            // A run longer than the job's timeout is killed at the timeout
            // mark; the server is occupied (and billed) until then.
            let (dur, timed_out) = if true_us > job.spec.timeout_us {
                (job.spec.timeout_us, true)
            } else {
                (true_us, false)
            };
            heap.push(Reverse((
                now.saturating_add(dur),
                seq,
                SimEventBox(SimEvent::Finish {
                    job,
                    server,
                    started_us: now,
                    timed_out,
                }),
            )));
            seq += 1;
        }
    }

    let assignments = core.assignments().to_vec();
    let (report, event_log) = core.into_report(seed, now);
    Ok(SimOutcome {
        report,
        event_log,
        assignments,
    })
}

/// Wrapper giving [`SimEvent`] the `Ord` the heap needs without imposing a
/// semantic order on events themselves: the `(time, seq)` prefix of the
/// tuple always differs (seq is unique), so this comparison never runs.
#[derive(Debug)]
struct SimEventBox(SimEvent);

impl PartialEq for SimEventBox {
    fn eq(&self, _: &Self) -> bool {
        true
    }
}
impl Eq for SimEventBox {}
impl PartialOrd for SimEventBox {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for SimEventBox {
    fn cmp(&self, _: &Self) -> std::cmp::Ordering {
        std::cmp::Ordering::Equal
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::policy_by_name;
    use crate::service::render_event_log;

    fn run(policy: &str, seed: u64) -> SimOutcome {
        let w = WorkloadSpec::smoke(seed);
        simulate(
            &w,
            Fleet::table_iv(),
            policy_by_name(policy, seed).unwrap(),
            ServeConfig::default(),
        )
        .unwrap()
    }

    #[test]
    fn every_offered_job_is_accounted_for() {
        for policy in ["random", "rr", "smart"] {
            let out = run(policy, 42);
            let r = &out.report;
            assert_eq!(r.offered, 60, "{policy}");
            assert_eq!(
                r.completed + r.shed_total(),
                r.offered,
                "{policy}: every job completes or is shed"
            );
            assert_eq!(r.sojourn.count, r.completed);
        }
    }

    #[test]
    fn identical_seeds_are_byte_identical() {
        for policy in ["random", "smart"] {
            let a = run(policy, 42);
            let b = run(policy, 42);
            assert_eq!(a.assignments, b.assignments, "{policy}");
            assert_eq!(a.report, b.report, "{policy}");
            assert_eq!(
                render_event_log(&a.event_log),
                render_event_log(&b.event_log),
                "{policy}"
            );
            assert_eq!(a.report.render(), b.report.render(), "{policy}");
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = run("smart", 42);
        let b = run("smart", 43);
        assert_ne!(a.assignments, b.assignments);
    }

    #[test]
    fn empty_trace_is_rejected() {
        let err = simulate_trace(
            &[],
            1,
            Fleet::table_iv(),
            policy_by_name("rr", 1).unwrap(),
            ServeConfig::default(),
        )
        .unwrap_err();
        assert_eq!(err, ServeError::EmptyWorkload);
    }

    #[test]
    fn unknown_video_is_rejected() {
        let w = WorkloadSpec::smoke(1);
        let mut jobs = w.generate().unwrap();
        jobs[0].task.video = "not-in-vbench".to_owned();
        let err = simulate_trace(
            &jobs,
            1,
            Fleet::table_iv(),
            policy_by_name("rr", 1).unwrap(),
            ServeConfig::default(),
        )
        .unwrap_err();
        assert!(matches!(err, ServeError::UnknownVideo { .. }));
    }

    #[test]
    fn makespan_covers_the_last_event() {
        let out = run("rr", 7);
        let last = out
            .event_log
            .iter()
            .map(EventRecord::time_us)
            .max()
            .unwrap();
        assert_eq!(out.report.makespan_us, last);
        assert!(out.report.throughput_jps > 0.0);
    }

    #[test]
    fn tiny_queues_shed_under_load() {
        let w = WorkloadSpec::smoke(42);
        let cfg = ServeConfig {
            queue: crate::queue::QueueConfig {
                per_class_cap: [1, 1, 1],
            },
            ..ServeConfig::default()
        };
        let out = simulate(
            &w,
            Fleet::table_iv(),
            policy_by_name("rr", 42).unwrap(),
            cfg,
        )
        .unwrap();
        assert!(
            out.report.shed_total() > 0,
            "1-deep queues under a 60-job burst must shed"
        );
    }
}
