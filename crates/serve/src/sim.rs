//! The deterministic discrete-event fleet engine.
//!
//! Arrivals come from a pre-generated trace; service times come from
//! [`CostModel::true_us`], which is a pure function of `(seed, job,
//! server)`. Events pop in ascending `(time, sequence)` so ties break
//! identically run-to-run; given the same workload, fleet and policy, two
//! runs produce byte-identical event logs, assignment vectors and reports.
//!
//! # Scale
//!
//! The engine carries no per-event O(fleet) work: events live in an
//! amortized-O(1) [`CalendarQueue`] (popping in exactly the `(time, seq)`
//! order the historical binary heap produced) and the idle set lives in an
//! incrementally maintained [`IdleIndex`] (a Fenwick tree with per-cell
//! counters). Fleets of at least [`XL_FLEET_THRESHOLD`] servers dispatch
//! through [`ServiceCore::dispatch_indexed`] — two-level cell routing with
//! an ε-scaling auction per cell — while smaller fleets keep the
//! historical exact path whose outputs the committed artifacts pin
//! byte-for-byte.
//!
//! # Fault injection
//!
//! When [`ServeConfig::chaos`] carries a [`FaultPlan`], the engine seeds
//! the heap with the plan's events before any arrival (so at equal
//! timestamps a crash always precedes the work it dooms):
//!
//! * **Crash** — the server stops making progress. Jobs already running
//!   there (and jobs dispatched there before the failure detector notices)
//!   are stuck until the detector's *down* verdict fires, at which point
//!   they are requeued through [`ServiceCore::fail`]. That window — nothing
//!   but detection latency — is exactly what the report's MTTR measures.
//! * **Slowdown / stall** — service times are stretched through
//!   [`FaultPlan::inflate`]; a stretched run that blows past the job's
//!   timeout is killed at the timeout mark like any other slow run.
//! * **Hedging** — an interactive job still in flight after
//!   `hedge_after` of its deadline budget gets a duplicate on the best
//!   detected-up idle server; first completion wins, the loser's work is
//!   discarded (and billed — the server really did it).

use std::collections::{BTreeMap, BTreeSet};

use vtx_chaos::{FaultKind, FaultPlan, Health};
use vtx_telemetry::Span;

use crate::calendar::CalendarQueue;
use crate::cells::{CellPlan, IdleIndex, XL_FLEET_THRESHOLD};
use crate::chaos::hedge_due_us;
use crate::cost::CostModel;
use crate::error::ServeError;
use crate::fleet::Fleet;
use crate::policy::DispatchPolicy;
use crate::queue::PendingJob;
use crate::report::ServingReport;
use crate::service::{EventRecord, ServeConfig, ServiceCore};
use crate::workload::{JobSpec, Priority, WorkloadSpec};

/// What a simulated serving run produced.
#[derive(Debug)]
pub struct SimOutcome {
    /// Aggregate statistics.
    pub report: ServingReport,
    /// Full event log (when enabled in [`ServeConfig`]).
    pub event_log: Vec<EventRecord>,
    /// `(job id, server)` pairs in dispatch order.
    pub assignments: Vec<(u64, usize)>,
    /// The finalized observability plane: per-job lifecycle traces,
    /// windowed quantiles and the SLO alert stream.
    pub obs: vtx_obs::ObsPlane,
}

/// Event payload. `Finish` names a `(server, instance)` pair rather than
/// carrying the job: the job lives in the engine's `running` slot so a
/// crash (or requeue) can invalidate a stale finish without queue surgery.
#[derive(Debug)]
enum SimEvent {
    Arrive(JobSpec),
    Finish { server: usize, instance: u64 },
    Crash { server: usize },
    Note { server: usize, kind: FaultKind },
    Suspect { server: usize },
    Down { server: usize },
    HedgeDue { id: u64 },
}

/// One in-flight copy of a job on one server.
#[derive(Debug)]
struct Running {
    job: PendingJob,
    started_us: u64,
    instance: u64,
    is_hedge: bool,
    timed_out: bool,
    /// Satisfied from the segment cache: the server only fronts the
    /// lookup, and completion must not re-insert the artifact.
    cached: bool,
}

/// Runs a workload through a fleet under a policy, fully simulated.
///
/// # Errors
///
/// Returns [`ServeError::EmptyWorkload`] for an empty trace and
/// [`ServeError::UnknownVideo`] when a job names a video the cost model
/// cannot price.
pub fn simulate(
    workload: &WorkloadSpec,
    fleet: Fleet,
    policy: Box<dyn DispatchPolicy>,
    cfg: ServeConfig,
) -> Result<SimOutcome, ServeError> {
    let jobs = workload.generate()?;
    simulate_trace(&jobs, workload.seed, fleet, policy, cfg)
}

/// Runs a pre-generated (or hand-written / parsed) trace.
///
/// # Errors
///
/// Same conditions as [`simulate`].
pub fn simulate_trace(
    jobs: &[JobSpec],
    seed: u64,
    fleet: Fleet,
    policy: Box<dyn DispatchPolicy>,
    cfg: ServeConfig,
) -> Result<SimOutcome, ServeError> {
    if jobs.is_empty() {
        return Err(ServeError::EmptyWorkload);
    }
    let model = CostModel::new(seed);
    for j in jobs {
        if !model.knows(&j.task.video) {
            return Err(ServeError::UnknownVideo {
                name: j.task.video.clone(),
            });
        }
    }
    let _span = Span::enter_with("serve/simulate", |a| {
        a.u64("jobs", jobs.len() as u64);
        a.u64("seed", seed);
    });

    let plan: FaultPlan = cfg.chaos.plan.clone();
    let detector = cfg.chaos.detector;
    let hedge_after = cfg.chaos.hedge_after;
    let cells = cfg.cells;

    let mut core = ServiceCore::new(cfg, fleet, model, policy);
    let n_servers = core.fleet().len();
    let xl = n_servers >= XL_FLEET_THRESHOLD;
    let mut idle = IdleIndex::new(CellPlan::build(n_servers, cells, seed));
    let mut running: Vec<Option<Running>> = (0..n_servers).map(|_| None).collect();
    // Servers each in-flight copy of a job occupies, so hedge triggers
    // find the origin without scanning the fleet.
    let mut running_ids: BTreeMap<u64, Vec<usize>> = BTreeMap::new();
    let mut crashed = vec![false; n_servers];
    // Copies in flight per job id, and the ids already completed — the
    // bookkeeping that makes hedged jobs terminate exactly once.
    let mut copies: BTreeMap<u64, u8> = BTreeMap::new();
    let mut done_ids: BTreeSet<u64> = BTreeSet::new();
    let mut instance: u64 = 0;

    // Events pop in ascending (time, seq); seq is a tie-breaker making the
    // pop order total — identical to the binary heap this replaced.
    let horizon = jobs.iter().map(|j| j.arrival_us).max().unwrap_or(0) + 1;
    let mut events: CalendarQueue<SimEvent> = CalendarQueue::new(horizon, jobs.len() * 2 + 64);
    let mut seq: u64 = 0;
    let push = |events: &mut CalendarQueue<SimEvent>, seq: &mut u64, t: u64, ev: SimEvent| {
        events.push(t, *seq, ev);
        *seq += 1;
    };
    // Plan events first: at equal timestamps a fault precedes the arrival
    // or finish it affects, and suspicion precedes the down verdict.
    for server in 0..n_servers {
        let faults = plan.server(server);
        if let Some(c) = faults.crash_us {
            push(&mut events, &mut seq, c, SimEvent::Crash { server });
            push(
                &mut events,
                &mut seq,
                detector.suspect_at(c),
                SimEvent::Suspect { server },
            );
            push(
                &mut events,
                &mut seq,
                detector.down_at(c),
                SimEvent::Down { server },
            );
        }
        for w in &faults.slowdowns {
            push(
                &mut events,
                &mut seq,
                w.from_us,
                SimEvent::Note {
                    server,
                    kind: FaultKind::SlowDown,
                },
            );
        }
        for st in &faults.stalls {
            push(
                &mut events,
                &mut seq,
                st.at_us,
                SimEvent::Note {
                    server,
                    kind: FaultKind::Stall,
                },
            );
        }
    }
    for j in jobs {
        push(
            &mut events,
            &mut seq,
            j.arrival_us,
            SimEvent::Arrive(j.clone()),
        );
    }

    let mut now: u64 = 0;
    while let Some((t, _, ev)) = events.pop() {
        now = t;
        match ev {
            SimEvent::Arrive(spec) => {
                core.offer(spec, now);
            }
            SimEvent::Crash { server } => {
                crashed[server] = true;
                core.record_fault(server, FaultKind::Crash, now);
                // Whatever is running there is stuck until detection; its
                // pending Finish (if any) is ignored below.
            }
            SimEvent::Note { server, kind } => {
                core.record_fault(server, kind, now);
            }
            SimEvent::Suspect { server } => {
                core.mark_suspected(server, now);
            }
            SimEvent::Down { server } => {
                core.mark_down(server, now);
                // Down is terminal: the server leaves the idle index for
                // good, whether it was idle or holding a doomed job.
                idle.set_busy(server);
                if let Some(r) = running[server].take() {
                    let id = r.job.spec.id;
                    forget_copy(&mut running_ids, id, server);
                    let left = copies
                        .get_mut(&id)
                        .map(|c| {
                            *c -= 1;
                            *c
                        })
                        .unwrap_or(0);
                    if left == 0 {
                        copies.remove(&id);
                    }
                    // Requeue only if no other copy can still finish it.
                    if !done_ids.contains(&id) && left == 0 {
                        core.fail(r.job, server, r.started_us, now);
                    }
                }
            }
            SimEvent::Finish {
                server,
                instance: i,
            } => {
                let stale = running[server].as_ref().is_none_or(|r| r.instance != i);
                if stale || crashed[server] {
                    // Stale finish, or the server died mid-run: the job (if
                    // still held) stays stuck until the down verdict.
                } else {
                    let r = running[server].take().expect("checked above");
                    idle.set_idle(server);
                    let id = r.job.spec.id;
                    forget_copy(&mut running_ids, id, server);
                    let left = copies
                        .get_mut(&id)
                        .map(|c| {
                            *c -= 1;
                            *c
                        })
                        .unwrap_or(0);
                    if left == 0 {
                        copies.remove(&id);
                    }
                    if done_ids.contains(&id) {
                        // The other copy already won; this work is wasted.
                        core.hedge_discard(id, server, r.started_us, now);
                    } else if r.timed_out {
                        if left > 0 {
                            // A copy is still running; let it decide the
                            // job's fate, just bill this server's time.
                            core.hedge_discard(id, server, r.started_us, now);
                        } else {
                            core.timeout(r.job, server, r.started_us, now);
                        }
                    } else {
                        core.complete(&r.job, server, r.started_us, now);
                        done_ids.insert(id);
                        if r.is_hedge {
                            core.note_hedge_won();
                        }
                        // A real transcode populates the cache; a hit never
                        // re-inserts what it just read.
                        if !r.cached {
                            core.cache_insert(&r.job, server, None);
                        }
                    }
                }
            }
            SimEvent::HedgeDue { id } => {
                // Fire only if exactly the original copy is still in
                // flight (not done, not requeued, not already hedged).
                if !done_ids.contains(&id) && copies.get(&id) == Some(&1) {
                    let origin = running_ids.get(&id).and_then(|v| v.iter().copied().min());
                    if let Some(origin) = origin {
                        let pick = idle
                            .to_vec()
                            .into_iter()
                            .filter(|&s| core.health()[s] == Health::Up)
                            .min_by_key(|&s| {
                                let job = &running[origin].as_ref().expect("indexed above").job;
                                (
                                    core.model().predicted_us(&job.spec, core.fleet().server(s)),
                                    s,
                                )
                            });
                        if let Some(server) = pick {
                            let job = running[origin].as_ref().expect("indexed above").job.clone();
                            core.hedge_dispatch(&job, server, now);
                            copies.insert(id, 2);
                            instance += 1;
                            start_copy(
                                &mut running,
                                &mut running_ids,
                                &mut idle,
                                &mut events,
                                &mut seq,
                                &core,
                                &plan,
                                &crashed,
                                job,
                                server,
                                now,
                                instance,
                                true,
                                None,
                            );
                        }
                    }
                }
            }
        }
        // Every state change is a dispatch opportunity. Small fleets keep
        // the historical materialized-slice path; XL fleets go through the
        // index (two-level cell-auction dispatch, nothing O(fleet)).
        let started = if xl {
            core.dispatch_indexed(&idle, now)
        } else {
            let idle_vec = idle.to_vec();
            core.dispatch(&idle_vec, now)
        };
        for (job, server) in started {
            let id = job.spec.id;
            *copies.entry(id).or_insert(0) += 1;
            // A cache hit skips the transcode: the server is occupied only
            // for the lookup cost, and hedging it would be pointless.
            let cached_us = core.cache_lookup(&job, server, now);
            // Arm the hedge trigger on the first dispatch of an
            // interactive job.
            if cached_us.is_none()
                && job.spec.priority == Priority::Interactive
                && job.attempts == 1
            {
                if let Some(due) =
                    hedge_due_us(job.spec.arrival_us, job.spec.deadline_us, hedge_after)
                {
                    if due > now && due < job.spec.deadline_us {
                        push(&mut events, &mut seq, due, SimEvent::HedgeDue { id });
                    }
                }
            }
            instance += 1;
            start_copy(
                &mut running,
                &mut running_ids,
                &mut idle,
                &mut events,
                &mut seq,
                &core,
                &plan,
                &crashed,
                job,
                server,
                now,
                instance,
                false,
                cached_us,
            );
        }
    }

    // The fleet may have died with work still queued; settle the books so
    // every admitted job reaches a terminal state.
    if core.queued() > 0 {
        core.shed_stranded(now);
    }

    let assignments = core.assignments().to_vec();
    let (report, event_log, obs) = core.finish(seed, now);
    Ok(SimOutcome {
        report,
        event_log,
        assignments,
        obs,
    })
}

/// Drops one server from a job's set of in-flight copies.
fn forget_copy(running_ids: &mut BTreeMap<u64, Vec<usize>>, id: u64, server: usize) {
    if let Some(v) = running_ids.get_mut(&id) {
        v.retain(|&s| s != server);
        if v.is_empty() {
            running_ids.remove(&id);
        }
    }
}

/// Starts one copy of a job on a server: on a live server the finish time
/// is the fault-inflated service time (capped at the job's timeout), or
/// just the cache lookup cost when `cached_us` is set; on a
/// crashed-but-undetected server the copy is simply stuck — no finish is
/// scheduled and the down verdict will requeue it.
#[allow(clippy::too_many_arguments)]
fn start_copy(
    running: &mut [Option<Running>],
    running_ids: &mut BTreeMap<u64, Vec<usize>>,
    idle: &mut IdleIndex,
    events: &mut CalendarQueue<SimEvent>,
    seq: &mut u64,
    core: &ServiceCore,
    plan: &FaultPlan,
    crashed: &[bool],
    job: PendingJob,
    server: usize,
    now: u64,
    instance: u64,
    is_hedge: bool,
    cached_us: Option<u64>,
) {
    idle.set_busy(server);
    running_ids.entry(job.spec.id).or_default().push(server);
    if crashed[server] {
        running[server] = Some(Running {
            job,
            started_us: now,
            instance,
            is_hedge,
            timed_out: false,
            cached: cached_us.is_some(),
        });
        return;
    }
    // A run longer than the job's timeout is killed at the timeout mark;
    // the server is occupied (and billed) until then. A cache hit skips
    // the transcode and fault inflation entirely — only the lookup cost
    // occupies the server.
    let (dur, timed_out) = match cached_us {
        Some(lookup) => (lookup.min(job.spec.timeout_us), false),
        None => {
            let true_us = core.true_service_us(&job.spec, server, core.fleet().server(server));
            let wall = plan.inflate(server, now, true_us);
            if wall > job.spec.timeout_us {
                (job.spec.timeout_us, true)
            } else {
                (wall, false)
            }
        }
    };
    running[server] = Some(Running {
        job,
        started_us: now,
        instance,
        is_hedge,
        timed_out,
        cached: cached_us.is_some(),
    });
    events.push(
        now.saturating_add(dur),
        *seq,
        SimEvent::Finish { server, instance },
    );
    *seq += 1;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chaos::ChaosConfig;
    use crate::policy::policy_by_name;
    use crate::service::render_event_log;

    fn run(policy: &str, seed: u64) -> SimOutcome {
        let w = WorkloadSpec::smoke(seed);
        simulate(
            &w,
            Fleet::table_iv(),
            policy_by_name(policy, seed).unwrap(),
            ServeConfig::default(),
        )
        .unwrap()
    }

    #[test]
    fn every_offered_job_is_accounted_for() {
        for policy in ["random", "rr", "smart"] {
            let out = run(policy, 42);
            let r = &out.report;
            assert_eq!(r.offered, 60, "{policy}");
            assert_eq!(
                r.completed + r.shed_total(),
                r.offered,
                "{policy}: every job completes or is shed"
            );
            assert_eq!(r.sojourn.count, r.completed);
        }
    }

    #[test]
    fn identical_seeds_are_byte_identical() {
        for policy in ["random", "smart"] {
            let a = run(policy, 42);
            let b = run(policy, 42);
            assert_eq!(a.assignments, b.assignments, "{policy}");
            assert_eq!(a.report, b.report, "{policy}");
            assert_eq!(
                render_event_log(&a.event_log),
                render_event_log(&b.event_log),
                "{policy}"
            );
            assert_eq!(a.report.render(), b.report.render(), "{policy}");
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = run("smart", 42);
        let b = run("smart", 43);
        assert_ne!(a.assignments, b.assignments);
    }

    #[test]
    fn unfaulted_run_reports_clean_chaos_fields() {
        let out = run("smart", 42);
        assert_eq!(out.report.availability, 1.0);
        assert_eq!(out.report.mttr_us, 0);
        assert_eq!(out.report.faults, crate::report::FaultAccounting::default());
        assert!(out.report.goodput_jps <= out.report.throughput_jps);
    }

    #[test]
    fn empty_trace_is_rejected() {
        let err = simulate_trace(
            &[],
            1,
            Fleet::table_iv(),
            policy_by_name("rr", 1).unwrap(),
            ServeConfig::default(),
        )
        .unwrap_err();
        assert_eq!(err, ServeError::EmptyWorkload);
    }

    #[test]
    fn unknown_video_is_rejected() {
        let w = WorkloadSpec::smoke(1);
        let mut jobs = w.generate().unwrap();
        jobs[0].task.video = "not-in-vbench".to_owned();
        let err = simulate_trace(
            &jobs,
            1,
            Fleet::table_iv(),
            policy_by_name("rr", 1).unwrap(),
            ServeConfig::default(),
        )
        .unwrap_err();
        assert!(matches!(err, ServeError::UnknownVideo { .. }));
    }

    #[test]
    fn makespan_covers_the_last_event() {
        let out = run("rr", 7);
        let last = out
            .event_log
            .iter()
            .map(EventRecord::time_us)
            .max()
            .unwrap();
        assert_eq!(out.report.makespan_us, last);
        assert!(out.report.throughput_jps > 0.0);
    }

    #[test]
    fn tiny_queues_shed_under_load() {
        let w = WorkloadSpec::smoke(42);
        let cfg = ServeConfig {
            queue: crate::queue::QueueConfig {
                per_class_cap: [1, 1, 1],
            },
            ..ServeConfig::default()
        };
        let out = simulate(
            &w,
            Fleet::table_iv(),
            policy_by_name("rr", 42).unwrap(),
            cfg,
        )
        .unwrap();
        assert!(
            out.report.shed_total() > 0,
            "1-deep queues under a 60-job burst must shed"
        );
    }

    fn faulted(policy: &str, seed: u64) -> SimOutcome {
        let w = WorkloadSpec::smoke(seed);
        let jobs = w.generate().unwrap();
        let horizon = jobs.iter().map(|j| j.arrival_us).max().unwrap();
        let fleet = Fleet::sized(8).unwrap();
        let cfg = ServeConfig {
            chaos: ChaosConfig::kill_two_straggle_one(seed, 8, horizon),
            ..ServeConfig::default()
        };
        simulate_trace(
            &jobs,
            seed,
            fleet,
            policy_by_name(policy, seed).unwrap(),
            cfg,
        )
        .unwrap()
    }

    #[test]
    fn faulted_fleet_keeps_serving_and_accounts_every_job() {
        let out = faulted("smart", 42);
        let r = &out.report;
        assert_eq!(r.offered, 60);
        assert_eq!(
            r.completed + r.shed_total(),
            r.offered,
            "every admitted job reaches exactly one terminal state"
        );
        assert!(r.completed > 0, "the surviving fleet keeps serving");
        assert_eq!(r.faults.crashes, 2);
        assert_eq!(r.faults.slowdowns, 1);
        assert!(r.availability > 0.0 && r.availability < 1.0);
        assert!(r.goodput_jps <= r.throughput_jps);
    }

    #[test]
    fn faulted_runs_are_byte_identical() {
        for policy in ["random", "smart"] {
            let a = faulted(policy, 42);
            let b = faulted(policy, 42);
            assert_eq!(a.report, b.report, "{policy}");
            assert_eq!(
                render_event_log(&a.event_log),
                render_event_log(&b.event_log),
                "{policy}"
            );
            assert_eq!(a.report.render(), b.report.render(), "{policy}");
        }
    }

    fn cached_run(seed: u64, policy_name: &str, evict: vtx_cache::EvictPolicy) -> SimOutcome {
        // Popularity-skewed arrivals with pinned knobs so hot (video,
        // knob) keys genuinely repeat; a generous byte budget makes the
        // repeats hit.
        let w = WorkloadSpec::smoke(seed).with_popularity(1.0, 0.3);
        let cfg = ServeConfig {
            cache: Some(vtx_cache::CacheSpec {
                capacity_bytes: 64 << 20,
                policy: evict,
                lookup_us: 250,
            }),
            ..ServeConfig::default()
        };
        simulate(
            &w,
            Fleet::table_iv(),
            policy_by_name(policy_name, seed).unwrap(),
            cfg,
        )
        .unwrap()
    }

    #[test]
    fn cache_hits_skip_work_and_conserve_jobs() {
        let out = cached_run(42, "smart", vtx_cache::EvictPolicy::Lru);
        let r = &out.report;
        let stats = r.cache.as_ref().expect("cache stats exported");
        assert!(stats.hits > 0, "a Zipf(1.0) trace must repeat hot keys");
        assert!(
            stats.hit_milli() >= 100,
            "hot-key repeats should land at least 10% hits, got {}",
            stats.hit_milli()
        );
        assert_eq!(
            r.completed + r.shed_total(),
            r.offered,
            "cache hits still reach exactly one terminal state"
        );
        assert!(out
            .event_log
            .iter()
            .any(|e| matches!(e, EventRecord::CacheHit { .. })));
    }

    #[test]
    fn cached_runs_are_byte_identical() {
        for evict in vtx_cache::EvictPolicy::ALL {
            let a = cached_run(42, "smart", evict);
            let b = cached_run(42, "smart", evict);
            assert_eq!(a.assignments, b.assignments, "{}", evict.name());
            assert_eq!(a.report, b.report, "{}", evict.name());
            assert_eq!(
                render_event_log(&a.event_log),
                render_event_log(&b.event_log),
                "{}",
                evict.name()
            );
            assert_eq!(a.report.render(), b.report.render(), "{}", evict.name());
        }
    }

    #[test]
    fn cache_beats_uncached_on_repeat_heavy_trace() {
        let cached = cached_run(42, "smart", vtx_cache::EvictPolicy::Gdsf);
        let w = WorkloadSpec::smoke(42).with_popularity(1.0, 0.3);
        let uncached = simulate(
            &w,
            Fleet::table_iv(),
            policy_by_name("smart", 42).unwrap(),
            ServeConfig::default(),
        )
        .unwrap();
        assert!(
            cached.report.sojourn.mean_us <= uncached.report.sojourn.mean_us,
            "skipping transcodes must not slow the fleet: cached {} vs uncached {}",
            cached.report.sojourn.mean_us,
            uncached.report.sojourn.mean_us
        );
    }

    #[test]
    fn crashes_requeue_in_flight_jobs() {
        let out = faulted("rr", 42);
        let has_requeue = out
            .event_log
            .iter()
            .any(|e| matches!(e, EventRecord::Requeue { .. }));
        if has_requeue {
            assert!(out.report.faults.requeued > 0);
            assert!(out.report.mttr_us > 0, "requeues imply a recovery span");
        }
        // Detector verdicts always fire for crashed servers.
        assert_eq!(
            out.event_log
                .iter()
                .filter(|e| matches!(e, EventRecord::Down { .. }))
                .count(),
            2
        );
    }
}
