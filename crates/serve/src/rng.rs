//! A tiny, fully deterministic PRNG for the serving layer.
//!
//! The discrete-event engine's contract is *byte-identical* reports across
//! runs and platforms, so it cannot depend on an external RNG crate whose
//! stream might change between versions. SplitMix64 is 10 lines, passes
//! BigCrush, and — crucially — supports cheap independent streams via
//! [`derive`], which the cost model uses to make per-(job, server) service
//! noise a pure function of `(seed, job, server)` rather than of the order
//! in which a policy happens to probe pairs.

/// SplitMix64 (Steele, Lea & Flood 2014).
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)`; `n` must be nonzero.
    pub fn next_range(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Modulo bias is < 2^-40 for the n used here (catalog sizes, fleet
        // sizes); irrelevant next to determinism.
        self.next_u64() % n
    }

    /// Exponentially distributed sample with the given mean (inverse-CDF).
    pub fn next_exp(&mut self, mean: f64) -> f64 {
        let u = self.next_f64();
        // 1 - u is in (0, 1], so ln is finite.
        -mean * (1.0 - u).ln()
    }

    /// Picks an index according to (unnormalized, nonnegative) weights.
    /// Falls back to index 0 when all weights are zero.
    pub fn pick_weighted(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        if total <= 0.0 {
            return 0;
        }
        let mut x = self.next_f64() * total;
        for (i, &w) in weights.iter().enumerate() {
            x -= w;
            if x < 0.0 {
                return i;
            }
        }
        weights.len() - 1
    }
}

/// Hash-combines a seed with a stream id into an independent SplitMix64
/// seed. Used to give every (job, server) pair its own noise stream that is
/// independent of dispatch order.
pub fn derive(seed: u64, stream: u64) -> u64 {
    let mut z = seed ^ stream.wrapping_mul(0xff51_afd7_ed55_8ccd);
    z = (z ^ (z >> 33)).wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    z ^ (z >> 33)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SplitMix64::new(7);
        for _ in 0..1000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn exp_has_roughly_the_requested_mean() {
        let mut r = SplitMix64::new(9);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| r.next_exp(2.0)).sum();
        let mean = sum / f64::from(n);
        assert!((mean - 2.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn weighted_pick_respects_zero_weights() {
        let mut r = SplitMix64::new(3);
        for _ in 0..100 {
            let i = r.pick_weighted(&[0.0, 1.0, 0.0]);
            assert_eq!(i, 1);
        }
        assert_eq!(r.pick_weighted(&[0.0, 0.0]), 0);
    }

    #[test]
    fn derive_streams_are_order_free() {
        // The same (seed, stream) always yields the same sub-seed.
        assert_eq!(derive(42, 7), derive(42, 7));
        assert_ne!(derive(42, 7), derive(42, 8));
        assert_ne!(derive(41, 7), derive(42, 7));
    }
}
