//! Compiler-optimization analogs for the paper's §III-D.1 experiments.
//!
//! The paper applies two GCC-toolchain optimizations to FFmpeg:
//!
//! * **AutoFDO** (feedback-directed optimization): collects an execution
//!   profile with `perf` and recompiles so that hot code is laid out
//!   compactly and frequently-taken paths fall through — attacking
//!   instruction-cache misses and branch-prediction inefficiency
//!   (front-end and bad-speculation Top-down categories).
//! * **Graphite** (polyhedral loop optimization): interchanges, tiles and
//!   fuses loop nests to improve data-cache locality (back-end category).
//!
//! This crate rebuilds both against the workspace's synthetic binary model:
//!
//! * [`autofdo`] consumes the [`vtx_trace::kernel::KernelProfile`] a
//!   profiling run produces and performs Pettis–Hansen call-graph clustering
//!   plus hot/cold splitting, emitting an optimized
//!   [`vtx_trace::layout::CodeLayout`]. Re-running the workload under that
//!   layout changes its simulated i-cache/iTLB/branch behaviour — the
//!   speedup *emerges* from simulation.
//! * [`graphite`] implements a small polyhedral-style loop-nest IR with
//!   dependence-distance legality checks and cache-replay cost estimation;
//!   applied to models of the transcoder's data-traversal loops it derives
//!   a [`vtx_trace::plan::DataPlan`] that the instrumented codec honours
//!   when emitting its address stream.
//! * [`pipeline`] packages both as "compiled binary variants" (baseline /
//!   AutoFDO / Graphite), mirroring the three FFmpeg builds the paper
//!   benchmarks in Figure 8.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod autofdo;
pub mod graphite;
pub mod pipeline;

pub use pipeline::{compile, BinaryVariant, CompiledBinary};
