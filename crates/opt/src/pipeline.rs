//! "Compiled binary" variants — the three FFmpeg builds of Figure 8.
//!
//! The paper benchmarks a stock FFmpeg, an AutoFDO-recompiled FFmpeg, and a
//! Graphite-recompiled FFmpeg. In this workspace a "binary" is the pair of
//! (code layout, data plan) the profiler executes under; [`compile`]
//! produces each variant.

use std::error::Error;
use std::fmt;

use vtx_trace::kernel::{KernelDesc, KernelProfile};
use vtx_trace::layout::CodeLayout;
use vtx_trace::plan::DataPlan;
use vtx_uarch::config::UarchConfig;

use crate::autofdo;
use crate::graphite;

/// Which compiler pipeline built the binary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinaryVariant {
    /// Stock compile: linker-order layout, canonical loops.
    Baseline,
    /// AutoFDO: profile-guided layout, canonical loops.
    AutoFdo,
    /// Graphite: linker-order layout, transformed loops.
    Graphite,
}

impl BinaryVariant {
    /// All variants in Figure 8 order.
    pub const ALL: [BinaryVariant; 3] = [
        BinaryVariant::Baseline,
        BinaryVariant::AutoFdo,
        BinaryVariant::Graphite,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            BinaryVariant::Baseline => "baseline",
            BinaryVariant::AutoFdo => "autofdo",
            BinaryVariant::Graphite => "graphite",
        }
    }
}

/// A compiled-binary model: what to run the workload under.
#[derive(Debug, Clone)]
pub struct CompiledBinary {
    /// Variant that produced this binary.
    pub variant: BinaryVariant,
    /// Code layout for the profiler.
    pub layout: CodeLayout,
    /// Loop-transformation plan for the instrumentation.
    pub plan: DataPlan,
}

/// Error returned when a variant's inputs are missing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MissingProfile;

impl fmt::Display for MissingProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "autofdo requires a training profile")
    }
}

impl Error for MissingProfile {}

/// Builds a binary variant for a kernel table.
///
/// AutoFDO needs a `profile` from a previous (baseline) run — exactly like
/// the real tool, which recompiles using `perf` data.
///
/// # Errors
///
/// Returns [`MissingProfile`] if `variant` is [`BinaryVariant::AutoFdo`] and
/// no profile is supplied.
pub fn compile(
    variant: BinaryVariant,
    kernels: &[KernelDesc],
    profile: Option<&KernelProfile>,
    cfg: &UarchConfig,
) -> Result<CompiledBinary, MissingProfile> {
    let binary = match variant {
        BinaryVariant::Baseline => CompiledBinary {
            variant,
            layout: CodeLayout::default_order(kernels),
            plan: DataPlan::canonical(),
        },
        BinaryVariant::AutoFdo => {
            let profile = profile.ok_or(MissingProfile)?;
            CompiledBinary {
                variant,
                layout: autofdo::optimized_layout(kernels, profile),
                plan: DataPlan::canonical(),
            }
        }
        BinaryVariant::Graphite => CompiledBinary {
            variant,
            layout: CodeLayout::default_order(kernels),
            plan: graphite::derive_plan(cfg),
        },
    };
    Ok(binary)
}

#[cfg(test)]
mod tests {
    use super::*;

    const KERNELS: &[KernelDesc] = &[
        KernelDesc::new("a", 4096),
        KernelDesc::new("b", 2048),
        KernelDesc::new("c", 8192),
    ];

    #[test]
    fn baseline_is_canonical() {
        let b = compile(
            BinaryVariant::Baseline,
            KERNELS,
            None,
            &UarchConfig::baseline(),
        )
        .unwrap();
        assert_eq!(b.plan, DataPlan::canonical());
        assert_eq!(b.layout, CodeLayout::default_order(KERNELS));
    }

    #[test]
    fn autofdo_requires_profile() {
        assert_eq!(
            compile(
                BinaryVariant::AutoFdo,
                KERNELS,
                None,
                &UarchConfig::baseline()
            )
            .unwrap_err(),
            MissingProfile
        );
        let mut p = KernelProfile::new(3);
        p.pairs[0][2] = 10;
        let b = compile(
            BinaryVariant::AutoFdo,
            KERNELS,
            Some(&p),
            &UarchConfig::baseline(),
        )
        .unwrap();
        assert!(b.layout.span_bytes() < CodeLayout::default_order(KERNELS).span_bytes());
        assert_eq!(b.plan, DataPlan::canonical());
    }

    #[test]
    fn graphite_transforms_loops_not_layout() {
        let b = compile(
            BinaryVariant::Graphite,
            KERNELS,
            None,
            &UarchConfig::baseline(),
        )
        .unwrap();
        assert!(b.plan.enabled_count() > 0);
        assert_eq!(b.layout, CodeLayout::default_order(KERNELS));
    }

    #[test]
    fn variant_names() {
        assert_eq!(BinaryVariant::AutoFdo.name(), "autofdo");
        assert_eq!(BinaryVariant::ALL.len(), 3);
    }
}
