//! AutoFDO analog: profile-guided code layout.
//!
//! Two transformations, both standard in FDO toolchains:
//!
//! 1. **Pettis–Hansen function ordering**: kernels that frequently execute
//!    back-to-back (high call-pair affinity) are placed adjacently, so one
//!    fetch stream covers both and they share iTLB pages.
//! 2. **Hot/cold splitting**: within each kernel, rarely-executed basic
//!    blocks are moved out of line, shrinking the hot footprint that the
//!    front end actually streams (modelled as a fixed hot fraction, like
//!    `-freorder-blocks-and-partition`).
//!
//! The output is a packed [`CodeLayout`]; all cache/TLB/branch effects come
//! from re-simulating under it.

use vtx_trace::kernel::{KernelDesc, KernelProfile};
use vtx_trace::layout::CodeLayout;

/// Fraction of each kernel's code that stays in the hot section after
/// profile-guided basic-block reordering (the rest is moved to a cold
/// section that the front end no longer streams).
pub const HOT_FRACTION_PERCENT: u32 = 70;

/// Computes a Pettis–Hansen kernel ordering from call-pair affinities.
///
/// Classic greedy chain coalescing: every kernel starts as its own chain;
/// edges are visited by descending affinity and chains are merged end-to-end
/// in the orientation that keeps the connected kernels adjacent. Chains are
/// finally emitted by descending total weight (hottest code first).
pub fn pettis_hansen_order(profile: &KernelProfile) -> Vec<usize> {
    let n = profile.len();
    if n == 0 {
        return Vec::new();
    }

    // Collect undirected edges.
    let mut edges: Vec<(u64, usize, usize)> = Vec::new();
    for a in 0..n {
        for b in (a + 1)..n {
            let w = profile.affinity(a, b);
            if w > 0 {
                edges.push((w, a, b));
            }
        }
    }
    edges.sort_by(|x, y| y.0.cmp(&x.0).then(x.1.cmp(&y.1)).then(x.2.cmp(&y.2)));

    // Each kernel starts as a singleton chain.
    let mut chain_of: Vec<usize> = (0..n).collect();
    let mut chains: Vec<Vec<usize>> = (0..n).map(|k| vec![k]).collect();

    for (_, a, b) in edges {
        let ca = chain_of[a];
        let cb = chain_of[b];
        if ca == cb {
            continue;
        }
        // Merge so that a and b become adjacent where possible: the four
        // end-to-end orientations are tried in order of preference.
        let (left, right) = (chains[ca].clone(), chains[cb].clone());
        let merged: Vec<usize> = if left.last() == Some(&a) && right.first() == Some(&b) {
            left.iter().chain(right.iter()).copied().collect()
        } else if right.last() == Some(&b) && left.first() == Some(&a) {
            right.iter().chain(left.iter()).copied().collect()
        } else if left.first() == Some(&a) && right.first() == Some(&b) {
            left.iter().rev().chain(right.iter()).copied().collect()
        } else if left.last() == Some(&a) && right.last() == Some(&b) {
            left.iter().chain(right.iter().rev()).copied().collect()
        } else {
            // Interior nodes: append whole chains (adjacency not achievable).
            left.iter().chain(right.iter()).copied().collect()
        };
        chains[ca] = merged;
        chains[cb] = Vec::new();
        for &k in &chains[ca] {
            chain_of[k] = ca;
        }
    }

    // Order surviving chains by total instruction weight, hottest first.
    let mut keyed: Vec<(u64, Vec<usize>)> = chains
        .into_iter()
        .filter(|c| !c.is_empty())
        .map(|c| {
            let w: u64 = c.iter().map(|&k| profile.instructions[k]).sum();
            (w, c)
        })
        .collect();
    keyed.sort_by(|x, y| y.0.cmp(&x.0).then(x.1.cmp(&y.1)));

    keyed.into_iter().flat_map(|(_, c)| c).collect()
}

/// Applies hot/cold splitting to the kernel descriptors: each hot footprint
/// shrinks to [`HOT_FRACTION_PERCENT`] of its original size.
pub fn split_hot_cold(kernels: &[KernelDesc]) -> Vec<KernelDesc> {
    kernels
        .iter()
        .map(|k| KernelDesc::new(k.name, (k.code_bytes * HOT_FRACTION_PERCENT / 100).max(64)))
        .collect()
}

/// Produces the AutoFDO-optimized layout for a kernel table given a profile
/// collected from a previous run.
///
/// # Panics
///
/// Panics if `profile` does not cover exactly `kernels.len()` kernels.
pub fn optimized_layout(kernels: &[KernelDesc], profile: &KernelProfile) -> CodeLayout {
    assert_eq!(
        profile.len(),
        kernels.len(),
        "profile must cover the kernel table"
    );
    let order = pettis_hansen_order(profile);
    let shrunk = split_hot_cold(kernels);
    CodeLayout::packed(&shrunk, &order)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(n: usize) -> Vec<KernelDesc> {
        const NAMES: &[&str] = &["k0", "k1", "k2", "k3", "k4", "k5", "k6", "k7"];
        (0..n).map(|i| KernelDesc::new(NAMES[i], 4096)).collect()
    }

    fn profile_with_pairs(n: usize, pairs: &[(usize, usize, u64)]) -> KernelProfile {
        let mut p = KernelProfile::new(n);
        for &(a, b, w) in pairs {
            p.pairs[a][b] = w;
            p.instructions[a] += w * 10;
            p.instructions[b] += w * 10;
        }
        p
    }

    #[test]
    fn order_is_a_permutation() {
        let p = profile_with_pairs(6, &[(0, 3, 100), (3, 1, 50), (2, 4, 10)]);
        let order = pettis_hansen_order(&p);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..6).collect::<Vec<_>>());
    }

    #[test]
    fn high_affinity_kernels_adjacent() {
        let p = profile_with_pairs(5, &[(0, 3, 1000), (1, 4, 900), (2, 0, 5)]);
        let order = pettis_hansen_order(&p);
        let pos: Vec<usize> = {
            let mut v = vec![0; 5];
            for (i, &k) in order.iter().enumerate() {
                v[k] = i;
            }
            v
        };
        assert_eq!(pos[0].abs_diff(pos[3]), 1, "order {order:?}");
        assert_eq!(pos[1].abs_diff(pos[4]), 1, "order {order:?}");
    }

    #[test]
    fn hottest_chain_comes_first() {
        let p = profile_with_pairs(4, &[(0, 1, 5), (2, 3, 5000)]);
        let order = pettis_hansen_order(&p);
        // The (2,3) chain carries far more weight, so it leads.
        assert!(order[0] == 2 || order[0] == 3, "order {order:?}");
    }

    #[test]
    fn optimized_layout_is_far_denser_than_default() {
        let kernels = table(8);
        let mut p = KernelProfile::new(8);
        for i in 0..7 {
            p.pairs[i][i + 1] = 100;
            p.instructions[i] = 1000;
        }
        let opt = optimized_layout(&kernels, &p);
        let base = CodeLayout::default_order(&kernels);
        assert!(
            opt.span_bytes() * 4 < base.span_bytes(),
            "opt {} vs base {}",
            opt.span_bytes(),
            base.span_bytes()
        );
    }

    #[test]
    fn hot_cold_split_shrinks_but_not_to_zero() {
        let shrunk = split_hot_cold(&table(3));
        for (s, k) in shrunk.iter().zip(table(3).iter()) {
            assert!(s.code_bytes < k.code_bytes);
            assert!(s.code_bytes >= 64);
        }
    }

    #[test]
    fn layout_is_deterministic() {
        let kernels = table(6);
        let p = profile_with_pairs(6, &[(0, 3, 100), (3, 1, 50), (2, 4, 10), (4, 5, 9)]);
        let a = optimized_layout(&kernels, &p);
        let b = optimized_layout(&kernels, &p);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_profile_yields_identity_ish_order() {
        let p = KernelProfile::new(4);
        let order = pettis_hansen_order(&p);
        assert_eq!(order.len(), 4);
    }
}
