//! Cache-replay cost model: scores a loop nest by simulating its address
//! stream against a cache of the target geometry.

use vtx_uarch::cache::{Cache, CacheParams};

use super::nest::LoopNest;

/// Result of replaying a nest against a cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplayCost {
    /// Total accesses replayed.
    pub accesses: u64,
    /// Misses observed.
    pub misses: u64,
}

impl ReplayCost {
    /// Miss ratio in [0, 1].
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

/// Replays the nest's address stream through a freshly-initialized cache of
/// the given geometry and reports access/miss counts.
///
/// # Panics
///
/// Panics if `params` describes an invalid cache geometry (programming
/// error in the cost-model caller).
pub fn replay(nest: &LoopNest, params: CacheParams) -> ReplayCost {
    let mut cache = Cache::new(params).expect("valid cache geometry");
    let line = u64::from(params.line_bytes);
    let mut accesses = 0;
    for (addr, _) in nest.address_stream() {
        cache.access_line(addr / line);
        accesses += 1;
    }
    ReplayCost {
        accesses,
        misses: cache.stats().misses,
    }
}

/// Picks the candidate with the fewest misses under the given cache; ties go
/// to the earliest candidate (the untransformed nest should be first so that
/// transformations must strictly win).
pub fn best_candidate(candidates: &[LoopNest], params: CacheParams) -> usize {
    let mut best = 0;
    let mut best_misses = u64::MAX;
    for (i, c) in candidates.iter().enumerate() {
        let cost = replay(c, params);
        if cost.misses < best_misses {
            best_misses = cost.misses;
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graphite::nest::Access;

    /// Column-major traversal of a 256 KiB array: pathological for a small
    /// cache; its interchange is row-major and nearly miss-free after cold
    /// misses.
    fn column_major() -> LoopNest {
        LoopNest::new(
            "colmajor",
            vec![512, 128], // i: columns, j: rows
            vec![Access {
                base: 0,
                strides: vec![1, 2048], // addr = i + j*2048
                is_store: false,
            }],
            vec![],
        )
    }

    fn tiny_cache() -> CacheParams {
        CacheParams::new(4, 4, 1) // 4 KiB
    }

    #[test]
    fn interchange_reduces_misses_on_strided_nest() {
        let bad = column_major();
        let good = bad.interchange(0, 1).unwrap();
        let bad_cost = replay(&bad, tiny_cache());
        let good_cost = replay(&good, tiny_cache());
        assert!(
            good_cost.misses * 10 < bad_cost.misses,
            "interchange should slash misses: {} vs {}",
            good_cost.misses,
            bad_cost.misses
        );
        assert_eq!(bad_cost.accesses, good_cost.accesses);
    }

    #[test]
    fn best_candidate_prefers_fewer_misses() {
        let bad = column_major();
        let good = bad.interchange(0, 1).unwrap();
        assert_eq!(
            best_candidate(&[bad.clone(), good.clone()], tiny_cache()),
            1
        );
        assert_eq!(best_candidate(&[good, bad], tiny_cache()), 0);
    }

    #[test]
    fn ties_go_to_first() {
        let n = column_major();
        assert_eq!(best_candidate(&[n.clone(), n.clone()], tiny_cache()), 0);
    }

    #[test]
    fn miss_ratio_bounds() {
        let n = column_major();
        let c = replay(&n, tiny_cache());
        let r = c.miss_ratio();
        assert!((0.0..=1.0).contains(&r));
        assert!(c.accesses == n.iterations());
    }
}
