//! Graphite analog: a polyhedral-style loop-nest optimizer.
//!
//! GCC's Graphite models loop nests in the polyhedral framework and applies
//! locality transformations — interchange, tiling/blocking, fusion and
//! distribution — when dependence analysis proves them legal. This module
//! rebuilds the essential machinery:
//!
//! * [`nest`] — an affine loop-nest IR with dependence-distance vectors,
//!   legality-checked interchange/tiling/fusion, and address-stream
//!   generation;
//! * [`cost`] — a cache-replay cost model that scores a candidate nest by
//!   simulating its address stream against a target cache;
//! * [`plan`] — models of the transcoder's data-traversal loops; running
//!   the optimizer over them derives the [`vtx_trace::plan::DataPlan`] the
//!   instrumented codec honours.

pub mod cost;
pub mod nest;
pub mod plan;

pub use nest::{Access, Dependence, LoopNest, TransformError};
pub use plan::derive_plan;
