//! Deriving the transcoder's [`DataPlan`] by optimizing models of its
//! data-traversal loops.
//!
//! Each candidate transformation is (1) legality-checked against the loop's
//! dependence model and (2) accepted only if the cache-replay cost model
//! shows it reduces misses (or, for pure fusions over cache-resident data,
//! accesses) on the target's L1D geometry. The resulting plan is what the
//! instrumented codec consults when emitting its address stream.

use vtx_trace::plan::DataPlan;
use vtx_uarch::cache::{Cache, CacheParams};
use vtx_uarch::config::UarchConfig;

use super::nest::{Access, Dependence, LoopNest};

/// Replays several nests back-to-back through one cache (program order),
/// returning `(accesses, misses)`.
fn sequential_cost(nests: &[&LoopNest], params: CacheParams) -> (u64, u64) {
    let mut cache = Cache::new(params).expect("valid cache geometry");
    let line = u64::from(params.line_bytes);
    let mut accesses = 0;
    for nest in nests {
        for (addr, _) in nest.address_stream() {
            cache.access_line(addr / line);
            accesses += 1;
        }
    }
    (accesses, cache.stats().misses)
}

/// Model of the per-frame encode+deblock pipeline over a frame of
/// `rows x cols` bytes: the encode loop stores every line of the frame, the
/// deblock loop re-reads and re-writes it afterwards.
fn frame_sweep(name: &str, rows: i64, cols: i64, base: u64, store: bool) -> LoopNest {
    LoopNest::new(
        name,
        vec![rows, cols / 64],
        vec![Access {
            base,
            strides: vec![cols, 64],
            is_store: store,
        }],
        vec![],
    )
}

/// Decides whether fusing the deblock sweep into the macroblock loop is
/// legal and profitable for a representative frame geometry.
fn decide_fuse_deblock(l1d: CacheParams, rows: i64, cols: i64) -> bool {
    // The encode loop also streams reference and source data between its
    // reconstruction stores; that competing traffic is what evicts the
    // frame lines before the separate deblock sweep re-reads them.
    let mut encode = frame_sweep("mb_encode", rows, cols, 0, true);
    encode.accesses.push(Access {
        base: 0x10_0000,
        strides: vec![cols, 64],
        is_store: false,
    });
    encode.accesses.push(Access {
        base: 0x20_0000,
        strides: vec![cols, 64],
        is_store: false,
    });
    let deblock = frame_sweep("deblock", rows, cols, 0, false);
    // Deblocking row r only needs rows <= r + 1 already encoded: the
    // producer->consumer distance is +1 row, so fusion is legal.
    let cross = [Dependence {
        distance: vec![1, 0],
    }];
    let Ok(fused) = LoopNest::fuse(&encode, &deblock, &cross) else {
        return false;
    };
    let (_, separate_misses) = sequential_cost(&[&encode, &deblock], l1d);
    let (_, fused_misses) = sequential_cost(&[&fused], l1d);
    fused_misses < separate_misses
}

/// Decides whether tiling the motion-search window loads over the
/// macroblock-x dimension is legal and profitable.
fn decide_tile_me_window(l1d: CacheParams, mb_cols: i64, stride: i64, merange: i64) -> bool {
    let window = 16 + 2 * merange;
    let rows = 16 + 2 * merange;
    // Canonical: every MB loads the full window (loads only -> no deps).
    let canonical = LoopNest::new(
        "me_window",
        vec![mb_cols, rows, window / 8],
        vec![Access {
            base: 0,
            strides: vec![16, stride, 8],
            is_store: false,
        }],
        vec![],
    );
    // Tiling over x is trivially legal for a pure-load nest, but we still
    // route it through the legality machinery (a store-carried dependence
    // would veto it).
    if canonical.tile(0, 1).is_err() {
        return false;
    }
    // Tiled: each MB only loads the newly exposed columns.
    let delta = 16 + merange;
    let tiled = LoopNest::new(
        "me_window_tiled",
        vec![mb_cols, rows, delta / 8],
        vec![Access {
            base: (window - delta).max(0) as u64,
            strides: vec![16, stride, 8],
            is_store: false,
        }],
        vec![],
    );
    let (canon_accesses, canon_misses) = sequential_cost(&[&canonical], l1d);
    let (tiled_accesses, tiled_misses) = sequential_cost(&[&tiled], l1d);
    // Hoisting redundant loads may not change misses when the window fits
    // L1 in isolation (the misses it saves come from multi-reference
    // contention in the real run); accept on (misses, accesses).
    (tiled_misses, tiled_accesses) < (canon_misses, canon_accesses)
}

/// Decides whether fusing the residual pipeline's per-stage sweeps over the
/// macroblock scratch buffer is legal and profitable.
fn decide_fuse_residual(l1d: CacheParams) -> bool {
    let stage = |name: &str| {
        LoopNest::new(
            name,
            vec![16, 1],
            vec![Access {
                base: 0,
                strides: vec![64, 0],
                is_store: false,
            }],
            vec![],
        )
    };
    let stages = [stage("dct"), stage("quant"), stage("idct"), stage("recon")];
    // Each stage consumes what the previous produced at the same iteration:
    // distance (0, 0) — loop-independent, fusion legal.
    let cross = [Dependence {
        distance: vec![0, 0],
    }];
    let mut fused = stages[0].clone();
    for s in &stages[1..] {
        match LoopNest::fuse(&fused, s, &cross) {
            Ok(f) => fused = f,
            Err(_) => return false,
        }
    }
    let refs: Vec<&LoopNest> = stages.iter().collect();
    let (sep_accesses, sep_misses) = sequential_cost(&refs, l1d);
    // The fused body makes one pass; model that by replaying one stage.
    let (fused_accesses, fused_misses) = sequential_cost(&[&stages[0]], l1d);
    (fused_misses, fused_accesses) < (sep_misses, sep_accesses)
}

/// Derives the Graphite-optimized [`DataPlan`] for a target
/// microarchitecture, using a representative 720p-class simulated frame
/// geometry.
pub fn derive_plan(cfg: &UarchConfig) -> DataPlan {
    let l1d = cfg.l1d;
    DataPlan {
        fuse_deblock: decide_fuse_deblock(l1d, 144, 240),
        tile_me_window: decide_tile_me_window(l1d, 15, 240, 16),
        fuse_residual: decide_fuse_residual(l1d),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_config_enables_all_transforms() {
        let plan = derive_plan(&UarchConfig::baseline());
        assert!(plan.fuse_deblock, "frame > L1d: fusion must win");
        assert!(plan.tile_me_window, "delta loading must reduce cost");
        assert!(plan.fuse_residual, "fewer sweeps over resident scratch");
        assert_eq!(plan, DataPlan::fully_blocked());
    }

    #[test]
    fn fusion_not_claimed_for_tiny_frames_in_huge_cache() {
        // A frame that fits L1 entirely: the second sweep hits anyway, so
        // fusion must NOT claim a win.
        let huge = CacheParams::new(1024, 16, 4); // 1 MiB "L1"
        assert!(!decide_fuse_deblock(huge, 16, 64));
    }

    #[test]
    fn me_tiling_wins_even_in_large_caches_via_fewer_accesses() {
        // With loads-only nests the tiled variant issues strictly fewer
        // accesses; under a small cache it must also miss less.
        let small = CacheParams::new(4, 4, 1);
        assert!(decide_tile_me_window(small, 10, 160, 16));
    }

    #[test]
    fn derive_plan_is_deterministic() {
        let a = derive_plan(&UarchConfig::baseline());
        let b = derive_plan(&UarchConfig::baseline());
        assert_eq!(a, b);
    }
}
