//! The affine loop-nest IR and its legality-checked transformations.
//!
//! A [`LoopNest`] is a perfect nest of counted loops (outermost first) whose
//! body performs affine memory accesses `addr = base + sum(stride_i * iv_i)`.
//! Data dependences are summarized as constant *distance vectors* in
//! iteration space, the classical representation loop transformations are
//! verified against: a transformation is legal iff every transformed
//! distance vector remains lexicographically non-negative.

use std::error::Error;
use std::fmt;

use serde::{Deserialize, Serialize};

/// An affine memory access within a loop-nest body.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Access {
    /// Base byte address.
    pub base: u64,
    /// Per-dimension byte strides (same length as the nest's dims).
    pub strides: Vec<i64>,
    /// Whether the access writes.
    pub is_store: bool,
}

/// A data dependence summarized as a constant distance vector.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Dependence {
    /// Per-dimension iteration distance (outermost first).
    pub distance: Vec<i64>,
}

impl Dependence {
    /// Whether the distance vector is lexicographically non-negative (the
    /// dependence is preserved by the current loop order).
    pub fn is_legal(&self) -> bool {
        for &d in &self.distance {
            if d > 0 {
                return true;
            }
            if d < 0 {
                return false;
            }
        }
        true // all-zero: loop-independent
    }
}

/// Why a transformation was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransformError {
    /// A dependence distance vector would become lexicographically negative.
    IllegalDependence {
        /// The violated (transformed) distance vector.
        distance: Vec<i64>,
    },
    /// A dimension index was out of range.
    BadDimension {
        /// Requested dimension.
        dim: usize,
        /// Number of dimensions in the nest.
        ndims: usize,
    },
    /// Fusion requires identical iteration spaces.
    ShapeMismatch,
    /// A tile size of zero was requested.
    ZeroTile,
    /// The tile size does not divide the loop extent (this rectangular IR
    /// has no remainder loops).
    NonDivisibleTile {
        /// Loop extent.
        extent: i64,
        /// Requested tile size.
        tile: i64,
    },
}

impl fmt::Display for TransformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransformError::IllegalDependence { distance } => {
                write!(f, "dependence {distance:?} would be violated")
            }
            TransformError::BadDimension { dim, ndims } => {
                write!(f, "dimension {dim} out of range for {ndims}-deep nest")
            }
            TransformError::ShapeMismatch => write!(f, "iteration spaces differ"),
            TransformError::ZeroTile => write!(f, "tile size must be nonzero"),
            TransformError::NonDivisibleTile { extent, tile } => {
                write!(f, "tile {tile} does not divide extent {extent}")
            }
        }
    }
}

impl Error for TransformError {}

/// A perfect affine loop nest.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoopNest {
    /// Human-readable name (for reports).
    pub name: String,
    /// Loop extents, outermost first.
    pub extents: Vec<i64>,
    /// Body accesses.
    pub accesses: Vec<Access>,
    /// Dependence distance vectors.
    pub deps: Vec<Dependence>,
}

impl LoopNest {
    /// Creates a nest, checking that access stride vectors and dependence
    /// distances match the dimensionality.
    ///
    /// # Panics
    ///
    /// Panics on dimensionality mismatches — these are programming errors in
    /// the nest description, not runtime conditions.
    pub fn new(
        name: impl Into<String>,
        extents: Vec<i64>,
        accesses: Vec<Access>,
        deps: Vec<Dependence>,
    ) -> Self {
        let n = extents.len();
        assert!(extents.iter().all(|&e| e > 0), "extents must be positive");
        for a in &accesses {
            assert_eq!(a.strides.len(), n, "access stride arity");
        }
        for d in &deps {
            assert_eq!(d.distance.len(), n, "dependence arity");
        }
        LoopNest {
            name: name.into(),
            extents,
            accesses,
            deps,
        }
    }

    /// Number of loop dimensions.
    pub fn ndims(&self) -> usize {
        self.extents.len()
    }

    /// Total iterations.
    pub fn iterations(&self) -> u64 {
        self.extents.iter().product::<i64>() as u64
    }

    /// Interchanges loops `a` and `b`.
    ///
    /// # Errors
    ///
    /// Returns [`TransformError::BadDimension`] for out-of-range indices and
    /// [`TransformError::IllegalDependence`] if any permuted distance vector
    /// becomes lexicographically negative.
    pub fn interchange(&self, a: usize, b: usize) -> Result<LoopNest, TransformError> {
        let n = self.ndims();
        if a >= n || b >= n {
            return Err(TransformError::BadDimension {
                dim: a.max(b),
                ndims: n,
            });
        }
        let mut out = self.clone();
        out.extents.swap(a, b);
        for acc in &mut out.accesses {
            acc.strides.swap(a, b);
        }
        for dep in &mut out.deps {
            dep.distance.swap(a, b);
            if !dep.is_legal() {
                return Err(TransformError::IllegalDependence {
                    distance: dep.distance.clone(),
                });
            }
        }
        out.name = format!("{}_ic{}{}", self.name, a, b);
        Ok(out)
    }

    /// Strip-mines dimension `dim` by `tile` and moves the tile loop
    /// outermost (classic tiling step for one dimension).
    ///
    /// # Errors
    ///
    /// Returns [`TransformError::ZeroTile`] / [`TransformError::BadDimension`]
    /// / [`TransformError::NonDivisibleTile`] for bad arguments, and
    /// [`TransformError::IllegalDependence`] if a dependence crosses tiles
    /// backward (distance in `dim` negative — conservatively rejected).
    pub fn tile(&self, dim: usize, tile: i64) -> Result<LoopNest, TransformError> {
        if tile <= 0 {
            return Err(TransformError::ZeroTile);
        }
        let n = self.ndims();
        if dim >= n {
            return Err(TransformError::BadDimension { dim, ndims: n });
        }
        if self.extents[dim] % tile != 0 {
            return Err(TransformError::NonDivisibleTile {
                extent: self.extents[dim],
                tile,
            });
        }
        // Conservative legality: all dependences must have non-negative
        // distance along the tiled dimension.
        for dep in &self.deps {
            if dep.distance[dim] < 0 {
                return Err(TransformError::IllegalDependence {
                    distance: dep.distance.clone(),
                });
            }
        }
        let extent = self.extents[dim];
        let tiles = extent / tile;
        let inner = tile;

        let mut extents = Vec::with_capacity(n + 1);
        extents.push(tiles);
        extents.extend_from_slice(&self.extents);
        let mut out_extents = extents;
        out_extents[dim + 1] = inner;

        let accesses = self
            .accesses
            .iter()
            .map(|a| {
                let mut strides = Vec::with_capacity(n + 1);
                // The tile loop advances by tile * original stride.
                strides.push(a.strides[dim] * tile);
                strides.extend_from_slice(&a.strides);
                Access {
                    base: a.base,
                    strides,
                    is_store: a.is_store,
                }
            })
            .collect();
        let deps = self
            .deps
            .iter()
            .map(|d| {
                let mut distance = Vec::with_capacity(n + 1);
                distance.push(d.distance[dim] / tile.max(1));
                distance.extend_from_slice(&d.distance);
                Dependence { distance }
            })
            .collect();

        Ok(LoopNest {
            name: format!("{}_t{}x{}", self.name, dim, tile),
            extents: out_extents,
            accesses,
            deps,
        })
    }

    /// Fuses two nests with identical iteration spaces into one (the bodies
    /// concatenate).
    ///
    /// # Errors
    ///
    /// Returns [`TransformError::ShapeMismatch`] when extents differ, and
    /// [`TransformError::IllegalDependence`] if any `cross` dependence (from
    /// the first body to the second) has a lexicographically negative
    /// distance — fusing would then execute the consumer before its producer.
    pub fn fuse(
        a: &LoopNest,
        b: &LoopNest,
        cross: &[Dependence],
    ) -> Result<LoopNest, TransformError> {
        if a.extents != b.extents {
            return Err(TransformError::ShapeMismatch);
        }
        for dep in cross {
            if !dep.is_legal() {
                return Err(TransformError::IllegalDependence {
                    distance: dep.distance.clone(),
                });
            }
        }
        let mut accesses = a.accesses.clone();
        accesses.extend(b.accesses.iter().cloned());
        let mut deps = a.deps.clone();
        deps.extend(b.deps.iter().cloned());
        deps.extend(cross.iter().cloned());
        Ok(LoopNest {
            name: format!("{}+{}", a.name, b.name),
            extents: a.extents.clone(),
            accesses,
            deps,
        })
    }

    /// Generates the byte-address stream of one execution of the nest
    /// (row-major iteration order, body accesses in declaration order).
    ///
    /// Intended for the cost model; the stream length is
    /// `iterations() * accesses.len()`.
    pub fn address_stream(&self) -> AddressStream<'_> {
        AddressStream {
            nest: self,
            ivs: vec![0; self.ndims()],
            access_idx: 0,
            done: self.iterations() == 0 || self.accesses.is_empty(),
        }
    }
}

/// Iterator over a nest's (address, is_store) stream; see
/// [`LoopNest::address_stream`].
#[derive(Debug)]
pub struct AddressStream<'a> {
    nest: &'a LoopNest,
    ivs: Vec<i64>,
    access_idx: usize,
    done: bool,
}

impl Iterator for AddressStream<'_> {
    type Item = (u64, bool);

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        let acc = &self.nest.accesses[self.access_idx];
        let mut addr = acc.base as i64;
        for (iv, st) in self.ivs.iter().zip(acc.strides.iter()) {
            addr += iv * st;
        }
        let item = (addr.max(0) as u64, acc.is_store);

        // Advance: next access, then odometer over ivs.
        self.access_idx += 1;
        if self.access_idx == self.nest.accesses.len() {
            self.access_idx = 0;
            let mut d = self.nest.ndims();
            loop {
                if d == 0 {
                    self.done = true;
                    break;
                }
                d -= 1;
                self.ivs[d] += 1;
                if self.ivs[d] < self.nest.extents[d] {
                    break;
                }
                self.ivs[d] = 0;
            }
        }
        Some(item)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row_major_2d() -> LoopNest {
        // for i in 0..4 { for j in 0..8 { load A[i*64 + j*8] } }
        LoopNest::new(
            "a",
            vec![4, 8],
            vec![Access {
                base: 0,
                strides: vec![64, 8],
                is_store: false,
            }],
            vec![],
        )
    }

    #[test]
    fn stream_covers_iteration_space() {
        let n = row_major_2d();
        let stream: Vec<u64> = n.address_stream().map(|(a, _)| a).collect();
        assert_eq!(stream.len(), 32);
        assert_eq!(stream[0], 0);
        assert_eq!(stream[1], 8);
        assert_eq!(stream[8], 64);
        assert_eq!(*stream.last().unwrap(), 3 * 64 + 7 * 8);
    }

    #[test]
    fn interchange_swaps_order() {
        let n = row_major_2d();
        let ic = n.interchange(0, 1).unwrap();
        let stream: Vec<u64> = ic.address_stream().map(|(a, _)| a).collect();
        assert_eq!(stream.len(), 32);
        // Now the column loop is outermost: first two accesses stride by 64.
        assert_eq!(stream[0], 0);
        assert_eq!(stream[1], 64);
    }

    #[test]
    fn interchange_rejects_illegal_dependence() {
        // Dependence (1, -1): legal as-is, illegal when swapped.
        let n = LoopNest::new(
            "d",
            vec![4, 4],
            vec![],
            vec![Dependence {
                distance: vec![1, -1],
            }],
        );
        assert!(n.interchange(0, 1).is_err());
    }

    #[test]
    fn interchange_keeps_legal_dependence() {
        let n = LoopNest::new(
            "d",
            vec![4, 4],
            vec![],
            vec![Dependence {
                distance: vec![1, 1],
            }],
        );
        assert!(n.interchange(0, 1).is_ok());
    }

    #[test]
    fn tile_preserves_touched_addresses() {
        let n = row_major_2d();
        let tiled = n.tile(1, 4).unwrap();
        let mut a: Vec<u64> = n.address_stream().map(|(x, _)| x).collect();
        let mut b: Vec<u64> = tiled.address_stream().map(|(x, _)| x).collect();
        a.sort_unstable();
        a.dedup();
        b.sort_unstable();
        b.dedup();
        assert_eq!(a, b, "tiling must not change the touched address set");
    }

    #[test]
    fn tile_rejects_non_divisible() {
        let n = LoopNest::new("d", vec![16], vec![], vec![]);
        assert!(matches!(
            n.tile(0, 3),
            Err(TransformError::NonDivisibleTile {
                extent: 16,
                tile: 3
            })
        ));
        assert!(n.tile(0, 4).is_ok());
    }

    #[test]
    fn tile_rejects_negative_distance() {
        let n = LoopNest::new(
            "d",
            vec![8],
            vec![],
            vec![Dependence { distance: vec![-1] }],
        );
        assert!(n.tile(0, 4).is_err());
        assert_eq!(n.tile(0, 0).unwrap_err(), TransformError::ZeroTile);
    }

    #[test]
    fn fuse_checks_shape_and_cross_deps() {
        let a = row_major_2d();
        let mut b = row_major_2d();
        b.name = "b".into();
        let fused = LoopNest::fuse(&a, &b, &[]).unwrap();
        assert_eq!(fused.accesses.len(), 2);
        assert_eq!(fused.iterations(), 32);

        let bad_cross = [Dependence {
            distance: vec![0, -1],
        }];
        assert!(LoopNest::fuse(&a, &b, &bad_cross).is_err());
        let ok_cross = [Dependence {
            distance: vec![0, 1],
        }];
        assert!(LoopNest::fuse(&a, &b, &ok_cross).is_ok());

        let c = LoopNest::new("c", vec![2, 2], vec![], vec![]);
        assert_eq!(
            LoopNest::fuse(&a, &c, &[]).unwrap_err(),
            TransformError::ShapeMismatch
        );
    }

    #[test]
    fn dependence_legality() {
        assert!(Dependence {
            distance: vec![0, 0]
        }
        .is_legal());
        assert!(Dependence {
            distance: vec![1, -5]
        }
        .is_legal());
        assert!(!Dependence {
            distance: vec![0, -1]
        }
        .is_legal());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Interchange never changes the multiset of touched addresses.
        #[test]
        fn interchange_preserves_address_set(
            e0 in 1i64..8,
            e1 in 1i64..8,
            s0 in -64i64..64,
            s1 in -64i64..64,
        ) {
            let nest = LoopNest::new(
                "p",
                vec![e0, e1],
                vec![Access { base: 1 << 20, strides: vec![s0, s1], is_store: false }],
                vec![],
            );
            let ic = nest.interchange(0, 1).unwrap();
            let mut a: Vec<u64> = nest.address_stream().map(|(x, _)| x).collect();
            let mut b: Vec<u64> = ic.address_stream().map(|(x, _)| x).collect();
            a.sort_unstable();
            b.sort_unstable();
            prop_assert_eq!(a, b);
        }

        /// Tiling preserves the touched address set and the iteration count.
        #[test]
        fn tiling_preserves_address_set(
            tiles in 1i64..8,
            tile in 1i64..8,
            stride in 1i64..64,
        ) {
            let extent = tiles * tile; // the IR requires dividing tiles
            let nest = LoopNest::new(
                "p",
                vec![extent],
                vec![Access { base: 4096, strides: vec![stride], is_store: false }],
                vec![],
            );
            let tiled = nest.tile(0, tile).unwrap();
            let mut a: Vec<u64> = nest.address_stream().map(|(x, _)| x).collect();
            let mut b: Vec<u64> = tiled.address_stream().map(|(x, _)| x).collect();
            a.sort_unstable();
            a.dedup();
            b.sort_unstable();
            b.dedup();
            prop_assert_eq!(a, b);
        }
    }
}
