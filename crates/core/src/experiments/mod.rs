//! Experiment drivers — one per table/figure of the paper's evaluation.
//!
//! | Paper artifact | Driver |
//! |---|---|
//! | Figure 2 (speed/quality/size triangle) | [`triangle`] |
//! | Figures 3–5 (crf × refs sweep) | [`sweep`] |
//! | Figure 6 (presets) | [`presets`] |
//! | Figure 7 (across videos) | [`videos`] |
//! | Figure 8 (AutoFDO / Graphite) | [`compiler_opts`] |
//! | Figure 9 + Tables III/IV (schedulers) | [`scheduler`] |
//! | All of §IV-A in one call | [`full_report`] |
//! | §V adaptive-streaming guidance (extension) | [`pareto`] |
//! | Issue-port pressure across Table IV (extension) | [`ports`] |

pub mod compiler_opts;
pub mod full_report;
pub mod pareto;
pub mod ports;
pub mod presets;
pub mod scheduler;
pub mod sweep;
pub mod triangle;
pub mod videos;

use std::collections::VecDeque;
use std::sync::mpsc;
use std::sync::Mutex;

use crate::CoreError;

/// Runs `f` over `items` on all available cores, preserving input order.
pub(crate) fn parallel_map<I, O, F>(items: Vec<I>, f: F) -> Result<Vec<O>, CoreError>
where
    I: Send,
    O: Send,
    F: Fn(I) -> Result<O, CoreError> + Sync,
{
    let n = items.len();
    if n == 0 {
        return Ok(Vec::new());
    }
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
        .min(n);
    let queue: Mutex<VecDeque<(usize, I)>> = Mutex::new(items.into_iter().enumerate().collect());
    let (tx, rx) = mpsc::channel::<(usize, Result<O, CoreError>)>();

    crossbeam::thread::scope(|scope| {
        for _ in 0..threads {
            let tx = tx.clone();
            let queue = &queue;
            let f = &f;
            scope.spawn(move |_| loop {
                let job = queue.lock().expect("queue poisoned").pop_front();
                let Some((idx, item)) = job else { break };
                let out = f(item);
                if tx.send((idx, out)).is_err() {
                    break;
                }
            });
        }
    })
    .expect("worker thread panicked");
    drop(tx);

    let mut slots: Vec<Option<Result<O, CoreError>>> = (0..n).map(|_| None).collect();
    for (idx, out) in rx {
        slots[idx] = Some(out);
    }
    slots
        .into_iter()
        .map(|s| s.expect("every job produced a result"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_order() {
        let out = parallel_map((0..100).collect(), |i: i32| Ok(i * 2)).unwrap();
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_propagates_errors() {
        let out = parallel_map(vec![1, 2, 3], |i: i32| {
            if i == 2 {
                Err(CoreError::UnknownVideo { name: "x".into() })
            } else {
                Ok(i)
            }
        });
        assert!(out.is_err());
    }

    #[test]
    fn parallel_map_empty() {
        let out: Vec<i32> = parallel_map(Vec::<i32>::new(), Ok).unwrap();
        assert!(out.is_empty());
    }
}
