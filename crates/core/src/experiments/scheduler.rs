//! The smart-scheduler case study — Figure 9 with Tables III and IV.
//!
//! The four Table III tasks are simulated on the baseline and on all four
//! modified Table IV configurations. The random scheduler's performance is
//! the average over the modified configurations; the smart scheduler
//! assigns tasks one-to-one using only the *baseline characterization*
//! (which Top-down category dominates each task); the best scheduler picks
//! each task's measured optimum without the constraint.

use serde::{Deserialize, Serialize};

use vtx_sched::affinity::benefit_from_characterization;
use vtx_sched::scheduler::{
    best_assignment, match_rate, random_expected_time, smart_assignment, ScheduleOutcome,
};
use vtx_sched::task::{table_iii_tasks, TranscodeTask};
use vtx_telemetry::{instant, Span};
use vtx_uarch::config::UarchConfig;

use super::parallel_map;
use crate::{CoreError, TranscodeOptions, Transcoder};

/// Everything Figure 9 plots.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SchedulerStudy {
    /// The tasks (Table III).
    pub tasks: Vec<TranscodeTask>,
    /// Modified configuration names, column order of `times`.
    pub config_names: Vec<String>,
    /// Measured seconds on the baseline configuration, per task.
    pub baseline_times: Vec<f64>,
    /// Measured seconds, `times[task][config]`.
    pub times: Vec<Vec<f64>>,
    /// Predicted benefit scores the smart scheduler used, `benefit[task][config]`.
    pub benefit: Vec<Vec<f64>>,
    /// Expected total time of the random scheduler.
    pub random_total: f64,
    /// The smart scheduler's outcome (one-to-one, characterization-driven).
    pub smart: ScheduleOutcome,
    /// The best (oracle) scheduler's outcome.
    pub best: ScheduleOutcome,
    /// Fraction of tasks where smart matches best.
    pub smart_match_rate: f64,
}

impl SchedulerStudy {
    /// Total baseline time.
    pub fn baseline_total(&self) -> f64 {
        self.baseline_times.iter().sum()
    }

    /// Speedup of the random scheduler over the baseline configuration.
    pub fn random_speedup(&self) -> f64 {
        self.baseline_total() / self.random_total
    }

    /// Speedup of the smart scheduler over the baseline configuration.
    pub fn smart_speedup(&self) -> f64 {
        self.smart.speedup_over(self.baseline_total())
    }

    /// Speedup of the best scheduler over the baseline configuration.
    pub fn best_speedup(&self) -> f64 {
        self.best.speedup_over(self.baseline_total())
    }

    /// Smart scheduler's advantage over random (the paper reports 3.72%).
    pub fn smart_over_random(&self) -> f64 {
        self.random_total / self.smart.total_time
    }
}

/// Runs the study with the Table III tasks.
///
/// # Errors
///
/// Propagates transcoding failures.
pub fn scheduler_study(seed: u64, sample_shift: u32) -> Result<SchedulerStudy, CoreError> {
    scheduler_study_with_tasks(&table_iii_tasks(), seed, sample_shift)
}

/// Measured (task × config) matrices: the raw material of the Figure 9
/// study and the calibration input of `vtx-serve`'s cost model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MeasuredMatrix {
    /// Modified configuration names, column order of `times`.
    pub config_names: Vec<String>,
    /// Measured seconds on the baseline configuration, per task.
    pub baseline_times: Vec<f64>,
    /// Measured seconds, `times[task][config]`.
    pub times: Vec<Vec<f64>>,
    /// Characterization-driven benefit predictions, `benefit[task][config]`.
    pub benefit: Vec<Vec<f64>>,
}

/// Measures every (task, config) pair on the Table IV configurations plus
/// the baseline, and derives the smart scheduler's benefit predictions from
/// the baseline characterization alone.
///
/// # Errors
///
/// Propagates transcoding failures.
pub fn measure_task_matrix(
    tasks: &[TranscodeTask],
    seed: u64,
    sample_shift: u32,
) -> Result<MeasuredMatrix, CoreError> {
    let configs = UarchConfig::modified_configs();
    let config_names: Vec<String> = configs.iter().map(|c| c.name.clone()).collect();

    // One parallel job per (task, config) pair, plus the baseline column.
    struct Job {
        task_idx: usize,
        config: UarchConfig,
        col: Option<usize>, // None = baseline
    }
    let mut jobs = Vec::new();
    for (ti, _) in tasks.iter().enumerate() {
        jobs.push(Job {
            task_idx: ti,
            config: UarchConfig::baseline(),
            col: None,
        });
        for (ci, cfg) in configs.iter().enumerate() {
            jobs.push(Job {
                task_idx: ti,
                config: cfg.clone(),
                col: Some(ci),
            });
        }
    }

    // Transcoders are built per task up front (shared read-only).
    let transcoders: Vec<Transcoder> = tasks
        .iter()
        .map(|t| Transcoder::from_catalog(&t.video, seed))
        .collect::<Result<_, _>>()?;

    let results = parallel_map(jobs, |job| {
        let opts = TranscodeOptions::on(job.config.clone()).with_sample_shift(sample_shift);
        let report =
            transcoders[job.task_idx].transcode(&tasks[job.task_idx].encoder_config(), &opts)?;
        Ok((job.task_idx, job.col, report))
    })?;

    let n = tasks.len();
    let m = configs.len();
    let mut baseline_times = vec![0.0; n];
    let mut times = vec![vec![0.0; m]; n];
    let mut benefit = vec![vec![0.0; m]; n];
    for (ti, col, report) in results {
        match col {
            None => {
                baseline_times[ti] = report.seconds;
                // Characterization-driven prediction: the baseline run's
                // Top-down shares and miss density are the smart scheduler's
                // only inputs.
                let b = benefit_from_characterization(
                    &report.summary.topdown,
                    report.summary.mpki.l2,
                    report.summary.mpki.l3,
                );
                benefit[ti].copy_from_slice(&b);
            }
            Some(ci) => times[ti][ci] = report.seconds,
        }
    }

    Ok(MeasuredMatrix {
        config_names,
        baseline_times,
        times,
        benefit,
    })
}

/// Runs the study with custom tasks (used by tests and ablations).
///
/// # Errors
///
/// Propagates transcoding failures.
pub fn scheduler_study_with_tasks(
    tasks: &[TranscodeTask],
    seed: u64,
    sample_shift: u32,
) -> Result<SchedulerStudy, CoreError> {
    let _span = Span::enter_with("experiment/scheduler", |a| {
        a.u64("tasks", tasks.len() as u64);
    });
    let MeasuredMatrix {
        config_names,
        baseline_times,
        times,
        benefit,
    } = measure_task_matrix(tasks, seed, sample_shift)?;

    let random_total = random_expected_time(&times);
    let smart = smart_assignment(&benefit, &times);
    let benefit = benefit.clone();
    let best = best_assignment(&times);
    let smart_match_rate = match_rate(&smart.assignment, &best.assignment);

    // One placement event per task: the smart scheduler's pick with its
    // predicted benefit next to the realized time (and the oracle's pick,
    // so mispredictions are visible in the trace).
    for (ti, task) in tasks.iter().enumerate() {
        let ci = smart.assignment[ti];
        instant("sched/placement", |a| {
            a.str("task", &task.video)
                .str("config", &config_names[ci])
                .f64("predicted_benefit", benefit[ti][ci])
                .f64("realized_seconds", times[ti][ci])
                .str("oracle_config", &config_names[best.assignment[ti]])
                .f64("oracle_seconds", times[ti][best.assignment[ti]]);
        });
    }

    Ok(SchedulerStudy {
        tasks: tasks.to_vec(),
        config_names,
        baseline_times,
        times,
        benefit,
        random_total,
        smart,
        best,
        smart_match_rate,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use vtx_codec::Preset;

    /// Small tasks so the 4x(1+4) = 20 simulations stay test-sized; the
    /// full Table III study runs in the fig9 bench.
    #[test]
    fn study_invariants_hold() {
        let tasks = vec![
            TranscodeTask::new("desktop", 30, 2, Preset::Veryfast),
            TranscodeTask::new("holi", 14, 1, Preset::Veryfast),
        ];
        let study = scheduler_study_with_tasks(&tasks, 3, 3).unwrap();
        assert_eq!(study.times.len(), 2);
        assert_eq!(study.times[0].len(), 4);
        assert!(study.baseline_total() > 0.0);
        // Best is at least as good as smart; smart at least as good as its
        // own worst case; all totals positive.
        assert!(study.best.total_time <= study.smart.total_time + 1e-12);
        assert!(study.smart.total_time > 0.0);
        assert!((0.0..=1.0).contains(&study.smart_match_rate));
        // All four modified configs strictly improve on baseline per task
        // (they only add resources), so every scheduler speeds things up.
        assert!(study.best_speedup() >= 1.0);
    }
}
