//! One-call characterization: runs the parameter, preset and video studies
//! and renders a single Markdown report — the paper's evaluation in
//! miniature, for any corpus subset.

use serde::{Deserialize, Serialize};

use vtx_codec::{EncoderConfig, Preset};

use super::presets::{preset_study_subset, PresetRun};
use super::sweep::{crf_refs_sweep, SweepPoint};
use super::videos::{video_study, VideoRun};
use crate::export::{presets_markdown, sweep_markdown, videos_markdown};
use crate::{CoreError, TranscodeOptions, Transcoder};

/// Scope of a characterization run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReportScope {
    /// Video used for the crf × refs sweep and the preset study.
    pub sweep_video: String,
    /// CRF values for the sweep.
    pub crfs: Vec<u8>,
    /// refs values for the sweep.
    pub refs: Vec<u8>,
    /// Presets to study.
    pub presets: Vec<Preset>,
    /// Videos for the cross-video study (`None` = whole catalog).
    pub videos: Option<Vec<String>>,
    /// Seed for clip synthesis.
    pub seed: u64,
}

impl Default for ReportScope {
    fn default() -> Self {
        ReportScope {
            sweep_video: "bike".to_owned(),
            crfs: vec![10, 18, 26, 34, 42],
            refs: vec![1, 4, 8],
            presets: vec![
                Preset::Ultrafast,
                Preset::Veryfast,
                Preset::Medium,
                Preset::Slow,
            ],
            videos: Some(vec![
                "desktop".to_owned(),
                "bike".to_owned(),
                "cricket".to_owned(),
                "holi".to_owned(),
            ]),
            seed: 42,
        }
    }
}

/// The assembled characterization.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Characterization {
    /// Scope that produced this report.
    pub scope: ReportScope,
    /// The crf × refs sweep points.
    pub sweep: Vec<SweepPoint>,
    /// Preset study results.
    pub presets: Vec<PresetRun>,
    /// Cross-video study results.
    pub videos: Vec<VideoRun>,
}

impl Characterization {
    /// Renders the whole characterization as a Markdown document.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str("# Transcoding characterization report\n\n");
        out.push_str(&format!(
            "Sweep video `{}`, seed {}.\n\n",
            self.scope.sweep_video, self.scope.seed
        ));
        out.push_str("## crf x refs sweep (Figures 3-5)\n\n");
        out.push_str(&sweep_markdown(&self.sweep));
        out.push_str("\n## Presets (Figure 6)\n\n");
        out.push_str(&presets_markdown(&self.presets));
        out.push_str("\n## Videos (Figure 7)\n\n");
        out.push_str(&videos_markdown(&self.videos));
        out
    }
}

/// Runs the three profiling studies of §IV-A over the given scope.
///
/// # Errors
///
/// Propagates transcoding failures and unknown video names.
pub fn characterize(
    scope: &ReportScope,
    opts: &TranscodeOptions,
) -> Result<Characterization, CoreError> {
    let _span = vtx_telemetry::Span::enter_with("experiment/characterize", |a| {
        a.str("sweep_video", &scope.sweep_video)
            .u64("crfs", scope.crfs.len() as u64)
            .u64("refs", scope.refs.len() as u64);
    });
    let transcoder = Transcoder::from_catalog(&scope.sweep_video, scope.seed)?;
    let sweep = crf_refs_sweep(
        &transcoder,
        &scope.crfs,
        &scope.refs,
        &EncoderConfig::default(),
        opts,
    )?;
    let presets = preset_study_subset(&transcoder, &scope.presets, opts)?;
    let names: Option<Vec<&str>> = scope
        .videos
        .as_ref()
        .map(|v| v.iter().map(String::as_str).collect());
    let videos = video_study(names.as_deref(), scope.seed, opts)?;
    Ok(Characterization {
        scope: scope.clone(),
        sweep,
        presets,
        videos,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_characterization_renders() {
        let scope = ReportScope {
            sweep_video: "cat".to_owned(),
            crfs: vec![20, 40],
            refs: vec![1],
            presets: vec![Preset::Veryfast],
            videos: Some(vec!["cat".to_owned()]),
            seed: 3,
        };
        let opts = TranscodeOptions::default().with_sample_shift(3);
        let c = characterize(&scope, &opts).unwrap();
        assert_eq!(c.sweep.len(), 2);
        assert_eq!(c.presets.len(), 1);
        assert_eq!(c.videos.len(), 1);
        let md = c.to_markdown();
        assert!(md.contains("# Transcoding characterization report"));
        assert!(md.contains("| crf | refs |"));
        assert!(md.contains("veryfast"));
        assert!(md.contains("cat"));
    }
}
