//! The cross-video study — Figure 7.
//!
//! Every vbench video transcoded with `crf = 23`, `refs = 3`, preset
//! `medium`; results are grouped by resolution and ordered by entropy, like
//! the paper's figure.

use serde::{Deserialize, Serialize};

use vtx_codec::EncoderConfig;
use vtx_frame::{synth, vbench, VideoSpec};
use vtx_telemetry::{progress::ProgressReporter, Span};

use super::parallel_map;
use crate::{CoreError, RunSummary, TranscodeOptions, Transcoder};

/// One video's measurements.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VideoRun {
    /// Catalog metadata (name, resolution, fps, entropy).
    pub spec: VideoSpec,
    /// Transcoded bitrate in kbit/s.
    pub bitrate_kbps: f64,
    /// PSNR in dB.
    pub psnr_db: f64,
    /// Microarchitectural summary.
    pub summary: RunSummary,
}

/// Runs the study over the full Table I catalog (or a named subset).
///
/// Results follow the paper's presentation order: grouped by nominal
/// resolution (ascending), entropy-sorted within each group.
///
/// # Errors
///
/// Returns [`CoreError::UnknownVideo`] for names outside the catalog and
/// propagates transcoding failures.
pub fn video_study(
    names: Option<&[&str]>,
    seed: u64,
    opts: &TranscodeOptions,
) -> Result<Vec<VideoRun>, CoreError> {
    let mut specs: Vec<VideoSpec> = match names {
        Some(list) => list
            .iter()
            .map(|n| {
                vbench::by_name(n).ok_or_else(|| CoreError::UnknownVideo {
                    name: (*n).to_owned(),
                })
            })
            .collect::<Result<_, _>>()?,
        None => vbench::catalog(),
    };
    specs.sort_by(|a, b| {
        a.nominal_height
            .cmp(&b.nominal_height)
            .then(a.entropy.total_cmp(&b.entropy))
    });

    let _span = Span::enter_with("experiment/videos", |a| {
        a.u64("videos", specs.len() as u64);
    });
    let progress = ProgressReporter::new("videos", specs.len() as u64);
    parallel_map(specs, |spec| {
        let _point = Span::enter_with("video_run", |a| {
            a.str("video", &spec.short_name);
        });
        let transcoder = Transcoder::from_video(synth::generate(&spec, seed))?;
        let report = transcoder.transcode(&EncoderConfig::default(), opts)?;
        progress.tick();
        Ok(VideoRun {
            spec,
            bitrate_kbps: report.bitrate_kbps,
            psnr_db: report.psnr_db,
            summary: report.summary,
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subset_study_orders_by_resolution_then_entropy() {
        let opts = TranscodeOptions::default().with_sample_shift(3);
        let runs = video_study(Some(&["holi", "cat", "desktop"]), 5, &opts).unwrap();
        assert_eq!(runs.len(), 3);
        // 480p group (cat 6.8, holi 7.0) precedes 720p (desktop).
        assert_eq!(runs[0].spec.short_name, "cat");
        assert_eq!(runs[1].spec.short_name, "holi");
        assert_eq!(runs[2].spec.short_name, "desktop");
    }

    #[test]
    fn unknown_video_rejected() {
        let opts = TranscodeOptions::default();
        assert!(matches!(
            video_study(Some(&["nope"]), 1, &opts),
            Err(CoreError::UnknownVideo { .. })
        ));
    }
}
