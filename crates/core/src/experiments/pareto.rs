//! Pareto analysis of sweep data — the adaptive-streaming guidance the
//! paper's §V points at ("our results can guide better resource utilization
//! for these adaptive video streaming services").
//!
//! A sweep over (crf, refs) yields points in (bitrate, quality, compute)
//! space; an adaptive-streaming ladder wants the rate/quality *efficient
//! frontier*, and an operator wants rungs that respect a compute budget.

use serde::{Deserialize, Serialize};

use super::sweep::SweepPoint;

/// A point is rate-quality dominated if another point has both no more
/// bitrate and no less PSNR (strictly better in at least one).
fn dominated_by(p: &SweepPoint, q: &SweepPoint) -> bool {
    q.bitrate_kbps <= p.bitrate_kbps
        && q.psnr_db >= p.psnr_db
        && (q.bitrate_kbps < p.bitrate_kbps || q.psnr_db > p.psnr_db)
}

/// The rate-quality efficient frontier of a sweep, sorted by ascending
/// bitrate. Among rate-quality ties, the cheaper (faster) point is kept.
pub fn pareto_front(points: &[SweepPoint]) -> Vec<SweepPoint> {
    let _span = vtx_telemetry::Span::enter_with("experiment/pareto_front", |a| {
        a.u64("points", points.len() as u64);
    });
    let mut front: Vec<SweepPoint> = Vec::new();
    for p in points {
        if points.iter().any(|q| dominated_by(p, q)) {
            continue;
        }
        // Deduplicate exact rate/quality ties by compute cost.
        if let Some(existing) = front
            .iter_mut()
            .find(|f| f.bitrate_kbps == p.bitrate_kbps && f.psnr_db == p.psnr_db)
        {
            if p.summary.seconds < existing.summary.seconds {
                *existing = p.clone();
            }
            continue;
        }
        front.push(p.clone());
    }
    front.sort_by(|a, b| a.bitrate_kbps.total_cmp(&b.bitrate_kbps));
    front
}

/// An encoding-ladder recommendation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LadderPlan {
    /// Chosen operating points, ascending bitrate.
    pub rungs: Vec<SweepPoint>,
    /// Total simulated compute for one pass over the ladder, seconds.
    pub total_seconds: f64,
}

/// Minimum PSNR separation between ladder rungs: adjacent renditions closer
/// than this are perceptually redundant.
pub const MIN_RUNG_SEPARATION_DB: f64 = 1.0;

/// Picks up to `rungs` frontier points that fit a compute budget: rungs are
/// chosen greedily by quality-per-second from the Pareto front (skipping
/// candidates within [`MIN_RUNG_SEPARATION_DB`] of an already-chosen rung),
/// then sorted by bitrate.
pub fn ladder_for_budget(points: &[SweepPoint], rungs: usize, budget_seconds: f64) -> LadderPlan {
    let front = pareto_front(points);
    let mut order: Vec<usize> = (0..front.len()).collect();
    order.sort_by(|&a, &b| {
        let va = front[a].psnr_db / front[a].summary.seconds.max(1e-12);
        let vb = front[b].psnr_db / front[b].summary.seconds.max(1e-12);
        vb.total_cmp(&va)
    });

    let mut chosen: Vec<SweepPoint> = Vec::new();
    let mut spent = 0.0;
    for i in order {
        if chosen.len() >= rungs {
            break;
        }
        let cand = &front[i];
        if chosen
            .iter()
            .any(|c| (c.psnr_db - cand.psnr_db).abs() < MIN_RUNG_SEPARATION_DB)
        {
            continue;
        }
        let cost = cand.summary.seconds;
        if spent + cost <= budget_seconds {
            spent += cost;
            chosen.push(cand.clone());
        }
    }
    chosen.sort_by(|a, b| a.bitrate_kbps.total_cmp(&b.bitrate_kbps));
    LadderPlan {
        rungs: chosen,
        total_seconds: spent,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RunSummary;
    use vtx_trace::report::{MpkiReport, StallPki};
    use vtx_uarch::topdown::TopDown;

    fn pt(crf: u8, refs: u8, kbps: f64, psnr: f64, secs: f64) -> SweepPoint {
        SweepPoint {
            crf,
            refs,
            bitrate_kbps: kbps,
            psnr_db: psnr,
            summary: RunSummary {
                seconds: secs,
                ipc: 1.0,
                instructions: 1000,
                topdown: TopDown {
                    retiring: 1.0,
                    frontend: 0.0,
                    bad_speculation: 0.0,
                    backend_memory: 0.0,
                    backend_core: 0.0,
                },
                mpki: MpkiReport::default(),
                stalls: StallPki::default(),
            },
        }
    }

    #[test]
    fn dominated_points_are_dropped() {
        let pts = vec![
            pt(20, 1, 100.0, 40.0, 1.0),
            pt(25, 1, 120.0, 39.0, 1.0), // dominated: bigger AND worse
            pt(30, 1, 50.0, 35.0, 0.8),
            pt(35, 1, 60.0, 34.0, 0.7), // dominated by the 50kbps/35dB point
        ];
        let front = pareto_front(&pts);
        let crfs: Vec<u8> = front.iter().map(|p| p.crf).collect();
        assert_eq!(crfs, vec![30, 20]); // ascending bitrate
    }

    #[test]
    fn ties_keep_the_cheaper_point() {
        let pts = vec![
            pt(23, 8, 80.0, 38.0, 2.0),
            pt(23, 2, 80.0, 38.0, 1.0), // identical rate/quality, cheaper
        ];
        let front = pareto_front(&pts);
        assert_eq!(front.len(), 1);
        assert_eq!(front[0].refs, 2);
    }

    #[test]
    fn ladder_respects_budget_and_rung_count() {
        let pts = vec![
            pt(16, 1, 200.0, 45.0, 3.0),
            pt(24, 1, 100.0, 41.0, 2.0),
            pt(32, 1, 50.0, 36.0, 1.0),
            pt(40, 1, 25.0, 31.0, 0.5),
        ];
        let plan = ladder_for_budget(&pts, 3, 3.6);
        assert!(plan.rungs.len() <= 3);
        assert!(plan.total_seconds <= 3.6);
        // Rungs ascend in bitrate.
        for w in plan.rungs.windows(2) {
            assert!(w[0].bitrate_kbps <= w[1].bitrate_kbps);
        }
        // The cheap high-value rungs fit; the 3-second archive rung cannot
        // (it alone nearly exhausts the budget after cheaper picks).
        assert!(plan.rungs.iter().any(|p| p.crf == 40));
    }

    #[test]
    fn rungs_are_perceptually_separated() {
        let pts = vec![
            pt(30, 1, 50.0, 36.0, 1.0),
            pt(30, 2, 49.5, 36.2, 1.1), // within 1 dB of the rung above
            pt(24, 1, 100.0, 41.0, 2.0),
        ];
        let plan = ladder_for_budget(&pts, 3, 100.0);
        for (i, a) in plan.rungs.iter().enumerate() {
            for b in &plan.rungs[i + 1..] {
                assert!(
                    (a.psnr_db - b.psnr_db).abs() >= MIN_RUNG_SEPARATION_DB,
                    "{} vs {}",
                    a.psnr_db,
                    b.psnr_db
                );
            }
        }
    }

    #[test]
    fn empty_sweep_is_fine() {
        assert!(pareto_front(&[]).is_empty());
        let plan = ladder_for_budget(&[], 4, 10.0);
        assert!(plan.rungs.is_empty());
        assert_eq!(plan.total_seconds, 0.0);
    }

    #[test]
    fn frontier_is_mutually_nondominated() {
        let pts: Vec<SweepPoint> = (0..30)
            .map(|i| {
                let f = f64::from(i);
                pt(
                    (10 + i) as u8,
                    1,
                    200.0 - f * 6.0 + (f * 7.0) % 13.0,
                    45.0 - f * 0.4 + (f * 3.0) % 2.0,
                    1.0,
                )
            })
            .collect();
        let front = pareto_front(&pts);
        for a in &front {
            for b in &front {
                assert!(!dominated_by(a, b) || std::ptr::eq(a, b));
            }
        }
    }
}
