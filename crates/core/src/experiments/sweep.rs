//! The crf × refs parameter sweep — Figures 3, 4 and 5.
//!
//! The paper varies `crf` 1–51 and `refs` 1–16 (816 combinations) on a
//! single video and plots Top-down heat maps (Figure 3), the
//! quality/size/time projections (Figure 4) and eight microarchitectural
//! event rates (Figure 5). [`crf_refs_sweep`] regenerates any grid of that
//! plane; [`default_crf_grid`]/[`default_refs_grid`] give a strided subset
//! that keeps the default bench run fast, while the full 816-point grid is
//! available through [`full_crf_grid`]/[`full_refs_grid`].

use serde::{Deserialize, Serialize};

use vtx_codec::EncoderConfig;
use vtx_telemetry::{progress::ProgressReporter, Span};

use super::parallel_map;
use crate::{CoreError, RunSummary, TranscodeOptions, Transcoder};

/// One grid point of the sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// CRF value of this point.
    pub crf: u8,
    /// Reference-frame count of this point.
    pub refs: u8,
    /// Transcoded bitrate in kbit/s (Figure 4's size axis).
    pub bitrate_kbps: f64,
    /// PSNR in dB (Figure 4's quality axis).
    pub psnr_db: f64,
    /// Microarchitectural summary (Figures 3 and 5).
    pub summary: RunSummary,
}

/// The paper's full CRF axis (1..=51).
pub fn full_crf_grid() -> Vec<u8> {
    (1..=51).collect()
}

/// The paper's full refs axis (1..=16).
pub fn full_refs_grid() -> Vec<u8> {
    (1..=16).collect()
}

/// Strided CRF axis for fast runs (11 values).
pub fn default_crf_grid() -> Vec<u8> {
    (1..=51).step_by(5).collect()
}

/// Strided refs axis for fast runs (5 values).
pub fn default_refs_grid() -> Vec<u8> {
    vec![1, 2, 4, 8, 16]
}

/// Runs the sweep over the cartesian product of the two grids, starting
/// from `base_cfg` (its rate mode is overridden per point). Points run in
/// parallel; results come back in grid order (crf-major).
///
/// # Errors
///
/// Propagates the first transcoding failure.
pub fn crf_refs_sweep(
    transcoder: &Transcoder,
    crfs: &[u8],
    refs_list: &[u8],
    base_cfg: &EncoderConfig,
    opts: &TranscodeOptions,
) -> Result<Vec<SweepPoint>, CoreError> {
    let _span = Span::enter_with("experiment/sweep", |a| {
        a.u64("crf_values", crfs.len() as u64)
            .u64("refs_values", refs_list.len() as u64);
    });
    let mut points = Vec::new();
    for &crf in crfs {
        for &refs in refs_list {
            points.push((crf, refs));
        }
    }
    let progress = ProgressReporter::new("sweep", points.len() as u64);
    parallel_map(points, |(crf, refs)| {
        let _point = Span::enter_with("sweep_point", |a| {
            a.u64("crf", u64::from(crf)).u64("refs", u64::from(refs));
        });
        let cfg = base_cfg.clone().with_crf(f64::from(crf)).with_refs(refs);
        let report = transcoder.transcode(&cfg, opts)?;
        progress.tick();
        Ok(SweepPoint {
            crf,
            refs,
            bitrate_kbps: report.bitrate_kbps,
            psnr_db: report.psnr_db,
            summary: report.summary,
        })
    })
}

/// Figure 4's projection B helper: for each crf, the (refs, seconds)
/// series, demonstrating the elbow of diminishing returns.
pub fn projection_time_vs_refs(points: &[SweepPoint]) -> Vec<(u8, Vec<(u8, f64)>)> {
    let mut crfs: Vec<u8> = points.iter().map(|p| p.crf).collect();
    crfs.sort_unstable();
    crfs.dedup();
    crfs.into_iter()
        .map(|crf| {
            let mut series: Vec<(u8, f64)> = points
                .iter()
                .filter(|p| p.crf == crf)
                .map(|p| (p.refs, p.summary.seconds))
                .collect();
            series.sort_by_key(|&(r, _)| r);
            (crf, series)
        })
        .collect()
}

/// Figure 4's projection A helper: for each crf, the bitrate range achieved
/// by varying refs (the "line length" the paper discusses).
pub fn projection_bitrate_range(points: &[SweepPoint]) -> Vec<(u8, f64, f64)> {
    let mut crfs: Vec<u8> = points.iter().map(|p| p.crf).collect();
    crfs.sort_unstable();
    crfs.dedup();
    crfs.into_iter()
        .map(|crf| {
            let rates: Vec<f64> = points
                .iter()
                .filter(|p| p.crf == crf)
                .map(|p| p.bitrate_kbps)
                .collect();
            let min = rates.iter().copied().fold(f64::INFINITY, f64::min);
            let max = rates.iter().copied().fold(0.0, f64::max);
            (crf, min, max)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use vtx_frame::{synth, vbench};

    fn tiny_transcoder() -> Transcoder {
        let mut spec = vbench::by_name("cricket").unwrap();
        spec.sim_width = 64;
        spec.sim_height = 48;
        spec.sim_frames = 5;
        Transcoder::from_video(synth::generate(&spec, 3)).unwrap()
    }

    #[test]
    fn sweep_covers_grid_in_order() {
        let t = tiny_transcoder();
        let opts = TranscodeOptions::default().with_sample_shift(1);
        let pts = crf_refs_sweep(&t, &[20, 40], &[1, 4], &EncoderConfig::default(), &opts).unwrap();
        assert_eq!(pts.len(), 4);
        assert_eq!((pts[0].crf, pts[0].refs), (20, 1));
        assert_eq!((pts[3].crf, pts[3].refs), (40, 4));
    }

    #[test]
    fn projections_group_by_crf() {
        let t = tiny_transcoder();
        let opts = TranscodeOptions::default().with_sample_shift(1);
        let pts = crf_refs_sweep(&t, &[20, 40], &[1, 4], &EncoderConfig::default(), &opts).unwrap();
        let proj_b = projection_time_vs_refs(&pts);
        assert_eq!(proj_b.len(), 2);
        assert_eq!(proj_b[0].1.len(), 2);
        let proj_a = projection_bitrate_range(&pts);
        assert_eq!(proj_a.len(), 2);
        for (_, min, max) in proj_a {
            assert!(min <= max);
        }
    }

    #[test]
    fn sweep_is_deterministic_across_runs() {
        let t = tiny_transcoder();
        let opts = TranscodeOptions::default().with_sample_shift(2);
        let run =
            || crf_refs_sweep(&t, &[20, 36], &[1, 2], &EncoderConfig::default(), &opts).unwrap();
        let a = run();
        let b = run();
        assert_eq!(a, b);
    }

    #[test]
    fn grids_have_documented_sizes() {
        assert_eq!(full_crf_grid().len(), 51);
        assert_eq!(full_refs_grid().len(), 16);
        assert_eq!(full_crf_grid().len() * full_refs_grid().len(), 816);
        assert_eq!(default_crf_grid().len(), 11);
        assert_eq!(default_refs_grid().len(), 5);
    }
}
