//! The compiler-optimization study — Figure 8.
//!
//! Three "binaries" transcode the same inputs: the stock build, an
//! AutoFDO-optimized build (trained on profiles collected from the baseline
//! runs, exactly like the real `perf`-record → recompile flow), and a
//! Graphite-optimized build. Per video, each binary's time is averaged over
//! a set of (crf, refs, preset) combinations and reported as a speedup over
//! baseline.

use serde::{Deserialize, Serialize};

use vtx_codec::{instr, Preset};
use vtx_opt::{compile, BinaryVariant};
use vtx_telemetry::Span;
use vtx_trace::kernel::KernelProfile;

use super::parallel_map;
use crate::{CoreError, TranscodeOptions, Transcoder};

/// Speedups for one video (Figure 8's bars).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OptRun {
    /// Video short name.
    pub video: String,
    /// Baseline mean time (seconds) across the parameter combinations.
    pub baseline_seconds: f64,
    /// AutoFDO speedup over baseline (1.05 = 5% faster).
    pub autofdo_speedup: f64,
    /// Graphite speedup over baseline.
    pub graphite_speedup: f64,
}

/// The paper averages each video over 32 parameter combinations; this is
/// the default combination set (4 crf × 2 refs × 4 presets = 32).
pub fn default_combos() -> Vec<(u8, u8, Preset)> {
    let mut out = Vec::new();
    for &crf in &[18u8, 23, 28, 33] {
        for &refs in &[1u8, 3] {
            for &preset in &[
                Preset::Superfast,
                Preset::Veryfast,
                Preset::Medium,
                Preset::Slow,
            ] {
                out.push((crf, refs, preset));
            }
        }
    }
    out
}

/// A reduced combination set for quick runs (4 combinations).
pub fn quick_combos() -> Vec<(u8, u8, Preset)> {
    vec![
        (23, 3, Preset::Veryfast),
        (23, 3, Preset::Medium),
        (33, 1, Preset::Veryfast),
        (18, 3, Preset::Medium),
    ]
}

/// Runs the study for one video over the given combinations.
///
/// # Errors
///
/// Propagates transcoding failures.
pub fn compiler_opt_run(
    transcoder: &Transcoder,
    video_name: &str,
    combos: &[(u8, u8, Preset)],
    opts: &TranscodeOptions,
) -> Result<OptRun, CoreError> {
    let _span = Span::enter_with("experiment/compiler_opts", |a| {
        a.str("video", video_name)
            .u64("combos", combos.len() as u64);
    });
    let kernels = instr::kernel_table();

    // 1. Baseline runs: measure and collect the training profile.
    let mut training = KernelProfile::new(kernels.len());
    let mut baseline_times = Vec::with_capacity(combos.len());
    for &(crf, refs, preset) in combos {
        let cfg = preset.config().with_crf(f64::from(crf)).with_refs(refs);
        let report = transcoder.transcode(&cfg, opts)?;
        training.merge(&report.profile.profile);
        baseline_times.push(report.seconds);
    }

    // 2. Build the optimized binaries.
    let autofdo = compile(
        BinaryVariant::AutoFdo,
        kernels,
        Some(&training),
        &opts.uarch,
    )
    .expect("profile supplied");
    let graphite = compile(BinaryVariant::Graphite, kernels, None, &opts.uarch)
        .expect("graphite needs no profile");

    // 3. Re-run the combinations under each binary.
    let mut autofdo_times = Vec::with_capacity(combos.len());
    let mut graphite_times = Vec::with_capacity(combos.len());
    for &(crf, refs, preset) in combos {
        let cfg = preset.config().with_crf(f64::from(crf)).with_refs(refs);
        let fdo_opts = opts.clone().with_binary(&autofdo);
        autofdo_times.push(transcoder.transcode(&cfg, &fdo_opts)?.seconds);
        let gra_opts = opts.clone().with_binary(&graphite);
        graphite_times.push(transcoder.transcode(&cfg, &gra_opts)?.seconds);
    }

    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let base = mean(&baseline_times);
    Ok(OptRun {
        video: video_name.to_owned(),
        baseline_seconds: base,
        autofdo_speedup: base / mean(&autofdo_times),
        graphite_speedup: base / mean(&graphite_times),
    })
}

/// Runs the study across several videos in parallel.
///
/// # Errors
///
/// Returns [`CoreError::UnknownVideo`] for bad names and propagates
/// transcoding failures.
pub fn compiler_opt_study(
    videos: &[&str],
    seed: u64,
    combos: &[(u8, u8, Preset)],
    opts: &TranscodeOptions,
) -> Result<Vec<OptRun>, CoreError> {
    parallel_map(videos.iter().map(|s| s.to_string()).collect(), |name| {
        let transcoder = Transcoder::from_catalog(&name, seed)?;
        compiler_opt_run(&transcoder, &name, combos, opts)
    })
}

/// Mean speedups across videos: the paper's headline 4.66% / 4.42% numbers.
pub fn mean_speedups(runs: &[OptRun]) -> (f64, f64) {
    if runs.is_empty() {
        return (1.0, 1.0);
    }
    let n = runs.len() as f64;
    (
        runs.iter().map(|r| r.autofdo_speedup).sum::<f64>() / n,
        runs.iter().map(|r| r.graphite_speedup).sum::<f64>() / n,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use vtx_frame::{synth, vbench};

    #[test]
    fn combos_have_documented_sizes() {
        assert_eq!(default_combos().len(), 32);
        assert_eq!(quick_combos().len(), 4);
    }

    #[test]
    fn optimized_binaries_speed_up_tiny_workload() {
        let mut spec = vbench::by_name("cricket").unwrap();
        spec.sim_width = 96;
        spec.sim_height = 64;
        spec.sim_frames = 6;
        let t = Transcoder::from_video(synth::generate(&spec, 3)).unwrap();
        let opts = TranscodeOptions::default().with_sample_shift(1);
        let run = compiler_opt_run(&t, "cricket", &[(23, 3, Preset::Veryfast)], &opts).unwrap();
        assert!(
            run.autofdo_speedup > 1.0,
            "autofdo speedup {}",
            run.autofdo_speedup
        );
        assert!(
            run.graphite_speedup > 1.0,
            "graphite speedup {}",
            run.graphite_speedup
        );
    }

    #[test]
    fn mean_speedups_average() {
        let runs = vec![
            OptRun {
                video: "a".into(),
                baseline_seconds: 1.0,
                autofdo_speedup: 1.02,
                graphite_speedup: 1.06,
            },
            OptRun {
                video: "b".into(),
                baseline_seconds: 1.0,
                autofdo_speedup: 1.06,
                graphite_speedup: 1.02,
            },
        ];
        let (a, g) = mean_speedups(&runs);
        assert!((a - 1.04).abs() < 1e-12);
        assert!((g - 1.04).abs() < 1e-12);
        assert_eq!(mean_speedups(&[]), (1.0, 1.0));
    }
}
