//! The port-pressure study — the issue-port extension of the Top-down
//! characterization.
//!
//! One video is transcoded on every Table IV configuration; each run's
//! report is then *port-refined*: the profiled hotspot mix is solved
//! against the configuration's port layout and the cycle accounting re-run
//! under the resulting dispatch bound. The study reports both views side by
//! side, showing how much backend-core share the flat-width model hides and
//! which configurations (the core-widened `be_op2`) buy it back.

use serde::{Deserialize, Serialize};

use vtx_codec::EncoderConfig;
use vtx_frame::{synth, vbench};
use vtx_port::{refine_report, PortRefinement};
use vtx_telemetry::Span;
use vtx_uarch::config::UarchConfig;

use super::parallel_map;
use crate::{CoreError, RunSummary, TranscodeOptions, Transcoder};

/// One configuration's flat-width vs port-aware accounting.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PortStudyRun {
    /// Configuration name (Table IV column).
    pub config_name: String,
    /// Summary under the flat dispatch-width model.
    pub flat: RunSummary,
    /// Summary under the port-aware dispatch bound.
    pub ported: RunSummary,
    /// The refinement details (mix, bound, per-port utilization).
    pub refinement: PortRefinement,
}

/// Runs the study: `video` transcoded on every Table IV configuration,
/// each report port-refined.
///
/// # Errors
///
/// Returns [`CoreError::UnknownVideo`] for names outside the catalog and
/// propagates transcoding and port-model failures.
pub fn port_study(
    video: &str,
    seed: u64,
    opts: &TranscodeOptions,
) -> Result<Vec<PortStudyRun>, CoreError> {
    let spec = vbench::by_name(video).ok_or_else(|| CoreError::UnknownVideo {
        name: video.to_owned(),
    })?;
    let _span = Span::enter_with("experiment/ports", |a| {
        a.str("video", video);
    });
    let configs = UarchConfig::table_iv();
    parallel_map(configs, |cfg| {
        let _point = Span::enter_with("port_run", |a| {
            a.str("config", &cfg.name);
        });
        let run_opts = TranscodeOptions {
            uarch: cfg.clone(),
            ..opts.clone()
        };
        let transcoder = Transcoder::from_video(synth::generate(&spec, seed))?;
        let report = transcoder.transcode(&EncoderConfig::default(), &run_opts)?;
        let flat = RunSummary::from_profile(&report.profile);
        let mut refined = report.profile;
        let refinement = refine_report(&mut refined, &cfg)?;
        Ok(PortStudyRun {
            config_name: cfg.name,
            flat,
            ported: RunSummary::from_profile(&refined),
            refinement,
        })
    })
}

/// Renders the study as a fixed-precision text table (deterministic for a
/// fixed seed; safe to byte-compare across runs).
pub fn render_port_study(runs: &[PortStudyRun]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<10} {:>9} {:>9} {:>8} {:>8} {:>8}",
        "config", "flat_ipc", "port_ipc", "bound", "core_fl", "core_pt"
    );
    for r in runs {
        let _ = writeln!(
            out,
            "{:<10} {:>9.3} {:>9.3} {:>8.3} {:>8.3} {:>8.3}",
            r.config_name,
            r.flat.ipc,
            r.ported.ipc,
            r.refinement.dispatch_bound,
            r.flat.topdown.backend_core,
            r.ported.topdown.backend_core,
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn study_covers_table_iv_and_port_model_only_slows() {
        let opts = TranscodeOptions::default().with_sample_shift(3);
        let runs = port_study("cat", 7, &opts).unwrap();
        assert_eq!(runs.len(), 5);
        for r in &runs {
            // Port contention can only stretch time, never shrink it.
            assert!(
                r.ported.seconds >= r.flat.seconds - 1e-12,
                "{}: {} vs {}",
                r.config_name,
                r.ported.seconds,
                r.flat.seconds
            );
            assert!(
                (r.ported.topdown.sum() - 1.0).abs() < 1e-9,
                "{}",
                r.config_name
            );
            assert!(r.refinement.dispatch_bound > 0.0);
        }
        let text = render_port_study(&runs);
        assert!(text.contains("baseline") && text.contains("be_op2"));
    }

    #[test]
    fn unknown_video_rejected() {
        let opts = TranscodeOptions::default();
        assert!(matches!(
            port_study("nope", 1, &opts),
            Err(CoreError::UnknownVideo { .. })
        ));
    }
}
