//! The preset study — Figure 6.
//!
//! All ten x264 presets on one video, with `crf = 23` and `refs = 3` fixed
//! (the paper studies those two parameters separately).

use serde::{Deserialize, Serialize};

use vtx_codec::Preset;
use vtx_telemetry::Span;

use super::parallel_map;
use crate::{CoreError, RunSummary, TranscodeOptions, Transcoder};

/// One preset's measurements.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PresetRun {
    /// The preset.
    pub preset: Preset,
    /// Transcoded bitrate in kbit/s.
    pub bitrate_kbps: f64,
    /// PSNR in dB.
    pub psnr_db: f64,
    /// Microarchitectural summary.
    pub summary: RunSummary,
}

/// Runs every preset in [`Preset::ALL`] order (the x-axis of Figure 6).
///
/// # Errors
///
/// Propagates the first transcoding failure.
pub fn preset_study(
    transcoder: &Transcoder,
    opts: &TranscodeOptions,
) -> Result<Vec<PresetRun>, CoreError> {
    preset_study_subset(transcoder, &Preset::ALL, opts)
}

/// Runs a subset of presets (used by fast tests; benches run all ten).
///
/// # Errors
///
/// Propagates the first transcoding failure.
pub fn preset_study_subset(
    transcoder: &Transcoder,
    presets: &[Preset],
    opts: &TranscodeOptions,
) -> Result<Vec<PresetRun>, CoreError> {
    let _span = Span::enter_with("experiment/presets", |a| {
        a.u64("presets", presets.len() as u64);
    });
    parallel_map(presets.to_vec(), |preset| {
        let _point = Span::enter_with("preset_run", |a| {
            a.str("preset", preset.name());
        });
        // Paper setup: preset options with the default crf (23) and refs (3).
        let cfg = preset.config().with_crf(23.0).with_refs(3);
        let report = transcoder.transcode(&cfg, opts)?;
        Ok(PresetRun {
            preset,
            bitrate_kbps: report.bitrate_kbps,
            psnr_db: report.psnr_db,
            summary: report.summary,
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use vtx_frame::{synth, vbench};

    fn tiny_transcoder() -> Transcoder {
        let mut spec = vbench::by_name("bike").unwrap();
        spec.sim_width = 64;
        spec.sim_height = 48;
        spec.sim_frames = 5;
        Transcoder::from_video(synth::generate(&spec, 3)).unwrap()
    }

    #[test]
    fn faster_presets_transcode_faster() {
        let t = tiny_transcoder();
        let opts = TranscodeOptions::default().with_sample_shift(1);
        let runs = preset_study_subset(
            &t,
            &[Preset::Ultrafast, Preset::Medium, Preset::Slower],
            &opts,
        )
        .unwrap();
        assert_eq!(runs.len(), 3);
        // On a 64x48 test clip the ultrafast/medium gap is within noise
        // (the full-size ordering is asserted by the fig6 bench and the
        // paper_trends integration test); `slower` must clearly lose.
        assert!(
            runs[0].summary.seconds < runs[2].summary.seconds,
            "ultrafast {} < slower {}",
            runs[0].summary.seconds,
            runs[2].summary.seconds
        );
        assert!(
            runs[1].summary.seconds < runs[2].summary.seconds,
            "medium {} < slower {}",
            runs[1].summary.seconds,
            runs[2].summary.seconds
        );
    }

    #[test]
    fn slower_presets_compress_better() {
        let t = tiny_transcoder();
        let opts = TranscodeOptions::default().with_sample_shift(2);
        let runs = preset_study_subset(&t, &[Preset::Ultrafast, Preset::Slow], &opts).unwrap();
        assert!(
            runs[1].bitrate_kbps < runs[0].bitrate_kbps,
            "slow {} should beat ultrafast {}",
            runs[1].bitrate_kbps,
            runs[0].bitrate_kbps
        );
    }
}
