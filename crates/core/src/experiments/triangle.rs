//! The speed / quality / size triangle — Figure 2.
//!
//! Figure 2 is a conceptual diagram: raising `crf` actively degrades
//! quality while passively shrinking files and speeding up transcoding;
//! raising `refs` actively shrinks files while passively slowing
//! transcoding. [`triangle_study`] measures a small grid and
//! [`TriangleReport::directions`] checks each arrow of the diagram
//! empirically.

use serde::{Deserialize, Serialize};

use vtx_codec::EncoderConfig;

use super::sweep::{crf_refs_sweep, SweepPoint};
use crate::{CoreError, TranscodeOptions, Transcoder};

/// Empirical verification of Figure 2's arrows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TriangleDirections {
    /// Raising crf lowers PSNR (active effect, red arrow).
    pub crf_degrades_quality: bool,
    /// Raising crf shrinks the file (passive effect, green arrow).
    pub crf_shrinks_size: bool,
    /// Raising crf speeds up transcoding (passive effect, green arrow).
    pub crf_speeds_up: bool,
    /// Raising refs shrinks the file (active effect, green arrow).
    pub refs_shrink_size: bool,
    /// Raising refs slows down transcoding (passive effect, red arrow).
    pub refs_slow_down: bool,
}

impl TriangleDirections {
    /// Whether every arrow of the diagram holds.
    pub fn all_hold(&self) -> bool {
        self.crf_degrades_quality
            && self.crf_shrinks_size
            && self.crf_speeds_up
            && self.refs_shrink_size
            && self.refs_slow_down
    }
}

/// The measured grid plus its direction summary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TriangleReport {
    /// Measured grid points.
    pub points: Vec<SweepPoint>,
    /// CRF values of the grid.
    pub crfs: Vec<u8>,
    /// refs values of the grid.
    pub refs: Vec<u8>,
}

impl TriangleReport {
    /// Checks the diagram's arrows by comparing the grid corners, averaged
    /// over the other axis.
    pub fn directions(&self) -> TriangleDirections {
        let lo_crf = *self.crfs.first().expect("nonempty grid");
        let hi_crf = *self.crfs.last().expect("nonempty grid");
        let lo_refs = *self.refs.first().expect("nonempty grid");
        let hi_refs = *self.refs.last().expect("nonempty grid");

        let avg = |f: &dyn Fn(&SweepPoint) -> bool, g: &dyn Fn(&SweepPoint) -> f64| {
            let sel: Vec<f64> = self.points.iter().filter(|p| f(p)).map(g).collect();
            sel.iter().sum::<f64>() / sel.len().max(1) as f64
        };

        let at_crf =
            |crf: u8, g: &dyn Fn(&SweepPoint) -> f64| avg(&move |p: &SweepPoint| p.crf == crf, g);
        let at_refs =
            |r: u8, g: &dyn Fn(&SweepPoint) -> f64| avg(&move |p: &SweepPoint| p.refs == r, g);

        TriangleDirections {
            crf_degrades_quality: at_crf(hi_crf, &|p| p.psnr_db) < at_crf(lo_crf, &|p| p.psnr_db),
            crf_shrinks_size: at_crf(hi_crf, &|p| p.bitrate_kbps)
                < at_crf(lo_crf, &|p| p.bitrate_kbps),
            crf_speeds_up: at_crf(hi_crf, &|p| p.summary.seconds)
                < at_crf(lo_crf, &|p| p.summary.seconds),
            refs_shrink_size: at_refs(hi_refs, &|p| p.bitrate_kbps)
                <= at_refs(lo_refs, &|p| p.bitrate_kbps),
            refs_slow_down: at_refs(hi_refs, &|p| p.summary.seconds)
                > at_refs(lo_refs, &|p| p.summary.seconds),
        }
    }
}

/// Measures the triangle on the default crf × refs grid.
///
/// # Errors
///
/// Propagates transcoding failures.
pub fn triangle_study(
    transcoder: &Transcoder,
    opts: &TranscodeOptions,
) -> Result<TriangleReport, CoreError> {
    triangle_study_with(
        transcoder,
        vec![16, 24, 32, 40],
        vec![1, 4, 8, 16],
        &EncoderConfig::default(),
        opts,
    )
}

/// Measures the triangle on a custom grid and base configuration.
///
/// Note that `refs` values beyond the number of anchor frames the clip
/// produces cannot change behaviour (there is nothing more to reference);
/// pick grids compatible with the clip length and B-frame settings.
///
/// # Errors
///
/// Propagates transcoding failures.
pub fn triangle_study_with(
    transcoder: &Transcoder,
    crfs: Vec<u8>,
    refs: Vec<u8>,
    base_cfg: &EncoderConfig,
    opts: &TranscodeOptions,
) -> Result<TriangleReport, CoreError> {
    let _span = vtx_telemetry::Span::enter("experiment/triangle");
    let points = crf_refs_sweep(transcoder, &crfs, &refs, base_cfg, opts)?;
    Ok(TriangleReport { points, crfs, refs })
}

#[cfg(test)]
mod tests {
    use super::*;
    use vtx_frame::{synth, vbench};

    #[test]
    fn directions_hold_on_tiny_clip() {
        let mut spec = vbench::by_name("cricket").unwrap();
        spec.sim_width = 64;
        spec.sim_height = 48;
        spec.sim_frames = 10;
        let t = Transcoder::from_video(synth::generate(&spec, 3)).unwrap();
        let opts = TranscodeOptions::default().with_sample_shift(2);
        // All-P encode so every frame becomes an anchor: the 10-frame test
        // clip then genuinely exercises refs 1 vs 4.
        let mut cfg = EncoderConfig::default();
        cfg.bframes = 0;
        let report =
            triangle_study_with(&t, vec![16, 24, 32, 40], vec![1, 2, 4], &cfg, &opts).unwrap();
        assert_eq!(report.points.len(), 12);
        let d = report.directions();
        assert!(d.crf_degrades_quality, "{d:?}");
        assert!(d.crf_shrinks_size, "{d:?}");
        assert!(d.crf_speeds_up, "{d:?}");
        assert!(d.refs_slow_down, "{d:?}");
    }
}
