//! Trace export: turn recorded telemetry plus simulation profiles into
//! Chrome trace JSON and flamegraph collapsed stacks.
//!
//! The wall-clock side comes straight from `vtx-telemetry`'s collector. The
//! *simulated-time* side comes from here: whenever telemetry is enabled,
//! [`crate::Transcoder::transcode`] records its final
//! [`ProfileReport`] per microarchitecture configuration, and
//! [`chrome_trace_json`] renders each configuration's interval-model cycle
//! breakdown as a synthetic process track next to the wall-clock tracks —
//! simulated base/frontend/bad-speculation/memory/store-buffer/core cycles,
//! scaled to simulated microseconds, one metadata-named track per config.
//!
//! ```no_run
//! use vtx_core::trace_export;
//! use vtx_telemetry::Collector;
//!
//! Collector::enable();
//! // ... run experiments ...
//! trace_export::write_chrome_trace("trace.json")?;
//! # Ok::<(), std::io::Error>(())
//! ```

use std::collections::BTreeMap;
use std::sync::{Mutex, OnceLock};

use vtx_telemetry::chrome::ChromeTrace;
use vtx_telemetry::flame::CollapsedStacks;
use vtx_telemetry::Collector;
use vtx_trace::ProfileReport;

/// First pid used for synthetic simulated-time tracks (the wall-clock track
/// is [`vtx_telemetry::chrome::WALL_PID`]).
pub const SIM_PID_BASE: u64 = 100;

fn profile_registry() -> &'static Mutex<BTreeMap<String, ProfileReport>> {
    static REGISTRY: OnceLock<Mutex<BTreeMap<String, ProfileReport>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// Records the latest [`ProfileReport`] for its configuration name. Called
/// by [`crate::Transcoder::transcode`] while telemetry is enabled; keeping
/// only the latest report per config bounds memory across 800-point sweeps.
pub fn record_profile(report: &ProfileReport) {
    profile_registry()
        .lock()
        .expect("profile registry poisoned")
        .insert(report.config_name.clone(), report.clone());
}

/// Removes all recorded profiles (used by tests and between export runs).
pub fn clear_profiles() {
    profile_registry()
        .lock()
        .expect("profile registry poisoned")
        .clear();
}

/// Names of the configurations recorded since the last [`clear_profiles`].
pub fn recorded_configs() -> Vec<String> {
    profile_registry()
        .lock()
        .expect("profile registry poisoned")
        .keys()
        .cloned()
        .collect()
}

/// Adds one synthetic process track for `report`'s simulated-time cycle
/// breakdown: sequential complete events, one per non-zero interval-model
/// component, scaled so the track spans the report's simulated seconds.
fn add_sim_track(out: &mut ChromeTrace, pid: u64, report: &ProfileReport) {
    out.add_process_name(pid, &format!("sim: {}", report.config_name));
    out.add_thread_name(pid, 1, "cycle breakdown");
    let b = &report.breakdown;
    if b.total_cycles == 0 {
        return;
    }
    let us_per_cycle = report.seconds * 1e6 / b.total_cycles as f64;
    let components: [(&str, f64); 6] = [
        ("base", b.base_cycles),
        ("frontend", b.frontend_cycles),
        ("bad_speculation", b.badspec_cycles),
        ("memory", b.memory_cycles),
        ("store_buffer", b.sb_cycles),
        ("core", b.core_cycles),
    ];
    let mut cursor = 0.0f64;
    for (name, cycles) in components {
        let dur_us = cycles * us_per_cycle;
        if dur_us <= 0.0 {
            continue;
        }
        out.add_complete(
            name,
            "sim",
            cursor as u64,
            dur_us.max(1.0) as u64,
            (pid, 1),
            &[],
        );
        cursor += dur_us;
    }
    out.add_counter("ipc", 0, pid, report.ipc);
}

/// Drains the collector and renders everything as a Chrome trace-event JSON
/// document: the recorded wall-clock spans plus one simulated-time track per
/// configuration seen by [`record_profile`].
pub fn chrome_trace_json() -> String {
    let trace = Collector::drain();
    let mut out = ChromeTrace::from_trace(&trace);
    let registry = profile_registry()
        .lock()
        .expect("profile registry poisoned");
    for (i, report) in registry.values().enumerate() {
        add_sim_track(&mut out, SIM_PID_BASE + i as u64, report);
    }
    out.to_json()
}

/// Writes [`chrome_trace_json`] to `path` (load the file in Perfetto or
/// `chrome://tracing`).
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_chrome_trace<P: AsRef<std::path::Path>>(path: P) -> std::io::Result<()> {
    std::fs::write(path, chrome_trace_json())
}

/// Collapsed-stack flamegraph lines for every recorded configuration's
/// kernel hotspots (weights = simulated instructions).
pub fn flamegraph_collapsed() -> String {
    let registry = profile_registry()
        .lock()
        .expect("profile registry poisoned");
    let mut stacks = CollapsedStacks::new();
    for report in registry.values() {
        report.collapse_hotspots_into(&mut stacks);
    }
    stacks.render()
}

/// Writes [`flamegraph_collapsed`] to `path` (render with `flamegraph.pl`
/// or `inferno-flamegraph`).
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_flamegraph_collapsed<P: AsRef<std::path::Path>>(path: P) -> std::io::Result<()> {
    std::fs::write(path, flamegraph_collapsed())
}

/// Checks the standard trace environment variable: when `VTX_TRACE` is set
/// and non-empty, enables the collector and returns the destination path for
/// the Chrome trace.
pub fn init_from_env() -> Option<String> {
    let path = std::env::var("VTX_TRACE").ok().filter(|p| !p.is_empty())?;
    Collector::enable();
    Some(path)
}
