//! The transcoder facade: FFmpeg + VTune in one call.

use vtx_codec::encoder::Bitstream;
use vtx_codec::{decode_video, encode_video, instr, EncoderConfig, RateControlMode};
use vtx_frame::{quality, synth, vbench, Video};
use vtx_opt::CompiledBinary;
use vtx_telemetry::{Collector, Span};
use vtx_trace::layout::CodeLayout;
use vtx_trace::plan::DataPlan;
use vtx_trace::{ProfileReport, Profiler};
use vtx_uarch::config::UarchConfig;

use crate::{CoreError, RunSummary};

/// Execution context for one transcode: which microarchitecture, which
/// compiled-binary model, and how densely to sample the simulation.
#[derive(Debug, Clone)]
pub struct TranscodeOptions {
    /// Microarchitecture configuration to simulate.
    pub uarch: UarchConfig,
    /// Code layout of the "binary" (default: linker order).
    pub layout: Option<CodeLayout>,
    /// Loop-transformation plan (default: canonical).
    pub plan: DataPlan,
    /// Profiler sampling shift (0 = trace everything; sweeps use 1–3).
    pub sample_shift: u32,
    /// Wavefront encoder threads: `None` respects the encoder config's
    /// `threads` field, `Some(n)` overrides it (`Some(0)` = auto). The
    /// parallel encoder is bit-identical to the serial one, so this only
    /// changes wall-clock time, never the report.
    pub threads: Option<u32>,
}

impl Default for TranscodeOptions {
    fn default() -> Self {
        TranscodeOptions {
            uarch: UarchConfig::baseline(),
            layout: None,
            plan: DataPlan::canonical(),
            sample_shift: 0,
            threads: None,
        }
    }
}

impl TranscodeOptions {
    /// Options for a specific microarchitecture.
    pub fn on(uarch: UarchConfig) -> Self {
        TranscodeOptions {
            uarch,
            ..Self::default()
        }
    }

    /// Options executing under a compiled-binary variant from `vtx-opt`.
    pub fn with_binary(mut self, binary: &CompiledBinary) -> Self {
        self.layout = Some(binary.layout.clone());
        self.plan = binary.plan;
        self
    }

    /// Sets the sampling shift. Builder-style.
    pub fn with_sample_shift(mut self, shift: u32) -> Self {
        self.sample_shift = shift;
        self
    }

    /// Sets the wavefront encoder thread count (`0` = auto). Builder-style.
    pub fn with_threads(mut self, threads: u32) -> Self {
        self.threads = Some(threads);
        self
    }
}

/// Everything one transcode produces: the three key metrics of §III-A plus
/// the full microarchitectural profile.
#[derive(Debug, Clone)]
pub struct TranscodeReport {
    /// Transcoding speed: simulated seconds on the configured core.
    pub seconds: f64,
    /// Transcoded file size as a bitrate in kbit/s.
    pub bitrate_kbps: f64,
    /// Transcoded video quality: PSNR in dB against the transcode input.
    pub psnr_db: f64,
    /// Compact per-run summary (Top-down, MPKI, stalls).
    pub summary: RunSummary,
    /// The full profile (hotspots, raw counts, kernel profile for FDO).
    pub profile: ProfileReport,
}

/// A transcoding workload bound to one input video.
///
/// Construction encodes the raw synthetic clip once into a high-quality
/// *mezzanine* bitstream — the "uploaded video". Every [`Transcoder::transcode`]
/// call then performs the paper's §II-A two-stage operation: decode the
/// mezzanine to raw frames, re-encode with the requested parameters. Both
/// stages run under the profiler.
#[derive(Debug)]
pub struct Transcoder {
    video: Video,
    mezzanine: Bitstream,
}

impl Transcoder {
    /// Builds the workload for a vbench catalog entry.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownVideo`] for names outside Table I, or a
    /// codec error if the mezzanine encode fails.
    pub fn from_catalog(short_name: &str, seed: u64) -> Result<Self, CoreError> {
        let spec = vbench::by_name(short_name).ok_or_else(|| CoreError::UnknownVideo {
            name: short_name.to_owned(),
        })?;
        Self::from_video(synth::generate(&spec, seed))
    }

    /// Builds the workload from an already-materialized raw video.
    ///
    /// # Errors
    ///
    /// Returns a codec error if the mezzanine encode fails.
    pub fn from_video(video: Video) -> Result<Self, CoreError> {
        // High-quality, fast mezzanine: what an uploader would have sent.
        let mezz_cfg = EncoderConfig {
            rc: RateControlMode::Cqp(14),
            refs: 1,
            subme: 1,
            bframes: 0,
            trellis: 0,
            aq_mode: 0,
            me: vtx_codec::MeMethod::Dia,
            ..EncoderConfig::default()
        };
        // The mezzanine encode is setup, not measurement: sample sparsely.
        let mut prof = throwaway_profiler()?;
        prof.set_sample_shift(6);
        let encoded = encode_video(&video, &mezz_cfg, &mut prof)?;
        Ok(Transcoder {
            video,
            mezzanine: encoded.bitstream,
        })
    }

    /// The source clip.
    pub fn video(&self) -> &Video {
        &self.video
    }

    /// The mezzanine ("uploaded") bitstream that every transcode decodes.
    pub fn mezzanine(&self) -> &Bitstream {
        &self.mezzanine
    }

    /// Runs one profiled transcode: decode the mezzanine, re-encode with
    /// `cfg`, and report speed / size / quality plus the microarchitectural
    /// profile.
    ///
    /// # Errors
    ///
    /// Propagates configuration validation and codec failures.
    pub fn transcode(
        &self,
        cfg: &EncoderConfig,
        opts: &TranscodeOptions,
    ) -> Result<TranscodeReport, CoreError> {
        let _span = Span::enter_with("transcode", |a| {
            a.str("config", &opts.uarch.name)
                .str("video", &self.video.spec.short_name)
                .u64("refs", u64::from(cfg.refs))
                .u64("sample_shift", u64::from(opts.sample_shift));
        });
        let kernels = instr::kernel_table();
        let layout = opts
            .layout
            .clone()
            .unwrap_or_else(|| CodeLayout::default_order(kernels));
        let mut prof = Profiler::new(&opts.uarch, kernels, layout)?;
        prof.set_sample_shift(opts.sample_shift);
        prof.set_data_plan(opts.plan);

        // Stage 1: decode the uploaded bitstream to raw frames.
        let decoded = {
            let _s = Span::enter("transcode/decode");
            decode_video(&self.mezzanine, &mut prof)?
        };
        let input = Video::new(self.video.spec.clone(), decoded.frames);

        // Stage 2: re-encode at the target parameters.
        let mut cfg_eff = cfg.clone();
        if let Some(t) = opts.threads {
            cfg_eff.threads = t;
        }
        let encoded = {
            let _s = Span::enter("transcode/encode");
            encode_video(&input, &cfg_eff, &mut prof)?
        };

        let psnr_db = quality::sequence_psnr(&input.frames, &encoded.recon)?;
        let duration = input.len() as f64 / f64::from(input.spec.fps);
        let bitrate_kbps = encoded.bitstream.bitrate_kbps(duration);

        let profile = prof.finish();
        if Collector::is_enabled() {
            crate::trace_export::record_profile(&profile);
        }
        Ok(TranscodeReport {
            seconds: profile.seconds,
            bitrate_kbps,
            psnr_db,
            summary: RunSummary::from_profile(&profile),
            profile,
        })
    }
}

fn throwaway_profiler() -> Result<Profiler, CoreError> {
    let kernels = instr::kernel_table();
    Ok(Profiler::new(
        &UarchConfig::baseline(),
        kernels,
        CodeLayout::default_order(kernels),
    )?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_transcoder(name: &str) -> Transcoder {
        let mut spec = vbench::by_name(name).unwrap();
        spec.sim_width = 64;
        spec.sim_height = 48;
        spec.sim_frames = 6;
        Transcoder::from_video(synth::generate(&spec, 3)).unwrap()
    }

    #[test]
    fn transcode_reports_all_metrics() {
        let t = tiny_transcoder("cricket");
        let r = t
            .transcode(&EncoderConfig::default(), &TranscodeOptions::default())
            .unwrap();
        assert!(r.seconds > 0.0);
        assert!(r.bitrate_kbps > 0.0);
        assert!(r.psnr_db > 25.0);
        assert!((r.summary.topdown.sum() - 1.0).abs() < 1e-9);
        assert!(r.profile.counts.instructions > 100_000);
    }

    #[test]
    fn unknown_video_is_an_error() {
        assert!(matches!(
            Transcoder::from_catalog("nope", 1),
            Err(CoreError::UnknownVideo { .. })
        ));
    }

    #[test]
    fn crf_direction_holds_through_facade() {
        let t = tiny_transcoder("cricket");
        let opts = TranscodeOptions::default();
        let lo = t
            .transcode(&EncoderConfig::default().with_crf(15.0), &opts)
            .unwrap();
        let hi = t
            .transcode(&EncoderConfig::default().with_crf(42.0), &opts)
            .unwrap();
        assert!(hi.bitrate_kbps < lo.bitrate_kbps);
        assert!(hi.psnr_db < lo.psnr_db);
        assert!(hi.seconds < lo.seconds, "{} < {}", hi.seconds, lo.seconds);
    }

    #[test]
    fn mezzanine_is_decodable_and_high_quality() {
        use vtx_codec::decode_video;
        use vtx_trace::layout::CodeLayout;
        let t = tiny_transcoder("bike");
        assert!(t.mezzanine().size_bytes() > 16);
        let kernels = vtx_codec::instr::kernel_table();
        let mut prof = vtx_trace::Profiler::new(
            &UarchConfig::baseline(),
            kernels,
            CodeLayout::default_order(kernels),
        )
        .unwrap();
        let dec = decode_video(t.mezzanine(), &mut prof).unwrap();
        let psnr = quality::sequence_psnr(&t.video().frames, &dec.frames).unwrap();
        assert!(psnr > 38.0, "mezzanine must be near-transparent: {psnr}");
    }

    #[test]
    fn deterministic_reports() {
        let t = tiny_transcoder("girl");
        let opts = TranscodeOptions::default();
        let a = t.transcode(&EncoderConfig::default(), &opts).unwrap();
        let b = t.transcode(&EncoderConfig::default(), &opts).unwrap();
        assert_eq!(a.profile.counts, b.profile.counts);
        assert_eq!(a.seconds, b.seconds);
    }

    #[test]
    fn threads_option_does_not_change_the_report() {
        let t = tiny_transcoder("bike");
        let serial = t
            .transcode(&EncoderConfig::default(), &TranscodeOptions::default())
            .unwrap();
        let threaded = t
            .transcode(
                &EncoderConfig::default(),
                &TranscodeOptions::default().with_threads(3),
            )
            .unwrap();
        assert_eq!(serial.profile.counts, threaded.profile.counts);
        assert_eq!(serial.profile.profile, threaded.profile.profile);
        assert_eq!(serial.seconds, threaded.seconds);
        assert_eq!(serial.bitrate_kbps, threaded.bitrate_kbps);
        assert_eq!(serial.psnr_db, threaded.psnr_db);
    }
}
