//! Rendering experiment results as Markdown tables and CSV — for dropping
//! measured figures straight into reports like EXPERIMENTS.md.

use std::fmt::Write as _;

use crate::experiments::presets::PresetRun;
use crate::experiments::sweep::SweepPoint;
use crate::experiments::videos::VideoRun;

/// Renders a generic table: a header row plus data rows, as GitHub Markdown.
///
/// # Panics
///
/// Panics if any row's width differs from the header's.
pub fn markdown_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "| {} |", header.join(" | "));
    let _ = writeln!(
        out,
        "|{}|",
        header.iter().map(|_| "---").collect::<Vec<_>>().join("|")
    );
    for row in rows {
        assert_eq!(row.len(), header.len(), "row width mismatch");
        let _ = writeln!(out, "| {} |", row.join(" | "));
    }
    out
}

/// Renders a generic table as CSV with RFC-4180 quoting: fields containing
/// commas, quotes, CR/LF, or leading/trailing spaces are wrapped in double
/// quotes (embedded quotes doubled), so embedded newlines survive a
/// parse-back.
///
/// # Panics
///
/// Panics if any row's width differs from the header's.
pub fn csv_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let needs_quoting = |s: &str| {
        s.contains(',')
            || s.contains('"')
            || s.contains('\n')
            || s.contains('\r')
            || s.starts_with(' ')
            || s.ends_with(' ')
    };
    let quote = move |s: &str| {
        if needs_quoting(s) {
            format!("\"{}\"", s.replace('"', "\"\""))
        } else {
            s.to_owned()
        }
    };
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{}",
        header
            .iter()
            .map(|h| quote(h))
            .collect::<Vec<_>>()
            .join(",")
    );
    for row in rows {
        assert_eq!(row.len(), header.len(), "row width mismatch");
        let _ = writeln!(
            out,
            "{}",
            row.iter().map(|c| quote(c)).collect::<Vec<_>>().join(",")
        );
    }
    out
}

fn summary_cells(
    seconds: f64,
    bitrate: f64,
    psnr: f64,
    td: &vtx_uarch::topdown::TopDown,
) -> Vec<String> {
    vec![
        format!("{:.3}", seconds * 1e3),
        format!("{bitrate:.1}"),
        format!("{psnr:.2}"),
        format!("{:.1}", td.retiring * 100.0),
        format!("{:.1}", td.frontend * 100.0),
        format!("{:.1}", td.bad_speculation * 100.0),
        format!("{:.1}", td.backend() * 100.0),
    ]
}

const SUMMARY_HEADER: [&str; 7] = [
    "time (ms)",
    "kbps",
    "PSNR (dB)",
    "retiring %",
    "FE %",
    "BS %",
    "BE %",
];

/// Sweep points (Figures 3–5) as a Markdown table keyed by (crf, refs).
pub fn sweep_markdown(points: &[SweepPoint]) -> String {
    let mut header = vec!["crf", "refs"];
    header.extend(SUMMARY_HEADER);
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            let mut r = vec![p.crf.to_string(), p.refs.to_string()];
            r.extend(summary_cells(
                p.summary.seconds,
                p.bitrate_kbps,
                p.psnr_db,
                &p.summary.topdown,
            ));
            r
        })
        .collect();
    markdown_table(&header, &rows)
}

/// Preset study (Figure 6) as a Markdown table.
pub fn presets_markdown(runs: &[PresetRun]) -> String {
    let mut header = vec!["preset"];
    header.extend(SUMMARY_HEADER);
    let rows: Vec<Vec<String>> = runs
        .iter()
        .map(|r| {
            let mut row = vec![r.preset.name().to_owned()];
            row.extend(summary_cells(
                r.summary.seconds,
                r.bitrate_kbps,
                r.psnr_db,
                &r.summary.topdown,
            ));
            row
        })
        .collect();
    markdown_table(&header, &rows)
}

/// Cross-video study (Figure 7) as a Markdown table.
pub fn videos_markdown(runs: &[VideoRun]) -> String {
    let mut header = vec!["video", "res", "entropy"];
    header.extend(SUMMARY_HEADER);
    let rows: Vec<Vec<String>> = runs
        .iter()
        .map(|r| {
            let mut row = vec![
                r.spec.short_name.clone(),
                r.spec.resolution_label(),
                format!("{:.1}", r.spec.entropy),
            ];
            row.extend(summary_cells(
                r.summary.seconds,
                r.bitrate_kbps,
                r.psnr_db,
                &r.summary.topdown,
            ));
            row
        })
        .collect();
    markdown_table(&header, &rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_shape() {
        let md = markdown_table(
            &["a", "b"],
            &[vec!["1".into(), "2".into()], vec!["3".into(), "4".into()]],
        );
        let lines: Vec<&str> = md.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[0], "| a | b |");
        assert_eq!(lines[1], "|---|---|");
        assert!(lines[3].contains("| 3 | 4 |"));
    }

    #[test]
    fn csv_quotes_commas() {
        let csv = csv_table(&["x"], &[vec!["a,b".into()], vec!["plain".into()]]);
        assert!(csv.contains("\"a,b\""));
        assert!(csv.contains("plain"));
    }

    /// Minimal RFC-4180 reader used only to verify the writer: splits records
    /// on unquoted newlines and un-doubles embedded quotes.
    fn parse_csv(input: &str) -> Vec<Vec<String>> {
        let mut records = vec![vec![String::new()]];
        let mut in_quotes = false;
        let mut chars = input.chars().peekable();
        while let Some(c) = chars.next() {
            let record = records.last_mut().unwrap();
            match c {
                '"' if in_quotes && chars.peek() == Some(&'"') => {
                    chars.next();
                    record.last_mut().unwrap().push('"');
                }
                '"' => in_quotes = !in_quotes,
                ',' if !in_quotes => record.push(String::new()),
                '\n' if !in_quotes => records.push(vec![String::new()]),
                _ => record.last_mut().unwrap().push(c),
            }
        }
        // Drop the empty record after the trailing newline.
        if records.last().is_some_and(|r| r == &[String::new()]) {
            records.pop();
        }
        records
    }

    #[test]
    fn csv_roundtrips_newlines_quotes_and_edge_spaces() {
        let rows = vec![
            vec!["line1\nline2".into(), " leading".into()],
            vec!["trailing ".into(), "say \"hi\", twice".into()],
            vec!["plain".into(), "crlf\r\nhere".into()],
        ];
        let csv = csv_table(&["a", "b"], &rows);
        let parsed = parse_csv(&csv);
        assert_eq!(parsed[0], vec!["a".to_owned(), "b".to_owned()]);
        for (got, want) in parsed[1..].iter().zip(&rows) {
            assert_eq!(got, want);
        }
        assert_eq!(parsed.len(), 1 + rows.len());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn ragged_rows_panic() {
        let _ = markdown_table(&["a", "b"], &[vec!["only-one".into()]]);
    }
}
