//! # vtx-core — CPU microarchitectural characterization of cloud video transcoding
//!
//! This crate is the reproduction's public face: it wires the from-scratch
//! transcoder (`vtx-codec`), the synthetic vbench corpus (`vtx-frame`), the
//! Sniper-style microarchitecture simulator (`vtx-uarch` + `vtx-trace`), the
//! compiler-optimization analogs (`vtx-opt`) and the scheduler (`vtx-sched`)
//! into the experiments of the paper.
//!
//! * [`Transcoder`] — the "FFmpeg + VTune" facade: construct one per video,
//!   then [`Transcoder::transcode`] with any [`vtx_codec::EncoderConfig`],
//!   microarchitecture configuration and compiled-binary variant. Each call
//!   performs a real transcode (decode the uploaded bitstream, re-encode
//!   with the target parameters) while simulating caches, TLBs, branch
//!   prediction and the interval core model online.
//! * [`experiments`] — one driver per paper table/figure: the crf×refs
//!   sweep (Figures 3–5), the preset study (Figure 6), the cross-video
//!   study (Figure 7), the AutoFDO/Graphite comparison (Figure 8) and the
//!   scheduler case study (Figure 9 with Tables III/IV).
//!
//! # Quickstart
//!
//! ```
//! use vtx_core::{Transcoder, TranscodeOptions};
//! use vtx_codec::EncoderConfig;
//!
//! let t = Transcoder::from_catalog("cat", 1)?;
//! let report = t.transcode(&EncoderConfig::default(), &TranscodeOptions::default())?;
//! assert!(report.psnr_db > 28.0);
//! assert!((report.summary.topdown.sum() - 1.0).abs() < 1e-9);
//! # Ok::<(), vtx_core::CoreError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod error;
mod summary;
mod transcoder;

pub mod experiments;
pub mod export;
pub mod trace_export;

pub use error::CoreError;
pub use summary::RunSummary;
pub use transcoder::{TranscodeOptions, TranscodeReport, Transcoder};
