//! Compact per-run summaries — the rows of the paper's figures.

use serde::{Deserialize, Serialize};

use vtx_trace::report::{MpkiReport, ProfileReport, StallPki};
use vtx_uarch::topdown::TopDown;

/// Everything a figure needs from one transcoding run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunSummary {
    /// Simulated transcoding time in seconds.
    pub seconds: f64,
    /// Instructions per cycle.
    pub ipc: f64,
    /// Retired instructions.
    pub instructions: u64,
    /// Top-down slot breakdown.
    pub topdown: TopDown,
    /// Cache / branch / TLB miss rates.
    pub mpki: MpkiReport,
    /// Resource-stall rates (Figure 5e–h).
    pub stalls: StallPki,
}

impl RunSummary {
    /// Extracts the summary from a full profile report.
    pub fn from_profile(p: &ProfileReport) -> Self {
        RunSummary {
            seconds: p.seconds,
            ipc: p.ipc,
            instructions: p.counts.instructions,
            topdown: p.topdown,
            mpki: p.mpki,
            stalls: p.stalls,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vtx_trace::kernel::KernelProfile;
    use vtx_uarch::interval::{CycleBreakdown, ExecutionCounts};

    #[test]
    fn from_profile_copies_fields() {
        let p = ProfileReport {
            config_name: "baseline".into(),
            counts: ExecutionCounts {
                instructions: 42,
                ..Default::default()
            },
            breakdown: CycleBreakdown {
                base_cycles: 1.0,
                frontend_cycles: 0.0,
                badspec_cycles: 0.0,
                memory_cycles: 0.0,
                sb_cycles: 0.0,
                core_cycles: 0.0,
                total_cycles: 10,
                uops: 42,
                dispatch_width: 4,
                rob_stall_cycles: 0.0,
                rs_stall_cycles: 0.0,
                sb_stall_cycles: 0.0,
            },
            topdown: TopDown {
                retiring: 1.0,
                frontend: 0.0,
                bad_speculation: 0.0,
                backend_memory: 0.0,
                backend_core: 0.0,
            },
            mpki: MpkiReport::default(),
            stalls: StallPki::default(),
            seconds: 1.5,
            ipc: 4.2,
            hotspots: vec![],
            profile: KernelProfile::new(0),
        };
        let s = RunSummary::from_profile(&p);
        assert_eq!(s.instructions, 42);
        assert!((s.seconds - 1.5).abs() < 1e-12);
        let json = serde_json::to_string(&s).unwrap();
        let back: RunSummary = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }
}
