use std::error::Error;
use std::fmt;

use vtx_codec::CodecError;
use vtx_frame::FrameError;
use vtx_port::PortError;
use vtx_uarch::ConfigError;

/// Errors surfaced by the characterization facade.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// The requested video is not in the vbench catalog.
    UnknownVideo {
        /// The name that failed to resolve.
        name: String,
    },
    /// A codec error occurred during transcoding.
    Codec(CodecError),
    /// A frame-model error occurred.
    Frame(FrameError),
    /// A simulator configuration error occurred.
    Sim(ConfigError),
    /// A port-model error occurred (unsolvable layout/mix pairing).
    Port(PortError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::UnknownVideo { name } => {
                write!(f, "video '{name}' is not in the vbench catalog")
            }
            CoreError::Codec(e) => write!(f, "codec error: {e}"),
            CoreError::Frame(e) => write!(f, "frame error: {e}"),
            CoreError::Sim(e) => write!(f, "simulator error: {e}"),
            CoreError::Port(e) => write!(f, "port-model error: {e}"),
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Codec(e) => Some(e),
            CoreError::Frame(e) => Some(e),
            CoreError::Sim(e) => Some(e),
            CoreError::Port(e) => Some(e),
            CoreError::UnknownVideo { .. } => None,
        }
    }
}

impl From<PortError> for CoreError {
    fn from(e: PortError) -> Self {
        CoreError::Port(e)
    }
}

impl From<CodecError> for CoreError {
    fn from(e: CodecError) -> Self {
        CoreError::Codec(e)
    }
}

impl From<FrameError> for CoreError {
    fn from(e: FrameError) -> Self {
        CoreError::Frame(e)
    }
}

impl From<ConfigError> for CoreError {
    fn from(e: ConfigError) -> Self {
        CoreError::Sim(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_sources() {
        let e = CoreError::UnknownVideo {
            name: "warp".into(),
        };
        assert!(e.to_string().contains("warp"));
        assert!(e.source().is_none());
        let e: CoreError = CodecError::EmptyVideo.into();
        assert!(e.source().is_some());
    }
}
