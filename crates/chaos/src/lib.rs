//! # vtx-chaos — deterministic fault injection for the serving fleet
//!
//! The serving layer (`vtx-serve`) assumes every server stays up and runs at
//! its rated speed; real transcoding fleets lose machines mid-job and suffer
//! fail-slow stragglers. This crate makes failure a first-class,
//! seed-reproducible dimension of the serving experiments:
//!
//! * [`plan`] — a [`plan::FaultPlan`] scripts fail-stop crashes, fail-slow
//!   slowdown windows and transient stalls per server. Plans are either
//!   built explicitly or drawn from a seed ([`plan::FaultPlan::storm`])
//!   using the same SplitMix64 stream-derivation style as the vtx-serve
//!   cost model, so the same seed always yields the same failure script.
//!   [`plan::FaultPlan::inflate`] converts a nominal service duration into
//!   the wall-clock duration under the plan's slowdowns and stalls — the
//!   one primitive both the discrete-event engine and the real executor
//!   need to agree on.
//! * [`detector`] — a heartbeat-based failure detector: a server whose
//!   heartbeats stop is `Suspected` after a tunable number of missed beats
//!   and `Down` after a few more. Detection latency (the window in which
//!   jobs are dispatched into a dead server) is the price of distrust, and
//!   it is fully deterministic here.
//! * [`degrade`] — a graceful-degradation ladder that steps the x264 preset
//!   toward `ultrafast` (Table II order) when backlog outruns the detected
//!   live capacity, with hysteresis so the ladder does not thrash.
//!
//! Nothing in this crate tells time by itself: every API is a pure function
//! of (plan, timestamps), which is what lets the simulated engine and the
//! wall-clock executor consume the *same* failure script.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cause;
pub mod degrade;
pub mod detector;
pub mod error;
pub mod plan;
pub mod rng;

pub use cause::Cause;
pub use degrade::{DegradeConfig, DegradeLadder};
pub use detector::{DetectorConfig, FailureDetector, Health};
pub use error::ChaosError;
pub use plan::{FaultCounts, FaultKind, FaultPlan, ServerFaults, Slowdown, Stall};
