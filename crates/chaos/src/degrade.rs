//! Graceful degradation: trade output quality for survival.
//!
//! When detected live capacity drops below offered load (servers crashed,
//! stragglers dragging), an admission queue only delays the reckoning —
//! backlog is the integral of (offered − served). The ladder watches
//! backlog per unit of *detected-up* capacity and steps the x264 preset
//! toward `ultrafast` along the Table II order, cutting per-job cost so the
//! shrunken fleet can keep absorbing the offered rate; hysteresis (the
//! de-escalation threshold sits well below the escalation threshold) keeps
//! it from thrashing at a boundary.

use serde::{Deserialize, Serialize};

use vtx_codec::Preset;

/// Ladder tuning.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DegradeConfig {
    /// Master switch (off by default: failures alone never change output
    /// quality unless the operator opts in).
    pub enabled: bool,
    /// Queued jobs tolerated per unit of detected-up capacity (sum of
    /// healthy servers' speed grades) before the ladder escalates a level.
    pub backlog_per_unit: f64,
    /// Maximum preset steps the ladder may take toward `ultrafast`.
    pub max_level: u8,
}

impl Default for DegradeConfig {
    fn default() -> Self {
        DegradeConfig {
            enabled: false,
            backlog_per_unit: 4.0,
            max_level: 4,
        }
    }
}

/// The ladder state machine: one step up or down per observation.
#[derive(Debug, Clone)]
pub struct DegradeLadder {
    cfg: DegradeConfig,
    level: u8,
}

impl DegradeLadder {
    /// A ladder at level 0.
    pub fn new(cfg: DegradeConfig) -> Self {
        DegradeLadder { cfg, level: 0 }
    }

    /// Current degradation level (0 = full quality).
    pub fn level(&self) -> u8 {
        self.level
    }

    /// Feeds one observation of backlog vs detected-up capacity and returns
    /// the (possibly stepped) level. Escalates when backlog exceeds the
    /// per-level threshold, de-escalates when it falls below half of the
    /// *previous* level's threshold.
    pub fn observe(&mut self, backlog: usize, up_capacity: f64) -> u8 {
        if !self.cfg.enabled {
            return 0;
        }
        let unit = (self.cfg.backlog_per_unit * up_capacity.max(0.0)).max(1.0);
        let b = backlog as f64;
        if b > unit * f64::from(self.level + 1) && self.level < self.cfg.max_level {
            self.level += 1;
        } else if self.level > 0 && b < unit * f64::from(self.level) * 0.5 {
            self.level -= 1;
        }
        self.level
    }
}

/// Steps `preset` `level` places toward `ultrafast` along [`Preset::ALL`]
/// (Table II order). Level 0 is the identity; the walk saturates at
/// `ultrafast`.
pub fn downgrade(preset: Preset, level: u8) -> Preset {
    let idx = Preset::ALL.iter().position(|&p| p == preset).unwrap_or(0);
    Preset::ALL[idx.saturating_sub(level as usize)]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ladder() -> DegradeLadder {
        DegradeLadder::new(DegradeConfig {
            enabled: true,
            backlog_per_unit: 2.0,
            max_level: 3,
        })
    }

    #[test]
    fn disabled_ladder_never_moves() {
        let mut l = DegradeLadder::new(DegradeConfig::default());
        assert_eq!(l.observe(1_000_000, 1.0), 0);
        assert_eq!(l.level(), 0);
    }

    #[test]
    fn escalates_one_step_per_observation_and_saturates() {
        let mut l = ladder();
        // Capacity 1.0 → threshold 2 jobs per level; backlog 100 is over
        // every level's bar but the ladder still walks one step at a time.
        assert_eq!(l.observe(100, 1.0), 1);
        assert_eq!(l.observe(100, 1.0), 2);
        assert_eq!(l.observe(100, 1.0), 3);
        assert_eq!(l.observe(100, 1.0), 3, "clamped at max_level");
    }

    #[test]
    fn hysteresis_deescalates_only_well_below_the_bar() {
        let mut l = ladder();
        l.observe(100, 1.0); // level 1 (threshold was 2)
                             // Backlog 3 is below the level-2 escalation bar (4) but not below
                             // half the level-1 bar (1): hold.
        assert_eq!(l.observe(3, 1.0), 1);
        // Backlog 0 clears the de-escalation bar.
        assert_eq!(l.observe(0, 1.0), 0);
        assert_eq!(l.observe(0, 1.0), 0, "stays at full quality");
    }

    #[test]
    fn zero_capacity_still_has_a_floor_threshold() {
        let mut l = ladder();
        // All servers down: unit clamps to 1 job; any backlog escalates.
        assert_eq!(l.observe(2, 0.0), 1);
    }

    #[test]
    fn downgrade_walks_table_ii_toward_ultrafast() {
        assert_eq!(downgrade(Preset::Medium, 0), Preset::Medium);
        assert_eq!(downgrade(Preset::Medium, 1), Preset::Fast);
        assert_eq!(downgrade(Preset::Medium, 3), Preset::Veryfast);
        assert_eq!(downgrade(Preset::Superfast, 5), Preset::Ultrafast);
        assert_eq!(downgrade(Preset::Ultrafast, 2), Preset::Ultrafast);
    }
}
