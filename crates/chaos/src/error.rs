//! Error type for fault-plan construction.

use std::error::Error;
use std::fmt;

/// Errors surfaced while building a fault plan.
#[derive(Debug, Clone, PartialEq)]
pub enum ChaosError {
    /// A fault referenced a server index outside the plan.
    ServerOutOfRange {
        /// The offending index.
        server: usize,
        /// Number of servers in the plan.
        servers: usize,
    },
    /// A slowdown or stall window was empty or inverted.
    BadWindow {
        /// Window start (µs).
        from_us: u64,
        /// Window end (µs).
        until_us: u64,
    },
    /// A slowdown factor was not finite and greater than 1.
    BadFactor {
        /// The offending factor.
        factor: f64,
    },
    /// Two slowdown windows on the same server overlap, which would make
    /// the effective factor ambiguous.
    OverlappingSlowdowns {
        /// The server whose windows collide.
        server: usize,
    },
}

impl fmt::Display for ChaosError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChaosError::ServerOutOfRange { server, servers } => {
                write!(f, "server {server} out of range (plan has {servers})")
            }
            ChaosError::BadWindow { from_us, until_us } => {
                write!(f, "window [{from_us}, {until_us}) is empty or inverted")
            }
            ChaosError::BadFactor { factor } => {
                write!(f, "slowdown factor {factor} must be finite and > 1")
            }
            ChaosError::OverlappingSlowdowns { server } => {
                write!(f, "server {server} has overlapping slowdown windows")
            }
        }
    }
}

impl Error for ChaosError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_problem() {
        let e = ChaosError::ServerOutOfRange {
            server: 9,
            servers: 5,
        };
        assert!(e.to_string().contains("server 9"));
        let e = ChaosError::BadFactor { factor: 0.5 };
        assert!(e.to_string().contains("0.5"));
    }
}
