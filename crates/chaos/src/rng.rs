//! The serving layer's deterministic PRNG, re-homed for fault plans.
//!
//! Fault plans must be byte-reproducible from a seed across platforms and
//! crate versions, so — like the vtx-serve cost model — they use a
//! hand-rolled SplitMix64 plus [`derive`] for order-independent per-server
//! streams rather than an external RNG crate.

/// SplitMix64 (Steele, Lea & Flood 2014).
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)`; `n` must be nonzero.
    pub fn next_range(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }
}

/// Hash-combines a seed with a stream id into an independent SplitMix64
/// seed, so each server's fault draws are independent of every other
/// server's and of the order in which the plan is queried.
pub fn derive(seed: u64, stream: u64) -> u64 {
    let mut z = seed ^ stream.wrapping_mul(0xff51_afd7_ed55_8ccd);
    z = (z ^ (z >> 33)).wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    z ^ (z >> 33)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn derive_streams_are_order_free() {
        assert_eq!(derive(42, 7), derive(42, 7));
        assert_ne!(derive(42, 7), derive(42, 8));
        assert_ne!(derive(41, 7), derive(42, 7));
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SplitMix64::new(7);
        for _ in 0..1000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
