//! Heartbeat-based failure detection.
//!
//! Every server is assumed to emit a heartbeat every `heartbeat_us`; a
//! server that misses `suspect_missed` consecutive beats becomes
//! [`Health::Suspected`] (policies should steer work away but the job on it
//! is not yet written off), and after `down_missed` beats it is declared
//! [`Health::Down`] (its in-flight work is requeued and it leaves the
//! dispatchable set for good). The gap between a crash and `Down` is the
//! *detection latency* — the window in which an engine keeps dispatching
//! into a dead server — and is fully determined by the config, which is
//! what keeps faulted simulations byte-reproducible.
//!
//! The detector itself is clock-agnostic: callers feed it the instant each
//! server's beats stopped (the fault injector knows, since it scripted the
//! crash) and ask for the classification at any timestamp.

use serde::{Deserialize, Serialize};

/// Detector view of one server.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Health {
    /// Heartbeats current; dispatchable.
    Up,
    /// Missed enough beats to distrust; dispatchable but penalized.
    Suspected,
    /// Declared failed; removed from the dispatchable set.
    Down,
}

impl Health {
    /// Short name used in event logs.
    pub fn name(self) -> &'static str {
        match self {
            Health::Up => "up",
            Health::Suspected => "suspected",
            Health::Down => "down",
        }
    }
}

/// Detector tuning.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DetectorConfig {
    /// Heartbeat period (µs).
    pub heartbeat_us: u64,
    /// Missed beats before a server is suspected.
    pub suspect_missed: u32,
    /// Missed beats before a server is declared down (>= suspect_missed).
    pub down_missed: u32,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        DetectorConfig {
            heartbeat_us: 250_000,
            suspect_missed: 2,
            down_missed: 4,
        }
    }
}

impl DetectorConfig {
    /// How long after beats stop a server becomes suspected.
    pub fn suspect_delay_us(&self) -> u64 {
        self.heartbeat_us
            .saturating_mul(u64::from(self.suspect_missed))
    }

    /// How long after beats stop a server is declared down.
    pub fn down_delay_us(&self) -> u64 {
        self.heartbeat_us
            .saturating_mul(u64::from(self.down_missed))
    }

    /// When a server whose beats stopped at `stopped_us` becomes suspected.
    pub fn suspect_at(&self, stopped_us: u64) -> u64 {
        stopped_us.saturating_add(self.suspect_delay_us())
    }

    /// When a server whose beats stopped at `stopped_us` is declared down.
    pub fn down_at(&self, stopped_us: u64) -> u64 {
        stopped_us.saturating_add(self.down_delay_us())
    }
}

/// Tracks when each server's heartbeats stopped and classifies on demand.
#[derive(Debug, Clone)]
pub struct FailureDetector {
    cfg: DetectorConfig,
    stopped_us: Vec<Option<u64>>,
}

impl FailureDetector {
    /// A detector for `servers` servers, all beating.
    pub fn new(cfg: DetectorConfig, servers: usize) -> Self {
        FailureDetector {
            cfg,
            stopped_us: vec![None; servers],
        }
    }

    /// The config in force.
    pub fn config(&self) -> &DetectorConfig {
        &self.cfg
    }

    /// Records that `server`'s heartbeats stopped at `at_us` (earliest
    /// instant wins if called twice).
    pub fn stop_beats(&mut self, server: usize, at_us: u64) {
        if let Some(slot) = self.stopped_us.get_mut(server) {
            *slot = Some(slot.map_or(at_us, |prev| prev.min(at_us)));
        }
    }

    /// Classification of `server` as of `now_us`.
    pub fn classify(&self, server: usize, now_us: u64) -> Health {
        let Some(Some(stopped)) = self.stopped_us.get(server) else {
            return Health::Up;
        };
        if now_us >= self.cfg.down_at(*stopped) {
            Health::Down
        } else if now_us >= self.cfg.suspect_at(*stopped) {
            Health::Suspected
        } else {
            Health::Up
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delays_follow_the_config() {
        let cfg = DetectorConfig {
            heartbeat_us: 100,
            suspect_missed: 2,
            down_missed: 5,
        };
        assert_eq!(cfg.suspect_delay_us(), 200);
        assert_eq!(cfg.down_delay_us(), 500);
        assert_eq!(cfg.suspect_at(1_000), 1_200);
        assert_eq!(cfg.down_at(1_000), 1_500);
    }

    #[test]
    fn classification_walks_up_suspected_down() {
        let cfg = DetectorConfig {
            heartbeat_us: 100,
            suspect_missed: 2,
            down_missed: 4,
        };
        let mut d = FailureDetector::new(cfg, 2);
        assert_eq!(
            d.classify(0, u64::MAX),
            Health::Up,
            "beating server stays up"
        );
        d.stop_beats(0, 1_000);
        assert_eq!(d.classify(0, 1_199), Health::Up);
        assert_eq!(d.classify(0, 1_200), Health::Suspected);
        assert_eq!(d.classify(0, 1_399), Health::Suspected);
        assert_eq!(d.classify(0, 1_400), Health::Down);
        assert_eq!(d.classify(1, 1_400), Health::Up, "other server untouched");
        assert_eq!(d.classify(9, 0), Health::Up, "out of range is up");
    }

    #[test]
    fn earliest_stop_wins() {
        let mut d = FailureDetector::new(DetectorConfig::default(), 1);
        d.stop_beats(0, 5_000);
        d.stop_beats(0, 2_000);
        d.stop_beats(0, 9_000);
        let cfg = *d.config();
        assert_eq!(d.classify(0, cfg.down_at(2_000)), Health::Down);
    }

    #[test]
    fn health_names() {
        assert_eq!(Health::Up.name(), "up");
        assert_eq!(Health::Suspected.name(), "suspected");
        assert_eq!(Health::Down.name(), "down");
    }
}
