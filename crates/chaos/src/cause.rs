//! Causes attached to detector transitions and degrade steps.
//!
//! When the observability plane (vtx-obs) is wired in, every `suspect`,
//! `down` and `degrade` event in the serving stream carries a [`Cause`]
//! saying *why* the transition happened — a missed heartbeat, backlog
//! pressure on the degrade ladder, or a firing SLO burn-rate alert. The
//! cause is part of the deterministic event stream, so postmortems of a
//! seeded run can attribute every degradation step without guesswork.

use serde::{Deserialize, Serialize};

/// Why a detector transition or degrade step happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Cause {
    /// The failure detector missed enough heartbeats.
    HeartbeatMiss,
    /// The degrade ladder reacted to queue backlog outrunning capacity.
    BacklogPressure,
    /// An SLO burn-rate alert was firing when the step was taken.
    SloBurn,
}

impl Cause {
    /// Stable lowercase label used in rendered event streams.
    pub fn name(self) -> &'static str {
        match self {
            Cause::HeartbeatMiss => "heartbeat_miss",
            Cause::BacklogPressure => "backlog_pressure",
            Cause::SloBurn => "slo_burn",
        }
    }
}

impl std::fmt::Display for Cause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_stable() {
        assert_eq!(Cause::HeartbeatMiss.name(), "heartbeat_miss");
        assert_eq!(Cause::BacklogPressure.name(), "backlog_pressure");
        assert_eq!(Cause::SloBurn.name(), "slo_burn");
        assert_eq!(Cause::SloBurn.to_string(), "slo_burn");
    }
}
