//! Seeded, deterministic fault plans.
//!
//! A [`FaultPlan`] is a per-server failure script fixed before the run
//! starts: fail-stop crashes (the server dies at an instant and never
//! returns), fail-slow slowdown windows (work takes `factor`× as long while
//! the window is open — the classic gray-failure straggler), and transient
//! stalls (no progress at all for a bounded interval, e.g. a GC pause or a
//! noisy neighbor burst). Because the plan is data, not behavior, the
//! discrete-event engine and the real threaded executor can consume the
//! *same* script and be compared under identical failures.

use serde::{Deserialize, Serialize};

use crate::error::ChaosError;
use crate::rng::{derive, SplitMix64};

/// The kinds of fault a plan can schedule, for event logs and accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultKind {
    /// Fail-stop: the server dies and never returns.
    Crash,
    /// Fail-slow: a slowdown window opened.
    SlowDown,
    /// A transient full stall began.
    Stall,
}

impl FaultKind {
    /// Short name used in event logs.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::Crash => "crash",
            FaultKind::SlowDown => "slowdown",
            FaultKind::Stall => "stall",
        }
    }
}

/// A fail-slow window: work on the server takes `factor`× its nominal time
/// while `from_us <= t < until_us`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Slowdown {
    /// Window start (µs).
    pub from_us: u64,
    /// Window end (µs, exclusive).
    pub until_us: u64,
    /// Wall-time multiplier (> 1).
    pub factor: f64,
}

/// A transient stall: zero progress while `at_us <= t < at_us + dur_us`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Stall {
    /// Stall start (µs).
    pub at_us: u64,
    /// Stall duration (µs).
    pub dur_us: u64,
}

/// Everything scheduled against one server.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ServerFaults {
    /// Fail-stop instant, if any.
    pub crash_us: Option<u64>,
    /// Fail-slow windows, sorted by start, non-overlapping.
    pub slowdowns: Vec<Slowdown>,
    /// Transient stalls, sorted by start.
    pub stalls: Vec<Stall>,
}

impl ServerFaults {
    fn is_empty(&self) -> bool {
        self.crash_us.is_none() && self.slowdowns.is_empty() && self.stalls.is_empty()
    }
}

/// Per-kind fault totals across a plan.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultCounts {
    /// Scheduled fail-stop crashes.
    pub crashes: u64,
    /// Scheduled slowdown windows.
    pub slowdowns: u64,
    /// Scheduled stalls.
    pub stalls: u64,
}

/// A complete failure script for a fleet, indexed by server position.
///
/// Queries against servers beyond the plan's length report "no faults", so
/// the all-healthy default ([`FaultPlan::default`]) works for any fleet.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    servers: Vec<ServerFaults>,
}

impl FaultPlan {
    /// A plan with `servers` slots and no faults.
    pub fn none(servers: usize) -> Self {
        FaultPlan {
            servers: vec![ServerFaults::default(); servers],
        }
    }

    /// Whether the plan schedules no faults at all.
    pub fn is_empty(&self) -> bool {
        self.servers.iter().all(ServerFaults::is_empty)
    }

    /// Number of server slots.
    pub fn len(&self) -> usize {
        self.servers.len()
    }

    /// The script for one server (default-empty past the plan's length).
    pub fn server(&self, server: usize) -> ServerFaults {
        self.servers.get(server).cloned().unwrap_or_default()
    }

    /// Adds a fail-stop crash at `at_us`.
    ///
    /// # Errors
    ///
    /// Returns [`ChaosError::ServerOutOfRange`] for a bad index.
    pub fn with_crash(mut self, server: usize, at_us: u64) -> Result<Self, ChaosError> {
        let n = self.servers.len();
        let slot = self
            .servers
            .get_mut(server)
            .ok_or(ChaosError::ServerOutOfRange { server, servers: n })?;
        slot.crash_us = Some(match slot.crash_us {
            // Two crashes collapse to the earlier one: dead is dead.
            Some(prev) => prev.min(at_us),
            None => at_us,
        });
        Ok(self)
    }

    /// Adds a fail-slow window.
    ///
    /// # Errors
    ///
    /// Returns [`ChaosError::ServerOutOfRange`], [`ChaosError::BadWindow`],
    /// [`ChaosError::BadFactor`], or [`ChaosError::OverlappingSlowdowns`]
    /// when the window collides with an existing one.
    pub fn with_slowdown(
        mut self,
        server: usize,
        from_us: u64,
        until_us: u64,
        factor: f64,
    ) -> Result<Self, ChaosError> {
        if from_us >= until_us {
            return Err(ChaosError::BadWindow { from_us, until_us });
        }
        if !factor.is_finite() || factor <= 1.0 {
            return Err(ChaosError::BadFactor { factor });
        }
        let n = self.servers.len();
        let slot = self
            .servers
            .get_mut(server)
            .ok_or(ChaosError::ServerOutOfRange { server, servers: n })?;
        if slot
            .slowdowns
            .iter()
            .any(|w| from_us < w.until_us && w.from_us < until_us)
        {
            return Err(ChaosError::OverlappingSlowdowns { server });
        }
        slot.slowdowns.push(Slowdown {
            from_us,
            until_us,
            factor,
        });
        slot.slowdowns.sort_by_key(|w| w.from_us);
        Ok(self)
    }

    /// Adds a transient stall.
    ///
    /// # Errors
    ///
    /// Returns [`ChaosError::ServerOutOfRange`] or [`ChaosError::BadWindow`]
    /// for a zero-length stall.
    pub fn with_stall(
        mut self,
        server: usize,
        at_us: u64,
        dur_us: u64,
    ) -> Result<Self, ChaosError> {
        if dur_us == 0 {
            return Err(ChaosError::BadWindow {
                from_us: at_us,
                until_us: at_us,
            });
        }
        let n = self.servers.len();
        let slot = self
            .servers
            .get_mut(server)
            .ok_or(ChaosError::ServerOutOfRange { server, servers: n })?;
        slot.stalls.push(Stall { at_us, dur_us });
        slot.stalls.sort_by_key(|s| (s.at_us, s.dur_us));
        Ok(self)
    }

    /// A seeded random failure script over `[0, horizon_us)`: each server
    /// independently draws (via its own [`derive`]d SplitMix64 stream, so
    /// draws are order-free) a ~25% chance of a crash in the middle
    /// half of the horizon, a ~25% chance of a 2–4× slowdown window, and a
    /// ~25% chance of one stall of up to 5% of the horizon.
    pub fn storm(seed: u64, servers: usize, horizon_us: u64) -> Self {
        let mut plan = FaultPlan::none(servers);
        let h = horizon_us.max(1);
        for s in 0..servers {
            let mut rng = SplitMix64::new(derive(seed, s as u64));
            if rng.next_f64() < 0.25 {
                let at = h / 4 + rng.next_range((h / 2).max(1));
                plan = plan.with_crash(s, at).expect("index in range");
            }
            if rng.next_f64() < 0.25 {
                let from = rng.next_range((h / 2).max(1));
                let len = (h / 10).max(1) + rng.next_range((h / 4).max(1));
                let factor = 2.0 + 2.0 * rng.next_f64();
                plan = plan
                    .with_slowdown(s, from, from + len, factor)
                    .expect("first window cannot overlap");
            }
            if rng.next_f64() < 0.25 {
                let at = rng.next_range(h);
                let dur = 1 + rng.next_range((h / 20).max(1));
                plan = plan.with_stall(s, at, dur).expect("index in range");
            }
        }
        plan
    }

    /// When (if ever) `server` fail-stops.
    pub fn crash_us(&self, server: usize) -> Option<u64> {
        self.servers.get(server).and_then(|s| s.crash_us)
    }

    /// Whether `server` has fail-stopped by `now_us`.
    pub fn is_crashed(&self, server: usize, now_us: u64) -> bool {
        self.crash_us(server).is_some_and(|c| c <= now_us)
    }

    /// Per-kind totals across the whole plan.
    pub fn counts(&self) -> FaultCounts {
        let mut c = FaultCounts::default();
        for s in &self.servers {
            c.crashes += u64::from(s.crash_us.is_some());
            c.slowdowns += s.slowdowns.len() as u64;
            c.stalls += s.stalls.len() as u64;
        }
        c
    }

    /// Wall-clock duration of `nominal_us` of work started on `server` at
    /// `start_us`, integrating piecewise over the server's slowdown windows
    /// (progress at rate 1/factor) and stalls (no progress). With no faults
    /// this is the identity. Crashes are *not* applied here — whether the
    /// job's result is ever observed is the engine's business; inflation
    /// only answers "how long would it take".
    pub fn inflate(&self, server: usize, start_us: u64, nominal_us: u64) -> u64 {
        let Some(sf) = self.servers.get(server) else {
            return nominal_us;
        };
        if sf.slowdowns.is_empty() && sf.stalls.is_empty() {
            return nominal_us;
        }
        let start = start_us as f64;
        let mut t = start;
        let mut work = nominal_us as f64; // remaining nominal µs
        while work > 1e-9 {
            // Zero progress inside a stall: jump to its end.
            if let Some(st) = sf.stalls.iter().find(|st| {
                (st.at_us as f64) <= t && t < (st.at_us.saturating_add(st.dur_us)) as f64
            }) {
                t = st.at_us.saturating_add(st.dur_us) as f64;
                continue;
            }
            let factor = sf
                .slowdowns
                .iter()
                .find(|w| (w.from_us as f64) <= t && t < w.until_us as f64)
                .map_or(1.0, |w| w.factor);
            // Next rate-change boundary strictly after t.
            let mut next = f64::INFINITY;
            for w in &sf.slowdowns {
                for edge in [w.from_us, w.until_us] {
                    let e = edge as f64;
                    if e > t {
                        next = next.min(e);
                    }
                }
            }
            for st in &sf.stalls {
                for edge in [st.at_us, st.at_us.saturating_add(st.dur_us)] {
                    let e = edge as f64;
                    if e > t {
                        next = next.min(e);
                    }
                }
            }
            let span = next - t;
            let need = work * factor; // wall time to drain `work` at this rate
            if need <= span {
                t += need;
                work = 0.0;
            } else {
                work -= span / factor;
                t = next;
            }
        }
        (t - start).round() as u64
    }

    /// Deterministic one-line-per-fault text rendering (for logs/tests).
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (i, s) in self.servers.iter().enumerate() {
            if let Some(c) = s.crash_us {
                let _ = writeln!(out, "server {i} crash at={c}");
            }
            for w in &s.slowdowns {
                let _ = writeln!(
                    out,
                    "server {i} slowdown from={} until={} factor={:.2}",
                    w.from_us, w.until_us, w.factor
                );
            }
            for st in &s.stalls {
                let _ = writeln!(out, "server {i} stall at={} dur={}", st.at_us, st.dur_us);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_identity() {
        let p = FaultPlan::none(3);
        assert!(p.is_empty());
        assert_eq!(p.inflate(0, 100, 5_000), 5_000);
        assert_eq!(p.inflate(99, 0, 7), 7, "out-of-range server has no faults");
        assert_eq!(p.crash_us(1), None);
        assert_eq!(p.counts(), FaultCounts::default());
    }

    #[test]
    fn full_window_slowdown_multiplies_exactly() {
        let p = FaultPlan::none(2)
            .with_slowdown(1, 0, u64::MAX / 2, 3.0)
            .unwrap();
        assert_eq!(p.inflate(1, 1_000, 10_000), 30_000);
        assert_eq!(
            p.inflate(0, 1_000, 10_000),
            10_000,
            "other server untouched"
        );
    }

    #[test]
    fn partial_window_inflates_only_the_overlap() {
        // Work of 10_000 µs starting at t=0; slowdown 2x over [5_000, 50_000).
        // First 5_000 at full speed, remaining 5_000 at half speed = 10_000.
        let p = FaultPlan::none(1)
            .with_slowdown(0, 5_000, 50_000, 2.0)
            .unwrap();
        assert_eq!(p.inflate(0, 0, 10_000), 15_000);
        // Starting inside the window but finishing past its end.
        // 45_000 wall µs in-window drain 22_500 nominal; 7_500 remain at 1x.
        assert_eq!(p.inflate(0, 5_000, 30_000), 45_000 + 7_500);
    }

    #[test]
    fn stall_adds_dead_time() {
        let p = FaultPlan::none(1).with_stall(0, 2_000, 3_000).unwrap();
        // Job starts at 0, runs 5_000 nominal: 2_000 before the stall,
        // 3_000 stalled, 3_000 after.
        assert_eq!(p.inflate(0, 0, 5_000), 8_000);
        // A job starting after the stall is unaffected.
        assert_eq!(p.inflate(0, 6_000, 5_000), 5_000);
    }

    #[test]
    fn stall_inside_slowdown_composes() {
        let p = FaultPlan::none(1)
            .with_slowdown(0, 0, 100_000, 2.0)
            .unwrap()
            .with_stall(0, 1_000, 500)
            .unwrap();
        // 1_000 wall drains 500 nominal, stall 500, then 3_500 left * 2.
        assert_eq!(p.inflate(0, 0, 4_000), 1_000 + 500 + 7_000);
    }

    #[test]
    fn crash_queries() {
        let p = FaultPlan::none(3).with_crash(2, 42_000).unwrap();
        assert_eq!(p.crash_us(2), Some(42_000));
        assert!(!p.is_crashed(2, 41_999));
        assert!(p.is_crashed(2, 42_000));
        assert!(!p.is_crashed(0, u64::MAX));
        // Double crash keeps the earlier instant.
        let p = p.with_crash(2, 10_000).unwrap();
        assert_eq!(p.crash_us(2), Some(10_000));
        let p = p.with_crash(2, 99_000).unwrap();
        assert_eq!(p.crash_us(2), Some(10_000));
    }

    #[test]
    fn builders_validate() {
        assert_eq!(
            FaultPlan::none(1).with_crash(1, 0).unwrap_err(),
            ChaosError::ServerOutOfRange {
                server: 1,
                servers: 1
            }
        );
        assert!(matches!(
            FaultPlan::none(1)
                .with_slowdown(0, 50, 50, 2.0)
                .unwrap_err(),
            ChaosError::BadWindow { .. }
        ));
        assert!(matches!(
            FaultPlan::none(1).with_slowdown(0, 0, 10, 1.0).unwrap_err(),
            ChaosError::BadFactor { .. }
        ));
        assert!(matches!(
            FaultPlan::none(1).with_stall(0, 5, 0).unwrap_err(),
            ChaosError::BadWindow { .. }
        ));
        let p = FaultPlan::none(1).with_slowdown(0, 0, 100, 2.0).unwrap();
        assert_eq!(
            p.with_slowdown(0, 50, 150, 3.0).unwrap_err(),
            ChaosError::OverlappingSlowdowns { server: 0 }
        );
    }

    #[test]
    fn storm_is_seed_deterministic_and_nontrivial() {
        let a = FaultPlan::storm(42, 16, 60_000_000);
        let b = FaultPlan::storm(42, 16, 60_000_000);
        assert_eq!(a, b);
        assert_eq!(a.render(), b.render());
        let c = FaultPlan::storm(43, 16, 60_000_000);
        assert_ne!(a, c, "different seeds draw different storms");
        let counts = a.counts();
        assert!(
            counts.crashes + counts.slowdowns + counts.stalls > 0,
            "a 16-server storm at ~25% rates should schedule something"
        );
    }

    #[test]
    fn counts_and_render_cover_every_kind() {
        let p = FaultPlan::none(2)
            .with_crash(0, 1_000)
            .unwrap()
            .with_slowdown(1, 0, 500, 2.5)
            .unwrap()
            .with_stall(1, 100, 50)
            .unwrap();
        let c = p.counts();
        assert_eq!((c.crashes, c.slowdowns, c.stalls), (1, 1, 1));
        let text = p.render();
        assert!(text.contains("crash at=1000"));
        assert!(text.contains("slowdown from=0 until=500 factor=2.50"));
        assert!(text.contains("stall at=100 dur=50"));
    }

    #[test]
    fn fault_kind_names() {
        assert_eq!(FaultKind::Crash.name(), "crash");
        assert_eq!(FaultKind::SlowDown.name(), "slowdown");
        assert_eq!(FaultKind::Stall.name(), "stall");
    }
}
