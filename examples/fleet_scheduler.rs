//! Heterogeneous-fleet scheduling: the paper's §IV-B.2 case study as a tool.
//!
//! Four transcoding tasks (Table III) must be placed on four servers with
//! different microarchitectures (Table IV). This example measures every
//! (task, server) pair, then compares the random, smart
//! (characterization-driven, one-to-one) and best (oracle) schedulers.
//!
//! ```text
//! cargo run --release --example fleet_scheduler -- [--trace-out FILE]
//! ```
//!
//! With `--trace-out FILE` (or `VTX_TRACE=FILE`) the run records telemetry —
//! including one `sched/placement` event per task with the predicted benefit
//! next to the realized time — and writes Chrome trace-event JSON.

use vtx_core::experiments::scheduler::scheduler_study;
use vtx_core::trace_export;
use vtx_telemetry::Collector;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut trace_out = trace_export::init_from_env();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--trace-out" {
            let path = args.next().ok_or("--trace-out needs a file path")?;
            Collector::enable();
            trace_out = Some(path);
        }
    }

    println!("measuring Table III tasks on the Table IV configurations...");
    let study = scheduler_study(42, 1)?;

    println!("\ntasks:");
    for (i, t) in study.tasks.iter().enumerate() {
        println!(
            "  #{}: {:<13} crf {:<2} refs {:<2} preset {}",
            i + 1,
            t.video,
            t.crf,
            t.refs,
            t.preset.name()
        );
    }

    println!("\nmeasured seconds (rows = tasks, columns = servers):");
    print!("{:>14}", "baseline");
    for name in &study.config_names {
        print!("{name:>10}");
    }
    println!();
    for (i, row) in study.times.iter().enumerate() {
        print!("{:>14.5}", study.baseline_times[i]);
        for t in row {
            print!("{t:>10.5}");
        }
        println!("   <- task #{}", i + 1);
    }

    println!("\npredicted benefit (smart scheduler's view):");
    for (i, row) in study.benefit.iter().enumerate() {
        print!("   task #{}:", i + 1);
        for b in row {
            print!(" {b:>7.4}");
        }
        println!();
    }

    println!("\nschedules:");
    println!(
        "  smart: {:?}  (configs by index into {:?})",
        study.smart.assignment, study.config_names
    );
    println!("  best : {:?}", study.best.assignment);

    println!("\nspeedup over running everything on the baseline server:");
    println!(
        "  random scheduler : {:>6.2} %",
        (study.random_speedup() - 1.0) * 100.0
    );
    println!(
        "  smart scheduler  : {:>6.2} %",
        (study.smart_speedup() - 1.0) * 100.0
    );
    println!(
        "  best scheduler   : {:>6.2} %",
        (study.best_speedup() - 1.0) * 100.0
    );
    println!(
        "\nsmart vs random: {:+.2} %   |   smart matches best on {:.0} % of tasks",
        (study.smart_over_random() - 1.0) * 100.0,
        study.smart_match_rate * 100.0
    );

    if let Some(trace_path) = trace_out {
        trace_export::write_chrome_trace(&trace_path)?;
        println!("[trace written to {trace_path} — load it in Perfetto or chrome://tracing]");
    }
    Ok(())
}
