//! Heterogeneous-fleet scheduling: the paper's §IV-B.2 case study as a tool.
//!
//! Four transcoding tasks (Table III) must be placed on four servers with
//! different microarchitectures (Table IV). This example measures every
//! (task, server) pair, then compares the random, smart
//! (characterization-driven, one-to-one) and best (oracle) schedulers.
//!
//! ```text
//! cargo run --release -p vtx-examples --bin fleet_scheduler
//! ```

use vtx_core::experiments::scheduler::scheduler_study;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("measuring Table III tasks on the Table IV configurations...");
    let study = scheduler_study(42, 1)?;

    println!("\ntasks:");
    for (i, t) in study.tasks.iter().enumerate() {
        println!(
            "  #{}: {:<13} crf {:<2} refs {:<2} preset {}",
            i + 1,
            t.video,
            t.crf,
            t.refs,
            t.preset.name()
        );
    }

    println!("\nmeasured seconds (rows = tasks, columns = servers):");
    print!("{:>14}", "baseline");
    for name in &study.config_names {
        print!("{name:>10}");
    }
    println!();
    for (i, row) in study.times.iter().enumerate() {
        print!("{:>14.5}", study.baseline_times[i]);
        for t in row {
            print!("{t:>10.5}");
        }
        println!("   <- task #{}", i + 1);
    }

    println!("\npredicted benefit (smart scheduler's view):");
    for (i, row) in study.benefit.iter().enumerate() {
        print!("   task #{}:", i + 1);
        for b in row {
            print!(" {b:>7.4}");
        }
        println!();
    }

    println!("\nschedules:");
    println!(
        "  smart: {:?}  (configs by index into {:?})",
        study.smart.assignment, study.config_names
    );
    println!("  best : {:?}", study.best.assignment);

    println!("\nspeedup over running everything on the baseline server:");
    println!("  random scheduler : {:>6.2} %", (study.random_speedup() - 1.0) * 100.0);
    println!("  smart scheduler  : {:>6.2} %", (study.smart_speedup() - 1.0) * 100.0);
    println!("  best scheduler   : {:>6.2} %", (study.best_speedup() - 1.0) * 100.0);
    println!(
        "\nsmart vs random: {:+.2} %   |   smart matches best on {:.0} % of tasks",
        (study.smart_over_random() - 1.0) * 100.0,
        study.smart_match_rate * 100.0
    );
    Ok(())
}
