//! VOD encoding ladder: the workload the paper's introduction motivates.
//!
//! A streaming service transcodes each upload into a ladder of renditions
//! (different quality/size targets) and needs to know what each rung costs
//! in compute and what it buys in quality/size. This example builds the
//! ladder for one clip and prints the speed/size/quality triangle per rung,
//! plus where the pipeline's cycles go microarchitecturally.
//!
//! ```text
//! cargo run --release -p vtx-examples --bin vod_ladder [video]
//! ```

use vtx_codec::{EncoderConfig, Preset};
use vtx_core::experiments::pareto::ladder_for_budget;
use vtx_core::experiments::sweep::crf_refs_sweep;
use vtx_core::{TranscodeOptions, Transcoder};

struct Rung {
    name: &'static str,
    crf: f64,
    preset: Preset,
}

const LADDER: &[Rung] = &[
    Rung {
        name: "archive",
        crf: 16.0,
        preset: Preset::Slow,
    },
    Rung {
        name: "premium",
        crf: 21.0,
        preset: Preset::Medium,
    },
    Rung {
        name: "standard",
        crf: 27.0,
        preset: Preset::Medium,
    },
    Rung {
        name: "data-saver",
        crf: 34.0,
        preset: Preset::Veryfast,
    },
];

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let video = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "house".to_owned());
    println!("preparing upload for '{video}'...");
    let transcoder = Transcoder::from_catalog(&video, 7)?;
    let opts = TranscodeOptions::default().with_sample_shift(1);

    println!(
        "\n{:<11} {:>8} {:>10} {:>9} {:>7} {:>7} {:>7} {:>7}",
        "rung", "time(ms)", "kbps", "PSNR(dB)", "ret%", "FE%", "BS%", "BE%"
    );
    let mut total_seconds = 0.0;
    for rung in LADDER {
        let cfg = rung.preset.config().with_crf(rung.crf);
        let r = transcoder.transcode(&cfg, &opts)?;
        total_seconds += r.seconds;
        let td = &r.summary.topdown;
        println!(
            "{:<11} {:>8.2} {:>10.1} {:>9.2} {:>6.1}% {:>6.1}% {:>6.1}% {:>6.1}%",
            rung.name,
            r.seconds * 1e3,
            r.bitrate_kbps,
            r.psnr_db,
            td.retiring * 100.0,
            td.frontend * 100.0,
            td.bad_speculation * 100.0,
            td.backend() * 100.0,
        );
    }
    println!(
        "\nfull ladder cost: {:.2} ms of simulated CPU time",
        total_seconds * 1e3
    );
    println!("(a provider multiplies this by millions of uploads — the paper's motivation)");

    // Characterization-driven alternative: sweep the (crf, refs) plane and
    // let the Pareto ladder builder pick efficient rungs within the same
    // compute budget the hand-written ladder used.
    println!("\nsweeping the (crf, refs) plane for a data-driven ladder...");
    let points = crf_refs_sweep(
        &transcoder,
        &[14, 18, 22, 26, 30, 34, 38],
        &[1, 3],
        &EncoderConfig::default(),
        &opts,
    )?;
    let plan = ladder_for_budget(&points, LADDER.len(), total_seconds);
    println!(
        "suggested {} rungs within the same {:.2} ms budget:",
        plan.rungs.len(),
        total_seconds * 1e3
    );
    println!(
        "{:>5} {:>5} {:>10} {:>10} {:>9}",
        "crf", "refs", "kbps", "PSNR(dB)", "time(ms)"
    );
    for r in &plan.rungs {
        println!(
            "{:>5} {:>5} {:>10.1} {:>10.2} {:>9.2}",
            r.crf,
            r.refs,
            r.bitrate_kbps,
            r.psnr_db,
            r.summary.seconds * 1e3
        );
    }
    Ok(())
}
