//! Quickstart: transcode one vbench clip and print the paper's three key
//! metrics plus the VTune-style Top-down breakdown.
//!
//! ```text
//! cargo run --release -p vtx-examples --bin quickstart [video] [crf] [refs]
//! ```

use vtx_codec::EncoderConfig;
use vtx_core::{TranscodeOptions, Transcoder};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let video = args.next().unwrap_or_else(|| "bike".to_owned());
    let crf: f64 = args.next().map(|s| s.parse()).transpose()?.unwrap_or(23.0);
    let refs: u8 = args.next().map(|s| s.parse()).transpose()?.unwrap_or(3);

    println!("building transcoding workload for '{video}' (seed 42)...");
    let transcoder = Transcoder::from_catalog(&video, 42)?;
    let spec = &transcoder.video().spec;
    println!(
        "  {} — nominal {}x{}@{} (entropy {}), simulated {}x{} x {} frames",
        spec.full_name,
        spec.nominal_width,
        spec.nominal_height,
        spec.fps,
        spec.entropy,
        spec.sim_width,
        spec.sim_height,
        spec.sim_frames
    );

    let cfg = EncoderConfig::default().with_crf(crf).with_refs(refs);
    let report = transcoder.transcode(&cfg, &TranscodeOptions::default())?;

    println!("\ntranscode (medium preset, crf {crf}, refs {refs}) on the baseline core:");
    println!(
        "  time     : {:>10.4} s (simulated at 3.5 GHz)",
        report.seconds
    );
    println!("  bitrate  : {:>10.1} kbps", report.bitrate_kbps);
    println!("  quality  : {:>10.2} dB PSNR", report.psnr_db);
    println!("  IPC      : {:>10.2}", report.summary.ipc);

    let td = &report.summary.topdown;
    println!("\ntop-down pipeline slots:");
    println!("  retiring        : {:>6.2} %", td.retiring * 100.0);
    println!("  front-end bound : {:>6.2} %", td.frontend * 100.0);
    println!("  bad speculation : {:>6.2} %", td.bad_speculation * 100.0);
    println!("  back-end memory : {:>6.2} %", td.backend_memory * 100.0);
    println!("  back-end core   : {:>6.2} %", td.backend_core * 100.0);

    let m = &report.summary.mpki;
    println!("\nmiss rates (per kilo-instruction):");
    println!(
        "  L1i {:.3}  L1d {:.3}  L2 {:.3}  L3 {:.3}  branch {:.3}  iTLB {:.3}",
        m.l1i, m.l1d, m.l2, m.l3, m.branch, m.itlb
    );

    println!("\ntop hotspots:");
    for (name, insns) in report.profile.hotspots.iter().take(6) {
        let pct = *insns as f64 * 100.0 / report.profile.counts.instructions as f64;
        println!("  {name:<14} {pct:>5.1} %");
    }
    Ok(())
}
