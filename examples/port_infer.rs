//! Automated port-mapping inference across the Table IV configurations.
//!
//! For every configuration the harness hides the ground-truth port layout
//! behind a blocked-port measurement bench, recovers the mapping purely
//! from throughput experiments (uops.info-style), compresses it into a
//! PALMED-style conjunctive resource model, and validates the model's
//! predictions against fresh measurements.
//!
//! The output is byte-deterministic for a fixed seed — the CI
//! `port-inference-determinism` job runs this twice and compares bytes.
//!
//! ```text
//! cargo run --release --example port_infer -- [--seed N]
//! ```

use vtx_port::render_inference_report;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut seed = 42u64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seed" => {
                seed = args.next().ok_or("--seed needs a value")?.parse::<u64>()?;
            }
            other => return Err(format!("unknown argument '{other}'").into()),
        }
    }
    print!("{}", render_inference_report(seed));
    Ok(())
}
