//! Online serving on a heterogeneous fleet: admission control,
//! deadline-aware dispatch and load shedding over the Table IV configs.
//!
//! Simulated mode (default) is fully deterministic: two runs with the same
//! seed print byte-identical output — the CI `serve-determinism` job
//! asserts exactly that. `--real` drives actual `vtx_core::Transcoder`
//! jobs on worker threads through the same service core (wall-clock, so
//! not byte-reproducible).
//!
//! `--xl` runs the fleet-scale restatement: 500 servers (20k jobs) by
//! default, `--xl --full` for 10 000 servers and a million jobs. XL runs
//! take the two-level dispatch path (consistent-hash cells + auction) and
//! print the compact per-fleet report instead of 10k per-server lines;
//! `--cells N` overrides the auto-sized cell count. Still byte-
//! deterministic per seed.
//!
//! `--faults` switches on the chaos study: an 8-way fleet where two
//! servers are killed at 30% of the run and a third is a 3× fail-slow
//! straggler, with hedged re-dispatch and the graceful-degradation ladder
//! armed. Still a pure function of the seed — the CI `chaos-determinism`
//! job byte-compares two faulted runs.
//!
//! `--segments MS` switches on segmented ABR serving: every catalog job
//! decomposes into per-(segment, rung) dispatch units (GOP-aligned ~MS-
//! millisecond segments × the `--ladder` rungs, default
//! `hi=medium:20,mid=veryfast:26,lo=ultrafast:32`) that flow through the
//! same admission/dispatch/chaos machinery; the report gains per-rung and
//! per-segment completion counts and a job finishes only when its manifest
//! assembles from all rung segments. `--manifest-out DIR` then writes the
//! HLS playlists plus the actual muxed CMAF init/media segments — byte-
//! deterministic per seed in both `--real` and simulated modes.
//!
//! `--cache-mb N` arms the popularity-aware segment cache: a repeated
//! (video, knobs, rung, segment) request hits the cache, skips the
//! transcode and bills only the lookup cost. `--evict {lru,lfu,gdsf}`
//! selects the eviction policy (default `lru`). `--zipf S` skews the
//! request trace so a Zipf(S)-popular head of the catalog is requested
//! repeatedly, and `--live-frac F` routes the given fraction of requests
//! to the live (interactive) class. Cached runs stay byte-deterministic
//! per seed in simulated mode — the CI `cache-determinism` job
//! byte-compares two same-seed cached runs. With `--segments`, manifests
//! are written via partial delivery: finished rungs are served and
//! jobs missing rungs are flagged degraded instead of dropped.
//!
//! Observability exports: `--metrics-out FILE` writes the run's Prometheus
//! exposition (per-class completion counters, sojourn quantile summaries,
//! alert gauges); `--job-trace FILE` writes the per-job lifecycle trace —
//! Chrome trace-event JSON when the path ends in `.json` (one track per
//! job: queued span, attempt/hedge spans, shed/requeue instants), plain
//! text otherwise. With `--policy all`, the policy name is inserted before
//! the extension so runs don't clobber each other.
//!
//! ```text
//! cargo run --release --example serve_fleet -- [--seed N] [--smoke]
//!     [--xl [--full]] [--cells N]
//!     [--policy random|rr|smart|port|all] [--real] [--faults]
//!     [--segments MS] [--ladder SPEC] [--manifest-out DIR]
//!     [--cache-mb N] [--evict lru|lfu|gdsf] [--zipf S] [--live-frac F]
//!     [--trace-out FILE] [--dump-trace FILE]
//!     [--metrics-out FILE] [--job-trace FILE]
//! ```

use vtx_cache::{CacheSpec, EvictPolicy};
use vtx_container::Ladder;
use vtx_core::trace_export;
use vtx_obs::ObsPlane;
use vtx_serve::chaos::{ChaosConfig, DegradeConfig, FaultPlan};
use vtx_serve::exec::{run_real, run_real_segmented, ExecConfig};
use vtx_serve::fleet::Fleet;
use vtx_serve::policy::policy_by_name;
use vtx_serve::segment::{SegmentOptions, SegmentPlan};
use vtx_serve::service::{render_event_log, EventRecord, ServeConfig};
use vtx_serve::sim::simulate_trace;
use vtx_serve::workload::{render_trace, WorkloadSpec};
use vtx_serve::CLASS_NAMES;
use vtx_telemetry::chrome::ChromeTrace;
use vtx_telemetry::Collector;

/// Insert the policy name before the extension when several policies run,
/// so `--policy all` doesn't overwrite one file four times.
fn per_policy_path(base: &str, policy: &str, multi: bool) -> String {
    if !multi {
        return base.to_owned();
    }
    match base.rsplit_once('.') {
        Some((stem, ext)) if !stem.is_empty() => format!("{stem}.{policy}.{ext}"),
        _ => format!("{base}.{policy}"),
    }
}

/// Write the observability exports requested on the command line.
fn write_obs_outputs(
    obs: &ObsPlane,
    metrics_out: Option<&str>,
    job_trace: Option<&str>,
    policy: &str,
    multi: bool,
) -> Result<(), Box<dyn std::error::Error>> {
    if let Some(base) = metrics_out {
        let path = per_policy_path(base, policy, multi);
        std::fs::write(&path, obs.render_prometheus(&CLASS_NAMES))?;
        println!("wrote Prometheus metrics to {path}");
    }
    if let Some(base) = job_trace {
        let path = per_policy_path(base, policy, multi);
        let body = if path.ends_with(".json") {
            let mut trace = ChromeTrace::new();
            obs.tracker().add_chrome_tracks(&mut trace, &CLASS_NAMES);
            trace.to_json()
        } else {
            obs.tracker().render_text(&CLASS_NAMES)
        };
        std::fs::write(&path, body)?;
        println!("wrote job lifecycle trace to {path}");
    }
    Ok(())
}

/// Build the segmentation options from `--segments MS` and an optional
/// `--ladder SPEC` (defaults to the standard 3-rung ABR ladder).
fn segment_opts(
    target_ms: u32,
    ladder_spec: Option<&str>,
) -> Result<SegmentOptions, Box<dyn std::error::Error>> {
    let mut opts = SegmentOptions {
        target_ms,
        ..SegmentOptions::default()
    };
    if let Some(spec) = ladder_spec {
        opts.ladder = Ladder::parse(spec)?;
    }
    Ok(opts)
}

/// Dump the run's HLS playlists plus the actual muxed CMAF segments under
/// `dir` (per-policy subdir when several policies run). Delivery is
/// partial: a job with every rung complete gets the full master playlist,
/// while a job missing rungs gets a degraded-flagged master listing only
/// its finished rungs. The CI `container-determinism` job `diff -r`s two
/// same-seed dumps.
fn write_manifest_artifacts(
    base: &str,
    policy: &str,
    multi: bool,
    plan: &SegmentPlan,
    seed: u64,
    log: &[EventRecord],
) -> Result<(), Box<dyn std::error::Error>> {
    let dir = if multi {
        std::path::PathBuf::from(base).join(policy)
    } else {
        std::path::PathBuf::from(base)
    };
    let manifests = plan.manifests_partial(log);
    let artifacts = plan.materialize(seed, log)?;
    let mut files = 0usize;
    for (rel, body) in manifests
        .iter()
        .map(|(r, b)| (r, b.as_bytes()))
        .chain(artifacts.iter().map(|(r, b)| (r, b.as_slice())))
    {
        let path = dir.join(rel);
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(&path, body)?;
        files += 1;
    }
    let served = manifests
        .iter()
        .filter(|(rel, _)| rel.ends_with("master.m3u8"))
        .count();
    let complete = plan.complete_parents(log).len();
    println!(
        "wrote {files} playlist/segment files ({complete} complete jobs, {} degraded) to {}",
        served - complete,
        dir.display()
    );
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut trace_out = trace_export::init_from_env();
    let mut seed = 42u64;
    let mut smoke = false;
    let mut xl = false;
    let mut xl_full = false;
    let mut cells = 0usize;
    let mut real = false;
    let mut faults = false;
    let mut policy_arg = "all".to_owned();
    let mut segments_ms: Option<u32> = None;
    let mut ladder_spec: Option<String> = None;
    let mut manifest_out: Option<String> = None;
    let mut dump_trace: Option<String> = None;
    let mut metrics_out: Option<String> = None;
    let mut job_trace: Option<String> = None;
    let mut cache_mb = 0u64;
    let mut evict = "lru".to_owned();
    let mut zipf: Option<f64> = None;
    let mut live_frac: Option<f64> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seed" => {
                seed = args.next().ok_or("--seed needs a value")?.parse::<u64>()?;
            }
            "--smoke" => smoke = true,
            "--xl" => xl = true,
            "--full" => xl_full = true,
            "--cells" => {
                cells = args
                    .next()
                    .ok_or("--cells needs a value")?
                    .parse::<usize>()?;
            }
            "--real" => real = true,
            "--faults" => faults = true,
            "--policy" => {
                policy_arg = args.next().ok_or("--policy needs a value")?;
            }
            "--segments" => {
                segments_ms = Some(
                    args.next()
                        .ok_or("--segments needs a target duration in ms")?
                        .parse::<u32>()?,
                );
            }
            "--ladder" => {
                ladder_spec = Some(args.next().ok_or("--ladder needs a spec")?);
            }
            "--manifest-out" => {
                manifest_out = Some(args.next().ok_or("--manifest-out needs a directory")?);
            }
            "--dump-trace" => {
                dump_trace = Some(args.next().ok_or("--dump-trace needs a file path")?);
            }
            "--metrics-out" => {
                metrics_out = Some(args.next().ok_or("--metrics-out needs a file path")?);
            }
            "--job-trace" => {
                job_trace = Some(args.next().ok_or("--job-trace needs a file path")?);
            }
            "--cache-mb" => {
                cache_mb = args
                    .next()
                    .ok_or("--cache-mb needs a capacity in MiB")?
                    .parse::<u64>()?;
            }
            "--evict" => {
                evict = args.next().ok_or("--evict needs a policy name")?;
            }
            "--zipf" => {
                zipf = Some(
                    args.next()
                        .ok_or("--zipf needs a skew exponent")?
                        .parse::<f64>()?,
                );
            }
            "--live-frac" => {
                live_frac = Some(
                    args.next()
                        .ok_or("--live-frac needs a fraction in [0,1]")?
                        .parse::<f64>()?,
                );
            }
            "--trace-out" => {
                let path = args.next().ok_or("--trace-out needs a file path")?;
                Collector::enable();
                trace_out = Some(path);
            }
            other => return Err(format!("unknown flag: {other}").into()),
        }
    }

    if xl && segments_ms.is_some() {
        return Err("--segments is a catalog-scale mode; it does not combine with --xl".into());
    }
    if segments_ms.is_none() && (ladder_spec.is_some() || manifest_out.is_some()) {
        return Err("--ladder and --manifest-out require --segments".into());
    }

    if xl && (cache_mb > 0 || zipf.is_some() || live_frac.is_some()) {
        return Err(
            "--cache-mb/--zipf/--live-frac are catalog-scale modes; they do not combine with --xl"
                .into(),
        );
    }
    let cache_spec = if cache_mb > 0 {
        let policy = EvictPolicy::from_name(&evict)
            .ok_or_else(|| format!("unknown eviction policy: {evict} (want lru|lfu|gdsf)"))?;
        Some(CacheSpec {
            capacity_bytes: cache_mb << 20,
            policy,
            ..CacheSpec::default()
        })
    } else {
        None
    };
    let popularity = (zipf.is_some() || live_frac.is_some())
        .then(|| (zipf.unwrap_or(1.0), live_frac.unwrap_or(0.0)));

    let policies: Vec<&str> = match policy_arg.as_str() {
        "all" => vec!["random", "round_robin", "smart", "port"],
        name => vec![name],
    };
    let multi = policies.len() > 1;

    if real {
        // The real executor replays a small trace with actual transcodes;
        // arrivals are compressed so the run takes seconds, not minutes.
        let mut workload = WorkloadSpec::real_smoke(seed);
        if let Some((s, live)) = popularity {
            workload = workload.with_popularity(s, live);
            println!("popularity: zipf(s={s}) request trace, live fraction {live}");
        }
        println!(
            "real executor: {} jobs over {} videos, fleet = Table IV ({} servers)",
            workload.jobs,
            workload.videos.len(),
            Fleet::table_iv().len()
        );
        let mut cfg = ExecConfig {
            arrival_compression: 20,
            ..ExecConfig::default()
        };
        if let Some(spec) = &cache_spec {
            cfg.serve.cache = Some(spec.clone());
            println!(
                "segment cache: {} MiB, {} eviction",
                spec.capacity_bytes >> 20,
                spec.policy.name()
            );
        }
        if faults {
            // Kill one real worker thread early: the detector notices the
            // missing heartbeats and the service requeues its lost work.
            cfg.serve.chaos = ChaosConfig {
                plan: FaultPlan::none(Fleet::table_iv().len())
                    .with_crash(2, 40_000)
                    .expect("index in range"),
                ..ChaosConfig::default()
            };
            println!("faults: worker 2 killed 40 ms into the run");
        }
        let plan = match segments_ms {
            Some(ms) => {
                let parents = workload.generate()?;
                let plan =
                    SegmentPlan::expand(&parents, &segment_opts(ms, ladder_spec.as_deref())?)?;
                println!(
                    "segmented: {} jobs -> {} units ({} rungs, target {} ms)",
                    plan.parents.len(),
                    plan.units.len(),
                    plan.ladder.rungs.len(),
                    plan.target_ms
                );
                Some(plan)
            }
            None => None,
        };
        if let Some(plan) = &plan {
            // Rung/segment identity plus true output sizes let the cache key
            // and byte accounting line up with the simulated path.
            cfg.serve.unit_rungs = plan.unit_rungs();
            cfg.serve.unit_segs = plan.unit_segs();
            cfg.serve.unit_bytes = plan.unit_bytes()?;
        }
        for name in policies {
            let policy =
                policy_by_name(name, seed).ok_or_else(|| format!("unknown policy: {name}"))?;
            let mut out = match &plan {
                Some(plan) => run_real_segmented(plan, seed, Fleet::table_iv(), policy, &cfg)?,
                None => run_real(&workload, Fleet::table_iv(), policy, &cfg)?,
            };
            if let Some(plan) = &plan {
                out.report.segments = Some(plan.stats(&out.event_log));
            }
            println!("\n{}", out.report.render());
            if let (Some(plan), Some(dir)) = (&plan, &manifest_out) {
                write_manifest_artifacts(dir, name, multi, plan, seed, &out.event_log)?;
            }
            write_obs_outputs(
                &out.obs,
                metrics_out.as_deref(),
                job_trace.as_deref(),
                name,
                multi,
            )?;
        }
    } else {
        let mut workload = if xl && xl_full {
            WorkloadSpec::xl(seed)
        } else if xl {
            WorkloadSpec::xl_smoke(seed)
        } else if smoke {
            WorkloadSpec::smoke(seed)
        } else {
            WorkloadSpec::bundled(seed)
        };
        if let Some((s, live)) = popularity {
            workload = workload.with_popularity(s, live);
            println!("popularity: zipf(s={s}) request trace, live fraction {live}");
        }
        if let Some(path) = &dump_trace {
            let jobs = workload.generate()?;
            std::fs::write(path, render_trace(&jobs))?;
            println!("wrote {} trace lines to {path}", jobs.len());
        }
        let fleet = if xl && xl_full {
            Fleet::sized(10_000)?
        } else if xl {
            Fleet::sized(500)?
        } else if faults {
            Fleet::sized(8)?
        } else {
            Fleet::table_iv()
        };
        println!(
            "simulated fleet: {} jobs at {} Hz over {} videos, {} servers{}",
            workload.jobs,
            workload.arrival_rate_hz,
            workload.videos.len(),
            fleet.len(),
            if faults {
                " — kill 2 at 30% + one 3x straggler, hedging + degradation armed"
            } else {
                " (Table IV)"
            }
        );
        let jobs = workload.generate()?;
        let plan = match segments_ms {
            Some(ms) => {
                let plan = SegmentPlan::expand(&jobs, &segment_opts(ms, ladder_spec.as_deref())?)?;
                println!(
                    "segmented: {} jobs -> {} units ({} rungs, target {} ms)",
                    plan.parents.len(),
                    plan.units.len(),
                    plan.ladder.rungs.len(),
                    plan.target_ms
                );
                Some(plan)
            }
            None => None,
        };
        let sim_jobs = plan.as_ref().map_or(&jobs[..], |p| &p.units[..]);
        let horizon = sim_jobs.iter().map(|j| j.arrival_us).max().unwrap_or(0);
        let mut cfg = if faults {
            ServeConfig {
                chaos: ChaosConfig {
                    hedge_after: 0.5,
                    degrade: DegradeConfig {
                        enabled: true,
                        ..DegradeConfig::default()
                    },
                    ..ChaosConfig::kill_two_straggle_one(seed, fleet.len(), horizon)
                },
                ..ServeConfig::default()
            }
        } else if xl {
            // XL runs skip the event log and obs plane: at fleet scale both
            // are overhead, and the compact report carries the findings.
            ServeConfig {
                collect_event_log: false,
                obs: vtx_obs::ObsConfig::disabled(),
                cells,
                ..ServeConfig::default()
            }
        } else {
            ServeConfig {
                cells,
                ..ServeConfig::default()
            }
        };
        if let Some(spec) = &cache_spec {
            cfg.cache = Some(spec.clone());
            println!(
                "segment cache: {} MiB, {} eviction",
                spec.capacity_bytes >> 20,
                spec.policy.name()
            );
        }
        if let Some(plan) = &plan {
            cfg.unit_frames = plan.unit_frames();
            cfg.unit_rungs = plan.unit_rungs();
            cfg.unit_segs = plan.unit_segs();
            cfg.unit_bytes = plan.unit_bytes()?;
        }
        for name in policies {
            let policy =
                policy_by_name(name, seed).ok_or_else(|| format!("unknown policy: {name}"))?;
            let mut out = simulate_trace(sim_jobs, seed, fleet.clone(), policy, cfg.clone())?;
            if let Some(plan) = &plan {
                out.report.segments = Some(plan.stats(&out.event_log));
            }
            if xl {
                println!("\n{}", out.report.render_compact());
            } else {
                println!("\n{}", out.report.render());
            }
            if let (Some(plan), Some(dir)) = (&plan, &manifest_out) {
                write_manifest_artifacts(dir, name, multi, plan, seed, &out.event_log)?;
            }
            if smoke {
                // The smoke event log is small enough to print whole; the CI
                // determinism check byte-compares it across runs.
                println!("event log ({} events):", out.event_log.len());
                print!("{}", render_event_log(&out.event_log));
            }
            if !out.obs.alerts().is_empty() {
                println!("alert transitions ({}):", out.obs.alerts().len());
                print!("{}", out.obs.render_alerts(&CLASS_NAMES));
            }
            write_obs_outputs(
                &out.obs,
                metrics_out.as_deref(),
                job_trace.as_deref(),
                name,
                multi,
            )?;
        }
    }

    if let Some(path) = trace_out {
        trace_export::write_chrome_trace(&path)?;
        println!("\nwrote telemetry trace to {path}");
    }
    Ok(())
}
