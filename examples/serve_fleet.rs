//! Online serving on a heterogeneous fleet: admission control,
//! deadline-aware dispatch and load shedding over the Table IV configs.
//!
//! Simulated mode (default) is fully deterministic: two runs with the same
//! seed print byte-identical output — the CI `serve-determinism` job
//! asserts exactly that. `--real` drives actual `vtx_core::Transcoder`
//! jobs on worker threads through the same service core (wall-clock, so
//! not byte-reproducible).
//!
//! `--faults` switches on the chaos study: an 8-way fleet where two
//! servers are killed at 30% of the run and a third is a 3× fail-slow
//! straggler, with hedged re-dispatch and the graceful-degradation ladder
//! armed. Still a pure function of the seed — the CI `chaos-determinism`
//! job byte-compares two faulted runs.
//!
//! ```text
//! cargo run --release --example serve_fleet -- [--seed N] [--smoke]
//!     [--policy random|rr|smart|port|all] [--real] [--faults]
//!     [--trace-out FILE] [--dump-trace FILE]
//! ```

use vtx_core::trace_export;
use vtx_serve::chaos::{ChaosConfig, DegradeConfig, FaultPlan};
use vtx_serve::exec::{run_real, ExecConfig};
use vtx_serve::fleet::Fleet;
use vtx_serve::policy::policy_by_name;
use vtx_serve::service::{render_event_log, ServeConfig};
use vtx_serve::sim::simulate_trace;
use vtx_serve::workload::{render_trace, WorkloadSpec};
use vtx_telemetry::Collector;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut trace_out = trace_export::init_from_env();
    let mut seed = 42u64;
    let mut smoke = false;
    let mut real = false;
    let mut faults = false;
    let mut policy_arg = "all".to_owned();
    let mut dump_trace: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seed" => {
                seed = args.next().ok_or("--seed needs a value")?.parse::<u64>()?;
            }
            "--smoke" => smoke = true,
            "--real" => real = true,
            "--faults" => faults = true,
            "--policy" => {
                policy_arg = args.next().ok_or("--policy needs a value")?;
            }
            "--dump-trace" => {
                dump_trace = Some(args.next().ok_or("--dump-trace needs a file path")?);
            }
            "--trace-out" => {
                let path = args.next().ok_or("--trace-out needs a file path")?;
                Collector::enable();
                trace_out = Some(path);
            }
            other => return Err(format!("unknown flag: {other}").into()),
        }
    }

    let policies: Vec<&str> = match policy_arg.as_str() {
        "all" => vec!["random", "round_robin", "smart", "port"],
        name => vec![name],
    };

    if real {
        // The real executor replays a small trace with actual transcodes;
        // arrivals are compressed so the run takes seconds, not minutes.
        let workload = WorkloadSpec::real_smoke(seed);
        println!(
            "real executor: {} jobs over {} videos, fleet = Table IV ({} servers)",
            workload.jobs,
            workload.videos.len(),
            Fleet::table_iv().len()
        );
        let mut cfg = ExecConfig {
            arrival_compression: 20,
            ..ExecConfig::default()
        };
        if faults {
            // Kill one real worker thread early: the detector notices the
            // missing heartbeats and the service requeues its lost work.
            cfg.serve.chaos = ChaosConfig {
                plan: FaultPlan::none(Fleet::table_iv().len())
                    .with_crash(2, 40_000)
                    .expect("index in range"),
                ..ChaosConfig::default()
            };
            println!("faults: worker 2 killed 40 ms into the run");
        }
        for name in policies {
            let policy =
                policy_by_name(name, seed).ok_or_else(|| format!("unknown policy: {name}"))?;
            let out = run_real(&workload, Fleet::table_iv(), policy, &cfg)?;
            println!("\n{}", out.report.render());
        }
    } else {
        let workload = if smoke {
            WorkloadSpec::smoke(seed)
        } else {
            WorkloadSpec::bundled(seed)
        };
        if let Some(path) = &dump_trace {
            let jobs = workload.generate()?;
            std::fs::write(path, render_trace(&jobs))?;
            println!("wrote {} trace lines to {path}", jobs.len());
        }
        let fleet = if faults {
            Fleet::sized(8)?
        } else {
            Fleet::table_iv()
        };
        println!(
            "simulated fleet: {} jobs at {} Hz over {} videos, {} servers{}",
            workload.jobs,
            workload.arrival_rate_hz,
            workload.videos.len(),
            fleet.len(),
            if faults {
                " — kill 2 at 30% + one 3x straggler, hedging + degradation armed"
            } else {
                " (Table IV)"
            }
        );
        let jobs = workload.generate()?;
        let horizon = jobs.iter().map(|j| j.arrival_us).max().unwrap_or(0);
        let cfg = if faults {
            ServeConfig {
                chaos: ChaosConfig {
                    hedge_after: 0.5,
                    degrade: DegradeConfig {
                        enabled: true,
                        ..DegradeConfig::default()
                    },
                    ..ChaosConfig::kill_two_straggle_one(seed, fleet.len(), horizon)
                },
                ..ServeConfig::default()
            }
        } else {
            ServeConfig::default()
        };
        for name in policies {
            let policy =
                policy_by_name(name, seed).ok_or_else(|| format!("unknown policy: {name}"))?;
            let out = simulate_trace(&jobs, seed, fleet.clone(), policy, cfg.clone())?;
            println!("\n{}", out.report.render());
            if smoke {
                // The smoke event log is small enough to print whole; the CI
                // determinism check byte-compares it across runs.
                println!("event log ({} events):", out.event_log.len());
                print!("{}", render_event_log(&out.event_log));
            }
        }
    }

    if let Some(path) = trace_out {
        trace_export::write_chrome_trace(&path)?;
        println!("\nwrote telemetry trace to {path}");
    }
    Ok(())
}
