//! Transcode a real `.y4m` file through the instrumented pipeline.
//!
//! ```text
//! # from any source, e.g.: ffmpeg -i clip.mp4 -vf crop=1280:720 clip.y4m
//! cargo run --release -p vtx-examples --bin y4m_transcode -- clip.y4m 23 --threads 4
//! ```
//!
//! Without an argument, the example demonstrates the full loop on synthetic
//! content: it synthesizes a clip, writes it as `.y4m` to a temp file, reads
//! it back, and transcodes it. `--threads N` turns on wavefront-parallel
//! encoding (`0` = one worker per core) — the output is bit-identical to a
//! serial run, only faster.

use std::fs::File;
use std::io::BufReader;

use vtx_codec::EncoderConfig;
use vtx_core::{TranscodeOptions, Transcoder};
use vtx_frame::{synth, vbench, y4m};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut positional = Vec::new();
    let mut threads: Option<u32> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--threads" {
            let n = args.next().ok_or("--threads needs a count (0 = auto)")?;
            threads = Some(n.parse()?);
        } else {
            positional.push(arg);
        }
    }
    let mut positional = positional.into_iter();
    let path = positional.next();
    let crf: f64 = positional
        .next()
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(23.0);

    let video = match path {
        Some(p) => {
            println!("reading {p}...");
            y4m::video_from_y4m("user_clip", 3.0, BufReader::new(File::open(&p)?))?
        }
        None => {
            // Self-contained demo: synthesize, export, re-import.
            let spec = vbench::by_name("cricket").unwrap();
            let synthetic = synth::generate(&spec, 42);
            let tmp = std::env::temp_dir().join("vtx_demo.y4m");
            {
                let mut f = File::create(&tmp)?;
                y4m::write_y4m(&mut f, &synthetic.frames, synthetic.spec.fps)?;
            }
            println!(
                "no input given; demo clip written to {} ({} frames)",
                tmp.display(),
                synthetic.frames.len()
            );
            y4m::video_from_y4m("demo", spec.entropy, BufReader::new(File::open(&tmp)?))?
        }
    };

    println!(
        "input: {} ({}x{} @ {} fps, {} frames)",
        video.spec.full_name,
        video.spec.sim_width,
        video.spec.sim_height,
        video.spec.fps,
        video.frames.len()
    );

    let transcoder = Transcoder::from_video(video)?;
    let cfg = EncoderConfig::default().with_crf(crf);
    let mut opts = TranscodeOptions::default().with_sample_shift(1);
    if let Some(t) = threads {
        opts = opts.with_threads(t);
    }
    let r = transcoder.transcode(&cfg, &opts)?;

    println!("\ntranscode at crf {crf} (medium preset):");
    println!("  simulated time : {:.3} ms", r.seconds * 1e3);
    println!("  bitrate        : {:.1} kbps", r.bitrate_kbps);
    println!("  PSNR           : {:.2} dB", r.psnr_db);
    let td = &r.summary.topdown;
    println!(
        "  top-down       : retiring {:.1}% | FE {:.1}% | BS {:.1}% | BE {:.1}%",
        td.retiring * 100.0,
        td.frontend * 100.0,
        td.bad_speculation * 100.0,
        td.backend() * 100.0
    );
    Ok(())
}
