fn main() {
    let t = vtx_core::Transcoder::from_catalog("bike", 42).unwrap();
    let opts = vtx_core::TranscodeOptions::default().with_sample_shift(1);
    for crf in [1u8, 6, 12, 18, 24, 30, 36, 44, 51] {
        let cfg = vtx_codec::EncoderConfig::default().with_crf(crf as f64);
        let r = t.transcode(&cfg, &opts).unwrap();
        println!("crf {:>2}: branch mpki {:.3}  (insns {}M, misp {})", crf, r.summary.mpki.branch, r.profile.counts.instructions/1_000_000, r.profile.counts.branch_mispredicts);
    }
}
