//! VTune-style hotspot and bottleneck report for one transcode, and the
//! effect of recompiling with the AutoFDO / Graphite analogs.
//!
//! ```text
//! cargo run --release --example profile_hotspots -- [video] [preset]
//! ```

use vtx_codec::{instr, Preset};
use vtx_core::{TranscodeOptions, Transcoder};
use vtx_opt::{compile, BinaryVariant};
use vtx_uarch::config::UarchConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let video = args.next().unwrap_or_else(|| "game2".to_owned());
    let preset = args
        .next()
        .and_then(|s| Preset::from_name(&s))
        .unwrap_or(Preset::Medium);

    let transcoder = Transcoder::from_catalog(&video, 11)?;
    let cfg = preset.config().with_crf(23.0).with_refs(3);
    let opts = TranscodeOptions::default();

    println!("profiling '{video}' with preset {}...", preset.name());
    let base = transcoder.transcode(&cfg, &opts)?;

    println!("\nhotspots (baseline binary):");
    let total = base.profile.counts.instructions as f64;
    for (name, insns) in base.profile.hotspots.iter().take(10) {
        let pct = *insns as f64 * 100.0 / total;
        println!(
            "  {name:<14} {pct:>5.1} %  {}",
            "#".repeat((pct / 2.0) as usize)
        );
    }

    // The same hotspots as flamegraph input: collapsed stacks weighted by
    // simulated instructions, ready for flamegraph.pl / inferno-flamegraph.
    let folded_path = std::path::Path::new("target").join("vtx-hotspots.folded");
    std::fs::create_dir_all("target")?;
    std::fs::write(&folded_path, base.profile.collapsed_stacks().render())?;
    println!("\n[collapsed stacks written to {}]", folded_path.display());
    let td = &base.summary.topdown;
    println!(
        "\nbottlenecks: retiring {:.1}% | FE {:.1}% | BS {:.1}% | BE-mem {:.1}% | BE-core {:.1}%",
        td.retiring * 100.0,
        td.frontend * 100.0,
        td.bad_speculation * 100.0,
        td.backend_memory * 100.0,
        td.backend_core * 100.0
    );

    // Recompile with the two optimizers, using the profile we just took.
    let kernels = instr::kernel_table();
    let uarch = UarchConfig::baseline();
    let fdo = compile(
        BinaryVariant::AutoFdo,
        kernels,
        Some(&base.profile.profile),
        &uarch,
    )?;
    let gra = compile(BinaryVariant::Graphite, kernels, None, &uarch)?;

    let fdo_run = transcoder.transcode(&cfg, &opts.clone().with_binary(&fdo))?;
    let gra_run = transcoder.transcode(&cfg, &opts.clone().with_binary(&gra))?;

    println!("\nrecompiled binaries (same transcode):");
    println!(
        "  autofdo : {:+.2} % speedup  (L1i MPKI {:.2} -> {:.2}, iTLB {:.3} -> {:.3})",
        (base.seconds / fdo_run.seconds - 1.0) * 100.0,
        base.summary.mpki.l1i,
        fdo_run.summary.mpki.l1i,
        base.summary.mpki.itlb,
        fdo_run.summary.mpki.itlb
    );
    println!(
        "  graphite: {:+.2} % speedup  (L1d MPKI {:.2} -> {:.2}, L2 {:.2} -> {:.2})",
        (base.seconds / gra_run.seconds - 1.0) * 100.0,
        base.summary.mpki.l1d,
        gra_run.summary.mpki.l1d,
        base.summary.mpki.l2,
        gra_run.summary.mpki.l2
    );
    Ok(())
}
