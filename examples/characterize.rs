//! Run the paper's §IV-A profiling studies in one call and emit a Markdown
//! characterization report.
//!
//! ```text
//! cargo run --release -p vtx-examples --bin characterize [sweep_video]
//! ```

use vtx_core::experiments::full_report::{characterize, ReportScope};
use vtx_core::TranscodeOptions;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut scope = ReportScope::default();
    if let Some(video) = std::env::args().nth(1) {
        scope.sweep_video = video;
    }
    println!(
        "characterizing: sweep on '{}', {} crf x {} refs, {} presets, {} videos...",
        scope.sweep_video,
        scope.crfs.len(),
        scope.refs.len(),
        scope.presets.len(),
        scope.videos.as_ref().map_or(16, Vec::len)
    );

    let opts = TranscodeOptions::default().with_sample_shift(1);
    let report = characterize(&scope, &opts)?;
    let md = report.to_markdown();

    let path = std::path::Path::new("target").join("vtx-characterization.md");
    std::fs::create_dir_all("target")?;
    std::fs::write(&path, &md)?;
    println!("\n{md}");
    println!("[written to {}]", path.display());
    Ok(())
}
