//! Run the paper's §IV-A profiling studies in one call and emit a Markdown
//! characterization report.
//!
//! ```text
//! cargo run --release --example characterize -- [sweep_video] [--trace-out FILE] [--threads N]
//! ```
//!
//! With `--trace-out FILE` (or the `VTX_TRACE=FILE` environment variable)
//! telemetry is recorded and exported as Chrome trace-event JSON: open the
//! file in Perfetto or `chrome://tracing` to see per-point sweep spans,
//! per-frame codec spans, and one simulated-time track per
//! microarchitecture configuration.
//!
//! `--threads N` enables wavefront-parallel encoding inside each transcode
//! (`0` = one worker per core). Results are bit-identical at any thread
//! count — the flag only changes wall-clock time.

use vtx_core::experiments::full_report::{characterize, ReportScope};
use vtx_core::{trace_export, TranscodeOptions};
use vtx_telemetry::Collector;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut scope = ReportScope::default();
    let mut trace_out = trace_export::init_from_env();
    let mut threads: Option<u32> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--trace-out" {
            let path = args.next().ok_or("--trace-out needs a file path")?;
            Collector::enable();
            trace_out = Some(path);
        } else if arg == "--threads" {
            let n = args.next().ok_or("--threads needs a count (0 = auto)")?;
            threads = Some(n.parse()?);
        } else {
            scope.sweep_video = arg;
        }
    }

    println!(
        "characterizing: sweep on '{}', {} crf x {} refs, {} presets, {} videos...",
        scope.sweep_video,
        scope.crfs.len(),
        scope.refs.len(),
        scope.presets.len(),
        scope.videos.as_ref().map_or(16, Vec::len)
    );

    let mut opts = TranscodeOptions::default().with_sample_shift(1);
    if let Some(t) = threads {
        opts = opts.with_threads(t);
    }
    let report = characterize(&scope, &opts)?;
    let md = report.to_markdown();

    let path = std::path::Path::new("target").join("vtx-characterization.md");
    std::fs::create_dir_all("target")?;
    std::fs::write(&path, &md)?;
    println!("\n{md}");
    println!("[written to {}]", path.display());

    if let Some(trace_path) = trace_out {
        trace_export::write_chrome_trace(&trace_path)?;
        println!("[trace written to {trace_path} — load it in Perfetto or chrome://tracing]");
    }
    Ok(())
}
